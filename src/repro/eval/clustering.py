"""External clustering metrics for the group-pattern and community studies.

The paper's Table 8 scores a clustering as correct only when the predicted
partition matches the ground truth exactly; that all-or-nothing metric is
reproduced in :mod:`repro.eval.group_patterns`.  The softer, standard metrics
here — adjusted Rand index, normalised mutual information, purity and pairwise
F1 — grade partial credit and are used by the community-detection service and
the extension benchmarks.

Partitions are given as per-item label sequences (any hashable labels); the
two sequences must refer to the same items in the same order.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Sequence

import numpy as np

from repro.errors import ConfigurationError


def _check_lengths(true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]) -> int:
    if len(true_labels) != len(predicted_labels):
        raise ConfigurationError("label sequences must have the same length")
    return len(true_labels)


def contingency_table(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> np.ndarray:
    """Contingency counts between true clusters (rows) and predicted clusters (columns)."""
    _check_lengths(true_labels, predicted_labels)
    true_ids = {label: i for i, label in enumerate(dict.fromkeys(true_labels))}
    pred_ids = {label: i for i, label in enumerate(dict.fromkeys(predicted_labels))}
    table = np.zeros((max(len(true_ids), 1), max(len(pred_ids), 1)), dtype=np.int64)
    for true_label, predicted_label in zip(true_labels, predicted_labels):
        table[true_ids[true_label], pred_ids[predicted_label]] += 1
    return table


def _comb2(values: np.ndarray) -> float:
    return float(np.sum(values * (values - 1) / 2.0))


def rand_index(true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]) -> float:
    """Plain Rand index: fraction of item pairs on which the partitions agree."""
    n = _check_lengths(true_labels, predicted_labels)
    if n < 2:
        return 1.0
    table = contingency_table(true_labels, predicted_labels)
    same_both = _comb2(table.astype(float))
    same_true = _comb2(table.sum(axis=1).astype(float))
    same_pred = _comb2(table.sum(axis=0).astype(float))
    total_pairs = n * (n - 1) / 2.0
    agreements = same_both + (total_pairs - same_true - same_pred + same_both)
    return agreements / total_pairs


def adjusted_rand_index(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> float:
    """Adjusted Rand index: chance-corrected pair agreement (1 = identical)."""
    n = _check_lengths(true_labels, predicted_labels)
    if n < 2:
        return 1.0
    table = contingency_table(true_labels, predicted_labels)
    sum_comb = _comb2(table.astype(float))
    sum_rows = _comb2(table.sum(axis=1).astype(float))
    sum_cols = _comb2(table.sum(axis=0).astype(float))
    total_pairs = n * (n - 1) / 2.0
    expected = sum_rows * sum_cols / total_pairs
    maximum = (sum_rows + sum_cols) / 2.0
    if math.isclose(maximum, expected):
        return 1.0 if math.isclose(sum_comb, expected) else 0.0
    return (sum_comb - expected) / (maximum - expected)


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-np.sum(probabilities * np.log(probabilities)))


def normalized_mutual_information(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> float:
    """NMI with arithmetic-mean normalisation (1 = identical partitions)."""
    n = _check_lengths(true_labels, predicted_labels)
    if n == 0:
        return 1.0
    table = contingency_table(true_labels, predicted_labels).astype(float)
    total = table.sum()
    row_marginal = table.sum(axis=1)
    col_marginal = table.sum(axis=0)
    mutual_information = 0.0
    for i in range(table.shape[0]):
        for j in range(table.shape[1]):
            joint = table[i, j]
            if joint == 0:
                continue
            mutual_information += (joint / total) * math.log(
                (joint * total) / (row_marginal[i] * col_marginal[j])
            )
    entropy_true = _entropy(row_marginal)
    entropy_pred = _entropy(col_marginal)
    denominator = (entropy_true + entropy_pred) / 2.0
    if denominator == 0.0:
        # Both partitions are single clusters: they are identical.
        return 1.0
    return mutual_information / denominator


def purity(true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]) -> float:
    """Fraction of items assigned to the majority true class of their cluster."""
    n = _check_lengths(true_labels, predicted_labels)
    if n == 0:
        return 1.0
    clusters: dict[Hashable, Counter] = {}
    for true_label, predicted_label in zip(true_labels, predicted_labels):
        clusters.setdefault(predicted_label, Counter())[true_label] += 1
    correct = sum(counter.most_common(1)[0][1] for counter in clusters.values())
    return correct / n


def pairwise_f1(true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]) -> float:
    """F1 over the "same cluster" relation between item pairs.

    This is the metric that most directly matches the co-location judgement
    task: a pair is positive when the two items share a cluster.
    """
    n = _check_lengths(true_labels, predicted_labels)
    if n < 2:
        return 1.0
    true_positive = false_positive = false_negative = 0
    for i in range(n):
        for j in range(i + 1, n):
            same_true = true_labels[i] == true_labels[j]
            same_pred = predicted_labels[i] == predicted_labels[j]
            if same_true and same_pred:
                true_positive += 1
            elif same_pred and not same_true:
                false_positive += 1
            elif same_true and not same_pred:
                false_negative += 1
    if true_positive == 0:
        return 0.0 if (false_positive or false_negative) else 1.0
    precision = true_positive / (true_positive + false_positive)
    recall = true_positive / (true_positive + false_negative)
    return 2.0 * precision * recall / (precision + recall)


def labels_from_partition(partition: Sequence[set[int] | frozenset[int]], items: Sequence[int]) -> list[int]:
    """Convert a partition (list of item sets) into per-item cluster labels.

    Items missing from every set get their own singleton label.
    """
    assignment: dict[int, int] = {}
    for cluster_id, members in enumerate(partition):
        for item in members:
            assignment[item] = cluster_id
    next_label = len(partition)
    labels = []
    for item in items:
        if item in assignment:
            labels.append(assignment[item])
        else:
            labels.append(next_label)
            next_label += 1
    return labels


def clustering_report(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> dict[str, float]:
    """All clustering metrics in one dictionary."""
    return {
        "rand_index": rand_index(true_labels, predicted_labels),
        "adjusted_rand_index": adjusted_rand_index(true_labels, predicted_labels),
        "nmi": normalized_mutual_information(true_labels, predicted_labels),
        "purity": purity(true_labels, predicted_labels),
        "pairwise_f1": pairwise_f1(true_labels, predicted_labels),
    }
