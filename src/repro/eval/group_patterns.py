"""The group-pattern clustering case study (paper Section 6.5, Table 8).

Groups of five profiles are sampled from the test split so that their POI
memberships follow one of five patterns: ``5-0`` (all five at one POI), ``4-1``,
``3-2``, ``3-1-1`` and ``2-2-1``.  An approach identifies the group correctly
only when its clustering of the five profiles reproduces the ground-truth
partition exactly.  The judge under test only needs to expose
``probability_matrix(profiles)`` (HisRect) or per-profile POI predictions
(naive approaches), both of which are supported.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.colocation.clustering import ProfileClusterer, partition_from_labels, partitions_equal
from repro.data.records import Profile

#: The five patterns of Table 8: sizes of the POI groups within each 5-profile group.
GROUP_PATTERNS: dict[str, tuple[int, ...]] = {
    "5-0": (5,),
    "4-1": (4, 1),
    "3-2": (3, 2),
    "3-1-1": (3, 1, 1),
    "2-2-1": (2, 2, 1),
}


@dataclass
class GroupSample:
    """One sampled group: five profiles plus their ground-truth group labels."""

    profiles: list[Profile]
    labels: list[int]
    pattern: str


class GroupPatternSampler:
    """Samples 5-profile groups matching the Table 8 patterns."""

    def __init__(self, profiles: list[Profile], delta_t: float = 3600.0, seed: int = 91):
        self._rng = np.random.default_rng(seed)
        self.delta_t = delta_t
        # Bucket labelled profiles by (time slot, POI) so sampled groups respect Δt.
        self._buckets: dict[tuple[int, int], list[Profile]] = defaultdict(list)
        for profile in profiles:
            if profile.is_labeled:
                slot = int(profile.ts // delta_t)
                self._buckets[(slot, profile.pid)].append(profile)
        self._slots: dict[int, list[int]] = defaultdict(list)
        for (slot, pid), bucket in self._buckets.items():
            self._slots[slot].append(pid)

    def sample(self, pattern: str, max_attempts: int = 200) -> GroupSample | None:
        """Sample one group for a pattern, or None when the data cannot support it."""
        sizes = GROUP_PATTERNS[pattern]
        slots = [s for s, pids in self._slots.items() if len(pids) >= len(sizes)]
        if not slots:
            return None
        for _ in range(max_attempts):
            slot = int(self._rng.choice(slots))
            pids = list(self._slots[slot])
            self._rng.shuffle(pids)
            chosen: list[tuple[int, int]] = []  # (pid, size)
            used = set()
            ok = True
            for size in sizes:
                candidates = [
                    pid
                    for pid in pids
                    if pid not in used
                    # Need distinct users within the bucket to reach the group size.
                    and len({p.uid for p in self._buckets[(slot, pid)]}) >= size
                ]
                if not candidates:
                    ok = False
                    break
                pid = candidates[0]
                used.add(pid)
                chosen.append((pid, size))
            if not ok:
                continue
            profiles: list[Profile] = []
            labels: list[int] = []
            for group_index, (pid, size) in enumerate(chosen):
                bucket = self._buckets[(slot, pid)]
                by_user: dict[int, Profile] = {}
                for profile in bucket:
                    by_user.setdefault(profile.uid, profile)
                users = list(by_user)
                self._rng.shuffle(users)
                for uid in users[:size]:
                    profiles.append(by_user[uid])
                    labels.append(group_index)
            if len(profiles) == sum(sizes):
                return GroupSample(profiles=profiles, labels=labels, pattern=pattern)
        return None

    def sample_many(self, pattern: str, count: int) -> list[GroupSample]:
        """Sample up to ``count`` groups for a pattern."""
        samples = []
        for _ in range(count):
            sample = self.sample(pattern)
            if sample is None:
                break
            samples.append(sample)
        return samples


def evaluate_clustering_judge(
    judge, samples: list[GroupSample], threshold: float = 0.5
) -> float:
    """Fraction of groups whose predicted partition equals the ground truth.

    ``judge`` must expose ``probability_matrix(profiles)``.
    """
    if not samples:
        return 0.0
    clusterer = ProfileClusterer(judge, threshold=threshold)
    correct = 0
    for sample in samples:
        result = clusterer.cluster(sample.profiles)
        predicted = result.as_partition()
        truth = partition_from_labels(sample.labels)
        if partitions_equal(predicted, truth):
            correct += 1
    return correct / len(samples)


def evaluate_poi_inference_judge(judge, samples: list[GroupSample]) -> float:
    """Group-pattern accuracy of a naive approach that clusters by inferred POI.

    ``judge`` must expose ``infer_poi(profiles) -> list[pid]``.
    """
    if not samples:
        return 0.0
    correct = 0
    for sample in samples:
        predicted_pids = judge.infer_poi(sample.profiles)
        predicted = partition_from_labels(list(predicted_pids))
        truth = partition_from_labels(sample.labels)
        if partitions_equal(predicted, truth):
            correct += 1
    return correct / len(samples)
