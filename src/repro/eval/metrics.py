"""Evaluation metrics used throughout the paper's experiments.

* accuracy / precision / recall / F1 for binary co-location decisions (Table 4,
  Table 5, Figure 5, Table 7);
* ROC curves and AUC for score-producing approaches (Figure 2);
* ``Acc@K`` for POI inference (Figure 4);
* the balanced testing protocol of Section 6.1.3 (split negatives into 10
  folds, merge each fold with all positives, average the metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.records import Pair


@dataclass(frozen=True)
class BinaryMetrics:
    """Accuracy, recall, precision and F1 of a binary classifier."""

    accuracy: float
    recall: float
    precision: float
    f1: float
    support_positive: int = 0
    support_negative: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "Acc": round(self.accuracy, 4),
            "Rec": round(self.recall, 4),
            "Pre": round(self.precision, 4),
            "F1": round(self.f1, 4),
        }


def binary_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> BinaryMetrics:
    """Compute accuracy/recall/precision/F1 from {0,1} arrays."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        return BinaryMetrics(0.0, 0.0, 0.0, 0.0)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    accuracy = (tp + tn) / y_true.size
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return BinaryMetrics(
        accuracy=accuracy,
        recall=recall,
        precision=precision,
        f1=f1,
        support_positive=int(np.sum(y_true == 1)),
        support_negative=int(np.sum(y_true == 0)),
    )


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False-positive rates, true-positive rates and thresholds (descending)."""
    y_true = np.asarray(y_true, dtype=int)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    order = np.argsort(-scores, kind="stable")
    y_sorted = y_true[order]
    scores_sorted = scores[order]
    distinct = np.where(np.diff(scores_sorted))[0]
    threshold_idx = np.concatenate([distinct, [y_true.size - 1]])
    tps = np.cumsum(y_sorted)[threshold_idx]
    fps = 1 + threshold_idx - tps
    n_pos = max(1, int(y_true.sum()))
    n_neg = max(1, int(y_true.size - y_true.sum()))
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], scores_sorted[threshold_idx]])
    return fpr, tpr, thresholds


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Area under a (fpr, tpr) curve via the trapezoidal rule."""
    fpr = np.asarray(fpr, dtype=float)
    tpr = np.asarray(tpr, dtype=float)
    order = np.argsort(fpr, kind="stable")
    return float(np.trapezoid(tpr[order], fpr[order]))


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """AUC straight from labels and scores."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return auc(fpr, tpr)


def accuracy_at_k(true_indices: np.ndarray, score_matrix: np.ndarray, k: int) -> float:
    """Fraction of rows whose true index is within the top-``k`` scores (Acc@K)."""
    true_indices = np.asarray(true_indices, dtype=int)
    score_matrix = np.asarray(score_matrix, dtype=float)
    if score_matrix.ndim != 2 or true_indices.shape[0] != score_matrix.shape[0]:
        raise ValueError("score_matrix must be (B, C) aligned with true_indices")
    if true_indices.size == 0:
        return 0.0
    k = min(k, score_matrix.shape[1])
    top_k = np.argsort(-score_matrix, axis=1)[:, :k]
    hits = (top_k == true_indices[:, None]).any(axis=1)
    return float(hits.mean())


def pair_labels(pairs: list[Pair]) -> np.ndarray:
    """Ground-truth {0,1} labels of labelled pairs."""
    labels = []
    for pair in pairs:
        if not pair.is_labeled:
            raise ValueError("pair_labels() requires labelled pairs")
        labels.append(pair.co_label)
    return np.array(labels, dtype=int)


def balanced_test_folds(
    pairs: list[Pair], num_folds: int = 10, seed: int = 33
) -> list[list[Pair]]:
    """The paper's balanced testing protocol (Section 6.1.3).

    Negative pairs are split into ``num_folds`` disjoint parts; each part is
    merged with *all* positive pairs, producing ``num_folds`` testing sets whose
    metrics are averaged by the caller.
    """
    positives = [p for p in pairs if p.is_positive]
    negatives = [p for p in pairs if p.is_negative]
    if not negatives:
        return [list(positives)]
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(negatives))
    folds: list[list[Pair]] = []
    num_folds = max(1, min(num_folds, len(negatives)))
    chunks = np.array_split(order, num_folds)
    for chunk in chunks:
        fold = list(positives) + [negatives[int(i)] for i in chunk]
        folds.append(fold)
    return folds


def evaluate_judge(
    judge,
    pairs: list[Pair],
    num_folds: int = 10,
    seed: int = 33,
) -> BinaryMetrics:
    """Average Table 4 metrics of a judge over the balanced test folds.

    ``judge`` must expose ``predict(pairs) -> np.ndarray``.
    """
    folds = balanced_test_folds(pairs, num_folds=num_folds, seed=seed)
    metrics = []
    for fold in folds:
        y_true = pair_labels(fold)
        y_pred = judge.predict(fold)
        metrics.append(binary_metrics(y_true, y_pred))
    return BinaryMetrics(
        accuracy=float(np.mean([m.accuracy for m in metrics])),
        recall=float(np.mean([m.recall for m in metrics])),
        precision=float(np.mean([m.precision for m in metrics])),
        f1=float(np.mean([m.f1 for m in metrics])),
        support_positive=metrics[0].support_positive if metrics else 0,
        support_negative=sum(m.support_negative for m in metrics),
    )
