"""A small t-SNE implementation for the Figure 3 feature visualisation.

The paper projects the HisRect features of the test profiles of the top-5 POIs
into two dimensions with t-SNE and observes that profiles from the same POI
form clusters.  This module provides a NumPy t-SNE (exact, O(n²); fine for the
few hundred points the figure uses) plus a cluster-quality score (mean
silhouette on the 2-D projection) so the experiment has a quantitative output
rather than only coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TSNEConfig:
    """t-SNE hyper-parameters."""

    perplexity: float = 15.0
    learning_rate: float = 100.0
    iterations: int = 300
    early_exaggeration: float = 4.0
    exaggeration_iterations: int = 80
    seed: int = 41


def _pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    sums = np.sum(x**2, axis=1)
    d2 = sums[:, None] + sums[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _binary_search_sigma(distances: np.ndarray, perplexity: float, tol: float = 1e-4) -> np.ndarray:
    """Per-point conditional probabilities with entropy matched to log(perplexity)."""
    n = distances.shape[0]
    target = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        beta_lo, beta_hi = -np.inf, np.inf
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf
        for _ in range(50):
            p = np.exp(-row * beta)
            p[i] = 0.0
            total = p.sum()
            if total <= 0:
                p = np.zeros(n)
                entropy = 0.0
            else:
                p /= total
                nonzero = p > 0
                entropy = -np.sum(p[nonzero] * np.log(p[nonzero]))
            diff = entropy - target
            if abs(diff) < tol:
                break
            if diff > 0:
                beta_lo = beta
                beta = beta * 2.0 if beta_hi == np.inf else (beta + beta_hi) / 2.0
            else:
                beta_hi = beta
                beta = beta / 2.0 if beta_lo == -np.inf else (beta + beta_lo) / 2.0
        probabilities[i] = p
    return probabilities


def tsne_embed(features: np.ndarray, config: TSNEConfig | None = None) -> np.ndarray:
    """Project ``(n, d)`` features to 2-D with t-SNE."""
    config = config or TSNEConfig()
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if n == 0:
        return np.zeros((0, 2))
    if n <= 3:
        rng = np.random.default_rng(config.seed)
        return rng.normal(scale=1e-2, size=(n, 2))

    perplexity = min(config.perplexity, max(2.0, (n - 1) / 3.0))
    distances = _pairwise_sq_distances(features)
    conditional = _binary_search_sigma(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    rng = np.random.default_rng(config.seed)
    embedding = rng.normal(scale=1e-4, size=(n, 2))
    velocity = np.zeros_like(embedding)
    momentum = 0.5

    for iteration in range(config.iterations):
        p = joint * (config.early_exaggeration if iteration < config.exaggeration_iterations else 1.0)
        d2 = _pairwise_sq_distances(embedding)
        q_num = 1.0 / (1.0 + d2)
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), 1e-12)
        pq = (p - q) * q_num
        gradient = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ embedding)
        momentum = 0.5 if iteration < 100 else 0.8
        velocity = momentum * velocity - config.learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)
    return embedding


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient of a labelled 2-D embedding.

    Used as the quantitative proxy for "profiles from the same POI form
    clusters" in the Figure 3 reproduction.  Returns 0 for degenerate inputs.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    n = points.shape[0]
    unique = np.unique(labels)
    if n < 3 or unique.size < 2:
        return 0.0
    distances = np.sqrt(_pairwise_sq_distances(points))
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same[i] = False
        a = distances[i, same].mean() if same.any() else 0.0
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            mask = labels == other
            if mask.any():
                b = min(b, distances[i, mask].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 or not np.isfinite(b) else (b - a) / denom
    return float(scores.mean())
