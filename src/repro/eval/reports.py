"""Plain-text report formatting for tables and curves.

Every experiment runner returns structured results; these helpers render them
as the rows the paper prints (Markdown-ish tables and simple series listings)
so benchmark output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Format ``{row_name: {column: value}}`` as an aligned text table."""
    if not rows:
        return title or ""
    if columns is None:
        columns = list(next(iter(rows.values())))
    header = ["Approach"] + list(columns)
    body = []
    for name, values in rows.items():
        rendered = []
        for column in columns:
            value = values.get(column, "")
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        body.append([name] + rendered)
    widths = [max(len(str(row[i])) for row in [header] + body) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in body:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float],
    title: str | None = None,
    x_label: str = "x",
    float_format: str = "{:.4f}",
) -> str:
    """Format named series over shared x values (for the figure reproductions)."""
    header = [x_label] + list(series)
    body = []
    for i, x in enumerate(x_values):
        row = [str(x)]
        for name in series:
            values = series[name]
            row.append(float_format.format(values[i]) if i < len(values) else "")
        body.append(row)
    widths = [max(len(str(row[i])) for row in [header] + body) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in body:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
