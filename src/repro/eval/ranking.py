"""Ranking metrics for the recommendation and POI-inference tasks.

The paper evaluates POI inference with ``Acc@K``; the local-people
recommendation service the paper motivates additionally needs the standard
top-k ranking metrics: precision@k, recall@k, hit rate, mean reciprocal rank
and normalised discounted cumulative gain.  All functions accept a ranked list
of item identifiers plus the set of relevant identifiers, so they work equally
for POIs, users or anything hashable.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


def _validate_k(k: int) -> None:
    if k < 1:
        raise ConfigurationError("k must be at least 1")


def precision_at_k(ranked: Sequence[Hashable], relevant: Iterable[Hashable], k: int) -> float:
    """Fraction of the top-k ranked items that are relevant."""
    _validate_k(k)
    relevant_set = set(relevant)
    if not ranked:
        return 0.0
    top = list(ranked)[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant_set) / len(top)


def recall_at_k(ranked: Sequence[Hashable], relevant: Iterable[Hashable], k: int) -> float:
    """Fraction of the relevant items found in the top-k."""
    _validate_k(k)
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    top = set(list(ranked)[:k])
    return len(top & relevant_set) / len(relevant_set)


def hit_rate_at_k(ranked: Sequence[Hashable], relevant: Iterable[Hashable], k: int) -> float:
    """1.0 when any relevant item appears in the top-k, else 0.0."""
    _validate_k(k)
    relevant_set = set(relevant)
    return 1.0 if any(item in relevant_set for item in list(ranked)[:k]) else 0.0


def reciprocal_rank(ranked: Sequence[Hashable], relevant: Iterable[Hashable]) -> float:
    """1 / rank of the first relevant item (0 when none is ranked)."""
    relevant_set = set(relevant)
    for position, item in enumerate(ranked, start=1):
        if item in relevant_set:
            return 1.0 / position
    return 0.0


def mean_reciprocal_rank(
    rankings: Sequence[Sequence[Hashable]],
    relevants: Sequence[Iterable[Hashable]],
) -> float:
    """Mean reciprocal rank over a batch of queries."""
    if len(rankings) != len(relevants):
        raise ConfigurationError("rankings and relevants must have the same length")
    if not rankings:
        return 0.0
    return float(
        np.mean([reciprocal_rank(ranked, relevant) for ranked, relevant in zip(rankings, relevants)])
    )


def dcg_at_k(relevances: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of a relevance-ordered list."""
    _validate_k(k)
    gains = 0.0
    for position, relevance in enumerate(list(relevances)[:k], start=1):
        gains += (2.0**relevance - 1.0) / math.log2(position + 1.0)
    return gains


def ndcg_at_k(
    ranked: Sequence[Hashable],
    relevance: dict[Hashable, float],
    k: int,
) -> float:
    """Normalised DCG of a ranking against graded relevance judgements.

    ``relevance`` maps items to non-negative gains; missing items count as 0.
    Returns 0 when no item has positive relevance.
    """
    _validate_k(k)
    gains = [float(relevance.get(item, 0.0)) for item in ranked]
    ideal = sorted((float(v) for v in relevance.values() if v > 0.0), reverse=True)
    ideal_dcg = dcg_at_k(ideal, k)
    if ideal_dcg == 0.0:
        return 0.0
    return dcg_at_k(gains, k) / ideal_dcg


def average_precision_at_k(
    ranked: Sequence[Hashable],
    relevant: Iterable[Hashable],
    k: int | None = None,
) -> float:
    """Average precision of a single ranking (optionally truncated at ``k``)."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    items = list(ranked) if k is None else list(ranked)[:k]
    hits = 0
    precision_sum = 0.0
    for position, item in enumerate(items, start=1):
        if item in relevant_set:
            hits += 1
            precision_sum += hits / position
    if hits == 0:
        return 0.0
    return precision_sum / min(len(relevant_set), len(items))


def mean_average_precision(
    rankings: Sequence[Sequence[Hashable]],
    relevants: Sequence[Iterable[Hashable]],
    k: int | None = None,
) -> float:
    """Mean average precision over a batch of queries."""
    if len(rankings) != len(relevants):
        raise ConfigurationError("rankings and relevants must have the same length")
    if not rankings:
        return 0.0
    return float(
        np.mean(
            [
                average_precision_at_k(ranked, relevant, k=k)
                for ranked, relevant in zip(rankings, relevants)
            ]
        )
    )


def ranking_report(
    rankings: Sequence[Sequence[Hashable]],
    relevants: Sequence[Iterable[Hashable]],
    ks: Sequence[int] = (1, 5, 10),
) -> dict[str, float]:
    """A compact dictionary of ranking metrics over a batch of queries."""
    if len(rankings) != len(relevants):
        raise ConfigurationError("rankings and relevants must have the same length")
    report: dict[str, float] = {"mrr": mean_reciprocal_rank(rankings, relevants)}
    for k in ks:
        _validate_k(k)
        report[f"precision@{k}"] = float(
            np.mean([precision_at_k(r, rel, k) for r, rel in zip(rankings, relevants)])
            if rankings
            else 0.0
        )
        report[f"recall@{k}"] = float(
            np.mean([recall_at_k(r, rel, k) for r, rel in zip(rankings, relevants)])
            if rankings
            else 0.0
        )
        report[f"hit@{k}"] = float(
            np.mean([hit_rate_at_k(r, rel, k) for r, rel in zip(rankings, relevants)])
            if rankings
            else 0.0
        )
    return report
