"""Figure 2 — ROC curves and AUC of the non-naive approaches.

The paper excludes the three naive approaches (their decision is not
thresholdable) and plots ROC curves for the remaining eight; the reproduction
reports, per approach and dataset, the AUC plus the (fpr, tpr) series so the
curves can be re-plotted.
"""

from __future__ import annotations

import numpy as np

from repro.eval.metrics import pair_labels, roc_auc_score, roc_curve
from repro.eval.reports import format_table
from repro.experiments.approaches import APPROACH_NAMES, ROC_EXCLUDED
from repro.experiments.runner import ExperimentContext


def run(
    context: ExperimentContext,
    datasets: tuple[str, ...] = ("nyc", "lv"),
    approaches: tuple[str, ...] | None = None,
) -> dict[str, dict[str, dict[str, object]]]:
    """Return ``{dataset: {approach: {auc, fpr, tpr}}}``."""
    if approaches is None:
        approaches = tuple(a for a in APPROACH_NAMES if a not in ROC_EXCLUDED)
    results: dict[str, dict[str, dict[str, object]]] = {}
    for dataset_name in datasets:
        suite = context.suite(dataset_name)
        test_pairs = context.dataset(dataset_name).test.labeled_pairs
        y_true = pair_labels(test_pairs)
        rows: dict[str, dict[str, object]] = {}
        for approach_name in approaches:
            approach = suite.get(approach_name)
            scores = np.asarray(approach.predict_proba(test_pairs))
            fpr, tpr, _ = roc_curve(y_true, scores)
            rows[approach_name] = {
                "auc": roc_auc_score(y_true, scores),
                "fpr": fpr,
                "tpr": tpr,
            }
        results[dataset_name] = rows
    return results


def format_report(results: dict[str, dict[str, dict[str, object]]]) -> str:
    """Render the AUC table of the Figure 2 reproduction."""
    sections = []
    for dataset, rows in results.items():
        table = {name: {"AUC": float(values["auc"])} for name, values in rows.items()}
        sections.append(format_table(table, columns=["AUC"], title=f"Figure 2 ({dataset}): ROC AUC"))
    return "\n\n".join(sections)
