"""Experiment runners — one module per table/figure of the paper.

| Module | Paper artefact |
|---|---|
| :mod:`repro.experiments.table2` | Table 2 — dataset statistics |
| :mod:`repro.experiments.table4` | Table 3 taxonomy + Table 4 co-location performance |
| :mod:`repro.experiments.figure2` | Figure 2 — ROC curves / AUC |
| :mod:`repro.experiments.table5` | Table 5 — missing-history / missing-text ablation |
| :mod:`repro.experiments.figure3` | Figure 3 — t-SNE of HisRect features |
| :mod:`repro.experiments.figure4` | Figure 4 — Acc@K POI inference |
| :mod:`repro.experiments.table6` | Table 6 — TR / FR accuracy split |
| :mod:`repro.experiments.figure5` | Figure 5 — F1 vs training-set size |
| :mod:`repro.experiments.table7` | Table 7 — network-depth sweep |
| :mod:`repro.experiments.figure6` | Figure 6 — training-time scalability |
| :mod:`repro.experiments.table8` | Table 8 — group-pattern clustering |
| :mod:`repro.experiments.ssl_alternatives` | §6.4.3 — SSL loss alternatives |
"""

from repro.experiments.approaches import (
    APPROACH_NAMES,
    NAIVE_APPROACHES,
    POI_INFERENCE_APPROACHES,
    ROC_EXCLUDED,
    TAXONOMY,
    ApproachSuite,
    base_pipeline_config,
    pipeline_config_for,
)
from repro.experiments.config import DEFAULT, FULL, PRESETS, SMOKE, ExperimentScale, resolve_scale
from repro.experiments.runner import DATASETS, ExperimentContext, shared_context

__all__ = [
    "APPROACH_NAMES",
    "NAIVE_APPROACHES",
    "POI_INFERENCE_APPROACHES",
    "ROC_EXCLUDED",
    "TAXONOMY",
    "ApproachSuite",
    "base_pipeline_config",
    "pipeline_config_for",
    "ExperimentScale",
    "resolve_scale",
    "PRESETS",
    "SMOKE",
    "DEFAULT",
    "FULL",
    "ExperimentContext",
    "shared_context",
    "DATASETS",
]
