"""Figure 6 — training-time scalability.

The paper reports the average training time per sample (per profile/pair for
the featurizer, per labelled pair for the judge) across growing fractions of
the training timelines and finds it roughly constant — i.e. total training time
scales linearly with the data.  The reproduction times both phases on the same
fractions and reports milliseconds per sample.
"""

from __future__ import annotations

import time

from repro.colocation import CoLocationPipeline
from repro.eval.reports import format_series
from repro.experiments.approaches import pipeline_config_for
from repro.experiments.figure5 import subsample_training
from repro.experiments.runner import ExperimentContext


def run(
    context: ExperimentContext,
    dataset: str = "nyc",
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
) -> dict[str, list[float]]:
    """Return per-fraction timings: milliseconds per sample for each phase."""
    base = context.dataset(dataset)
    featurizer_ms: list[float] = []
    judge_ms: list[float] = []
    sample_counts: list[float] = []
    for fraction in fractions:
        reduced = subsample_training(base, fraction, seed=context.seed + int(fraction * 100))
        config = pipeline_config_for("HisRect", context.scale, seed=context.seed + 90)
        pipeline = CoLocationPipeline(config)

        train = reduced.train
        featurizer_samples = (
            len(train.labeled_profiles) + len(train.labeled_pairs) + len(train.unlabeled_pairs)
        )
        judge_samples = len(train.labeled_pairs)
        sample_counts.append(float(featurizer_samples))

        start = time.perf_counter()
        pipeline.fit(reduced)
        elapsed = time.perf_counter() - start
        # Featurizer training dominates fit(); judge training is measured separately
        # below by re-fitting the second phase alone on the cached features.
        judge_start = time.perf_counter()
        assert pipeline.judge is not None
        pipeline.judge.fit(train.labeled_pairs)
        judge_elapsed = time.perf_counter() - judge_start

        featurizer_elapsed = max(1e-9, elapsed - judge_elapsed)
        featurizer_ms.append(1000.0 * featurizer_elapsed / max(1, featurizer_samples))
        judge_ms.append(1000.0 * judge_elapsed / max(1, judge_samples))
    return {
        "featurizer_ms_per_sample": featurizer_ms,
        "judge_ms_per_sample": judge_ms,
        "featurizer_samples": sample_counts,
    }


def format_report(results: dict[str, list[float]], fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)) -> str:
    """Render the Figure 6 reproduction as timing series."""
    return format_series(
        results,
        list(fractions),
        title="Figure 6: average training time per sample (ms)",
        x_label="fraction",
    )
