"""Table 5 — HisRect with missing history or missing tweet content.

The well-trained HisRect model is evaluated on two degraded copies of the test
pairs: ``HisRect\\H`` (every profile's visit history removed) and
``HisRect\\T`` (every word of the recent tweet blanked out), and compared with
the History-only, Tweet-only and full HisRect approaches.
"""

from __future__ import annotations

from repro.data.records import Pair
from repro.eval.metrics import evaluate_judge
from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext


def _strip_history(pairs: list[Pair]) -> list[Pair]:
    return [Pair(p.left.without_history(), p.right.without_history(), p.co_label) for p in pairs]


def _strip_content(pairs: list[Pair]) -> list[Pair]:
    return [Pair(p.left.without_content(), p.right.without_content(), p.co_label) for p in pairs]


def run(context: ExperimentContext, dataset: str = "nyc") -> dict[str, dict[str, float]]:
    """Return ``{approach: {Acc, Rec, Pre, F1}}`` for the Table 5 rows."""
    suite = context.suite(dataset)
    test_pairs = context.dataset(dataset).test.labeled_pairs
    folds = context.scale.eval_folds

    hisrect = suite.get("HisRect")
    rows: dict[str, dict[str, float]] = {}
    rows["HisRect\\T"] = evaluate_judge(hisrect, _strip_content(test_pairs), num_folds=folds).as_dict()
    rows["HisRect\\H"] = evaluate_judge(hisrect, _strip_history(test_pairs), num_folds=folds).as_dict()
    rows["History-only"] = evaluate_judge(suite.get("History-only"), test_pairs, num_folds=folds).as_dict()
    rows["Tweet-only"] = evaluate_judge(suite.get("Tweet-only"), test_pairs, num_folds=folds).as_dict()
    rows["HisRect"] = evaluate_judge(hisrect, test_pairs, num_folds=folds).as_dict()
    return rows


def format_report(results: dict[str, dict[str, float]]) -> str:
    """Render the Table 5 reproduction as text."""
    return format_table(
        results,
        columns=["Acc", "Rec", "Pre", "F1"],
        title="Table 5: HisRect with missing history (\\H) or missing tweet content (\\T)",
    )
