"""Section 6.1.2 smoothing factors — sensitivity to ε_d and ρ.

The paper fixes ε_d = 1000 m (the history-feature smoothing of Eq. 1),
ε'_d = 50 m and ρ = 1000 m (the affinity-graph smoothing and cut-off of
Section 4.4) without reporting a sweep.  DESIGN.md calls these out as design
choices worth ablating: this runner retrains HisRect across a grid of ε_d
and ρ values and reports the Table 4 metrics for each, so a user adapting the
model to a denser or sparser city can see how forgiving those knobs are.
"""

from __future__ import annotations

from dataclasses import replace

from repro.colocation import CoLocationPipeline
from repro.eval.metrics import evaluate_judge
from repro.eval.reports import format_table
from repro.experiments.approaches import pipeline_config_for
from repro.experiments.runner import ExperimentContext

#: Default ε_d sweep (metres); the paper's value is 1000 m.
DEFAULT_EPS_D = (250.0, 1000.0, 4000.0)
#: Default ρ sweep (metres); the paper's value is 1000 m.
DEFAULT_RHO = (500.0, 1000.0)


def run_eps_d(
    context: ExperimentContext,
    dataset: str = "nyc",
    values: tuple[float, ...] = DEFAULT_EPS_D,
) -> dict[str, dict[str, float]]:
    """Sweep the history-feature smoothing ε_d; return metrics per value."""
    data = context.dataset(dataset)
    results: dict[str, dict[str, float]] = {}
    for eps_d in values:
        config = pipeline_config_for("HisRect", context.scale, seed=context.seed + 90)
        history = replace(config.hisrect.history, eps_d=eps_d)
        config = replace(config, hisrect=replace(config.hisrect, history=history))
        pipeline = CoLocationPipeline(config).fit(data)
        metrics = evaluate_judge(
            pipeline, data.test.labeled_pairs, num_folds=context.scale.eval_folds
        )
        results[f"eps_d={eps_d:g}m"] = metrics.as_dict()
    return results


def run_rho(
    context: ExperimentContext,
    dataset: str = "nyc",
    values: tuple[float, ...] = DEFAULT_RHO,
) -> dict[str, dict[str, float]]:
    """Sweep the affinity-graph cut-off ρ; return metrics per value."""
    data = context.dataset(dataset)
    results: dict[str, dict[str, float]] = {}
    for rho in values:
        config = pipeline_config_for("HisRect", context.scale, seed=context.seed + 90)
        config = replace(config, affinity=replace(config.affinity, rho=rho))
        pipeline = CoLocationPipeline(config).fit(data)
        metrics = evaluate_judge(
            pipeline, data.test.labeled_pairs, num_folds=context.scale.eval_folds
        )
        results[f"rho={rho:g}m"] = metrics.as_dict()
    return results


def format_report(results: dict[str, dict[str, float]], title: str) -> str:
    """Render a smoothing-factor sweep as text."""
    return format_table(results, columns=["Acc", "Rec", "Pre", "F1"], title=title)
