"""Figure 5 — F1 against the amount of training data.

Fractions of the training timelines are sampled, every stage is retrained on
the reduced data, and the F1 on the (fixed) test pairs is reported per
approach, reproducing the "more data helps everyone, HisRect degrades most
gracefully" shape of Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ColocationDataset, DatasetSplit
from repro.data.profiles import PairBuilder, ProfileBuilder
from repro.eval.metrics import evaluate_judge
from repro.eval.reports import format_series
from repro.experiments.approaches import ApproachSuite
from repro.experiments.runner import ExperimentContext

#: The subset of approaches swept by default (the full Table 3 set works too
#: but multiplies the runtime).
DEFAULT_APPROACHES = ("HisRect", "HisRect-SL", "Tweet-only", "History-only", "One-phase")


def subsample_training(dataset: ColocationDataset, fraction: float, seed: int = 131) -> ColocationDataset:
    """A copy of the dataset whose training split uses ``fraction`` of the timelines."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return dataset
    rng = np.random.default_rng(seed)
    timelines = list(dataset.train.store)
    keep = max(2, int(round(len(timelines) * fraction)))
    indices = rng.choice(len(timelines), size=keep, replace=False)
    subset_store = dataset.train.store.subset(timelines[int(i)].uid for i in indices)

    profile_builder = ProfileBuilder(dataset.registry, max_history=dataset.config.max_history)
    profiles = profile_builder.build_all(subset_store)
    labeled = [p for p in profiles if p.is_labeled]
    unlabeled = [p for p in profiles if not p.is_labeled]
    labeled_pairs, unlabeled_pairs = PairBuilder(dataset.config.pairs).build(profiles)
    train_split = DatasetSplit(
        name="train",
        store=subset_store,
        labeled_profiles=labeled,
        unlabeled_profiles=unlabeled,
        labeled_pairs=labeled_pairs,
        unlabeled_pairs=unlabeled_pairs,
    )
    return ColocationDataset(
        name=dataset.name,
        config=dataset.config,
        city=dataset.city,
        train=train_split,
        validation=dataset.validation,
        test=dataset.test,
    )


def run(
    context: ExperimentContext,
    dataset: str = "nyc",
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    approaches: tuple[str, ...] = DEFAULT_APPROACHES,
) -> dict[str, list[float]]:
    """Return ``{approach: [F1 at each fraction]}`` plus the data ratios."""
    base = context.dataset(dataset)
    test_pairs = base.test.labeled_pairs
    results: dict[str, list[float]] = {name: [] for name in approaches}
    results["positive_pair_ratio"] = []
    for fraction in fractions:
        reduced = subsample_training(base, fraction, seed=context.seed + int(fraction * 100))
        suite = ApproachSuite(reduced, scale=context.scale, seed=context.seed + 90)
        stats = reduced.train.statistics()
        denominator = max(1.0, float(stats["positive_pairs"] + stats["negative_pairs"]))
        results["positive_pair_ratio"].append(float(stats["positive_pairs"]) / denominator)
        for name in approaches:
            metrics = evaluate_judge(suite.get(name), test_pairs, num_folds=context.scale.eval_folds)
            results[name].append(metrics.f1)
    return results


def format_report(results: dict[str, list[float]], fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)) -> str:
    """Render the Figure 5 reproduction as F1-vs-fraction series."""
    return format_series(
        results, list(fractions), title="Figure 5: F1 vs fraction of training timelines",
        x_label="fraction",
    )
