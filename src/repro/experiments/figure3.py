"""Figure 3 — t-SNE visualisation of HisRect features.

HisRect features of the test profiles belonging to the five most popular POIs
are projected to two dimensions with t-SNE.  The paper inspects the projection
visually; the reproduction additionally reports the silhouette score of the
projection labelled by POI (clustered features => silhouette well above zero)
so the claim is checkable without a plot.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.eval.tsne import TSNEConfig, silhouette_score, tsne_embed
from repro.experiments.runner import ExperimentContext


@dataclass
class TSNEResult:
    """Projected coordinates, POI labels and cluster quality."""

    coordinates: np.ndarray
    poi_labels: np.ndarray
    silhouette: float
    pois: list[int]


def run(
    context: ExperimentContext,
    dataset: str = "nyc",
    top_pois: int = 5,
    max_profiles: int = 150,
) -> TSNEResult:
    """Project the HisRect features of top-POI test profiles with t-SNE."""
    suite = context.suite(dataset)
    data = context.dataset(dataset)
    hisrect = suite.get("HisRect")

    labeled = [p for p in data.test.labeled_profiles]
    counts = Counter(p.pid for p in labeled)
    top = [pid for pid, _ in counts.most_common(top_pois)]
    selected = [p for p in labeled if p.pid in top][:max_profiles]
    features = hisrect.features(selected)
    labels = np.array([top.index(p.pid) for p in selected])
    coordinates = tsne_embed(features, TSNEConfig(seed=context.seed))
    return TSNEResult(
        coordinates=coordinates,
        poi_labels=labels,
        silhouette=silhouette_score(coordinates, labels),
        pois=top,
    )


def format_report(result: TSNEResult) -> str:
    """Render the Figure 3 reproduction summary."""
    lines = [
        "Figure 3: t-SNE projection of HisRect features (top POIs of the test split)",
        f"profiles projected : {result.coordinates.shape[0]}",
        f"POIs               : {result.pois}",
        f"silhouette (by POI): {result.silhouette:.3f}",
    ]
    return "\n".join(lines)
