"""Table 7 — effect of the network depth (``Qf`` fully-connected layers and
``Ql`` stacked bidirectional LSTM layers) on recall and accuracy.

The paper sweeps Qf x Ql and observes that deeper is not monotonically better
(Qf = 2, Ql = 3 is its sweet spot).  The grid is configurable so the default
benchmark keeps the sweep affordable while the full grid remains one call away.
"""

from __future__ import annotations

from dataclasses import replace

from repro.colocation import CoLocationPipeline
from repro.eval.metrics import evaluate_judge
from repro.eval.reports import format_table
from repro.experiments.approaches import pipeline_config_for
from repro.experiments.runner import ExperimentContext


def run(
    context: ExperimentContext,
    dataset: str = "nyc",
    fc_layers: tuple[int, ...] = (1, 2),
    lstm_layers: tuple[int, ...] = (1, 2),
) -> dict[str, dict[str, float]]:
    """Return ``{"Qf=i,Ql=j": {Acc, Rec, Pre, F1}}`` for the swept grid."""
    data = context.dataset(dataset)
    test_pairs = data.test.labeled_pairs
    results: dict[str, dict[str, float]] = {}
    for qf in fc_layers:
        for ql in lstm_layers:
            config = pipeline_config_for("HisRect", context.scale, seed=context.seed + 90)
            config = replace(
                config,
                hisrect=replace(config.hisrect, num_fc_layers=qf, num_lstm_layers=ql),
            )
            pipeline = CoLocationPipeline(config).fit(data)
            metrics = evaluate_judge(pipeline, test_pairs, num_folds=context.scale.eval_folds)
            results[f"Qf={qf},Ql={ql}"] = metrics.as_dict()
    return results


def format_report(results: dict[str, dict[str, float]]) -> str:
    """Render the Table 7 reproduction as text."""
    return format_table(
        results,
        columns=["Rec", "Acc", "Pre", "F1"],
        title="Table 7: recall and accuracy across network depths (Qf x Ql)",
    )
