"""Section 6.1.2 — sensitivity of co-location judgement to the time window Δt.

The paper reports a preliminary experiment: co-location performance is
"very stable despite the varying Δt", which is why Δt = 1 hour is fixed for
every other experiment.  This runner reproduces that check.  For each Δt the
labelled and unlabelled pairs of every split are re-enumerated from the same
profiles (only the pairing window changes — the underlying timelines and
profiles are untouched), the full HisRect pipeline is retrained, and the
Table 4 metrics are reported.
"""

from __future__ import annotations

from dataclasses import replace

from repro.colocation import CoLocationPipeline
from repro.data.dataset import ColocationDataset, DatasetSplit
from repro.data.profiles import PairBuilder
from repro.data.timelines import HOUR_SECONDS
from repro.eval.metrics import evaluate_judge
from repro.eval.reports import format_table
from repro.experiments.approaches import pipeline_config_for
from repro.experiments.runner import ExperimentContext

#: The Δt values swept by default, in seconds.
DEFAULT_WINDOWS = (0.5 * HOUR_SECONDS, HOUR_SECONDS, 2.0 * HOUR_SECONDS)


def _rebuild_split(split: DatasetSplit, pair_builder: PairBuilder, keep_unlabeled: bool) -> DatasetSplit:
    """Re-enumerate the pairs of one split under a different Δt."""
    profiles = split.labeled_profiles + split.unlabeled_profiles
    labeled_pairs, unlabeled_pairs = pair_builder.build(profiles)
    return DatasetSplit(
        name=split.name,
        store=split.store,
        labeled_profiles=split.labeled_profiles,
        unlabeled_profiles=split.unlabeled_profiles,
        labeled_pairs=labeled_pairs,
        unlabeled_pairs=unlabeled_pairs if keep_unlabeled else [],
    )


def with_delta_t(dataset: ColocationDataset, delta_t: float) -> ColocationDataset:
    """A copy of ``dataset`` whose pairs are rebuilt with a different Δt."""
    pairs_config = replace(dataset.config.pairs, delta_t=delta_t)
    config = replace(dataset.config, pairs=pairs_config)
    builder = PairBuilder(pairs_config)
    return ColocationDataset(
        name=dataset.name,
        config=config,
        city=dataset.city,
        train=_rebuild_split(dataset.train, builder, keep_unlabeled=True),
        validation=_rebuild_split(dataset.validation, builder, keep_unlabeled=False),
        test=_rebuild_split(dataset.test, builder, keep_unlabeled=False),
    )


def run(
    context: ExperimentContext,
    dataset: str = "nyc",
    windows: tuple[float, ...] = DEFAULT_WINDOWS,
) -> dict[str, dict[str, float]]:
    """Return ``{"Δt=<hours>h": {Acc, Rec, Pre, F1}}`` for each window."""
    base = context.dataset(dataset)
    results: dict[str, dict[str, float]] = {}
    for delta_t in windows:
        varied = with_delta_t(base, delta_t)
        config = pipeline_config_for("HisRect", context.scale, seed=context.seed + 90)
        config = replace(config, affinity=replace(config.affinity, delta_t=delta_t))
        pipeline = CoLocationPipeline(config).fit(varied)
        metrics = evaluate_judge(
            pipeline, varied.test.labeled_pairs, num_folds=context.scale.eval_folds
        )
        label = f"dt={delta_t / HOUR_SECONDS:g}h"
        results[label] = metrics.as_dict()
    return results


def format_report(results: dict[str, dict[str, float]]) -> str:
    """Render the Δt sensitivity check as text."""
    return format_table(
        results,
        columns=["Acc", "Rec", "Pre", "F1"],
        title="Section 6.1.2: sensitivity to the co-location window Δt",
    )
