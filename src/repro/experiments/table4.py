"""Table 4 — co-location performance of the eleven approaches.

For each approach of Table 3 and each dataset, the runner evaluates accuracy,
recall, precision and F1 on the balanced testing folds of Section 6.1.3
(negatives split into folds, each merged with all positives, metrics averaged).
"""

from __future__ import annotations

from repro.eval.metrics import evaluate_judge
from repro.eval.reports import format_table
from repro.experiments.approaches import APPROACH_NAMES, TAXONOMY
from repro.experiments.runner import ExperimentContext


def run(
    context: ExperimentContext,
    datasets: tuple[str, ...] = ("nyc", "lv"),
    approaches: tuple[str, ...] | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Return ``{dataset: {approach: {Acc, Rec, Pre, F1}}}``."""
    approaches = approaches or APPROACH_NAMES
    results: dict[str, dict[str, dict[str, float]]] = {}
    for dataset_name in datasets:
        suite = context.suite(dataset_name)
        test_pairs = context.dataset(dataset_name).test.labeled_pairs
        rows: dict[str, dict[str, float]] = {}
        for approach_name in approaches:
            approach = suite.get(approach_name)
            metrics = evaluate_judge(approach, test_pairs, num_folds=context.scale.eval_folds)
            rows[approach_name] = metrics.as_dict()
        results[dataset_name] = rows
    return results


def taxonomy_rows() -> dict[str, dict[str, str]]:
    """Table 3: the taxonomy of the eleven approaches."""
    rows = {}
    for name in APPROACH_NAMES:
        tax = TAXONOMY[name]
        rows[name] = {
            "HV": "x" if tax.uses_history else "-",
            "Tweet": "x" if tax.uses_tweet else "-",
            "SSL": "x" if tax.uses_ssl else "-",
            "FF": "x" if tax.feature_first else "-",
            "Naive": "x" if tax.naive else "-",
        }
    return rows


def format_report(results: dict[str, dict[str, dict[str, float]]]) -> str:
    """Render the Table 4 reproduction (plus the Table 3 taxonomy) as text."""
    sections = [format_table(taxonomy_rows(), title="Table 3: approach taxonomy")]
    for dataset, rows in results.items():
        sections.append(
            format_table(rows, columns=["Acc", "Rec", "Pre", "F1"],
                         title=f"Table 4 ({dataset}): co-location performance")
        )
    return "\n\n".join(sections)
