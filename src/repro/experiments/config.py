"""Experiment sizing.

The paper's experiments run on a GPU cluster over a million-user crawl; the
reproduction exposes one knob — :class:`ExperimentScale` — that sizes the
synthetic datasets and the training budgets.  Three presets are provided:

* ``smoke``   — minutes-long unit-test sizing;
* ``default`` — the benchmark sizing (laptop, tens of minutes for the full
  suite);
* ``full``    — closer to the paper's relative data volumes (hours on a laptop).

Every experiment runner takes an ``ExperimentScale`` so callers can dial
fidelity against wall-clock.  The ``REPRO_EXPERIMENT_SCALE`` environment
variable selects the preset used by the benchmark suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentScale:
    """Dataset and training budget used by the experiment runners."""

    name: str
    #: Multiplier applied to the dataset presets (users, POIs).
    dataset_scale: float
    #: Iterations of the semi-supervised featurizer training (Algorithm 1).
    ssl_iterations: int
    #: Epochs of the phase-two judge training.
    judge_epochs: int
    #: Iterations of One-phase end-to-end training.
    onephase_iterations: int
    #: Skip-gram epochs.
    skipgram_epochs: int
    #: Content feature dimensionality ``N``.
    content_dim: int
    #: HisRect feature dimensionality.
    feature_dim: int
    #: Embedding dimensionality for ``E`` and ``E'``.
    embedding_dim: int
    #: Word-vector dimensionality ``M``.
    word_dim: int
    #: Groups sampled per pattern in the Table 8 case study.
    groups_per_pattern: int
    #: Number of balanced negative folds for Table 4 metrics.
    eval_folds: int


SMOKE = ExperimentScale(
    name="smoke",
    dataset_scale=0.3,
    ssl_iterations=30,
    judge_epochs=8,
    onephase_iterations=30,
    skipgram_epochs=1,
    content_dim=8,
    feature_dim=16,
    embedding_dim=8,
    word_dim=16,
    groups_per_pattern=20,
    eval_folds=2,
)

DEFAULT = ExperimentScale(
    name="default",
    dataset_scale=1.0,
    ssl_iterations=340,
    judge_epochs=30,
    onephase_iterations=200,
    skipgram_epochs=2,
    content_dim=12,
    feature_dim=24,
    embedding_dim=12,
    word_dim=24,
    groups_per_pattern=100,
    eval_folds=5,
)

FULL = ExperimentScale(
    name="full",
    dataset_scale=1.5,
    ssl_iterations=600,
    judge_epochs=60,
    onephase_iterations=600,
    skipgram_epochs=3,
    content_dim=16,
    feature_dim=32,
    embedding_dim=16,
    word_dim=32,
    groups_per_pattern=500,
    eval_folds=10,
)

PRESETS = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}


def resolve_scale(name: str | ExperimentScale | None = None) -> ExperimentScale:
    """Resolve a preset name (or pass-through an ``ExperimentScale``).

    With ``None``, the ``REPRO_EXPERIMENT_SCALE`` environment variable is
    consulted and falls back to ``default``.
    """
    if isinstance(name, ExperimentScale):
        return name
    if name is None:
        name = os.environ.get("REPRO_EXPERIMENT_SCALE", "default")
    try:
        return PRESETS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown experiment scale {name!r}; choose from {sorted(PRESETS)}"
        ) from exc
