"""Figure 4 — Acc@K of POI inference.

Each approach that can infer POIs from a profile is evaluated on the labelled
test profiles: Acc@K is the fraction of profiles whose true POI appears among
the approach's top-K scored POIs, for K = 1..10 (paper Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.eval.metrics import accuracy_at_k
from repro.eval.reports import format_series
from repro.experiments.approaches import POI_INFERENCE_APPROACHES
from repro.experiments.runner import ExperimentContext


def run(
    context: ExperimentContext,
    datasets: tuple[str, ...] = ("nyc", "lv"),
    approaches: tuple[str, ...] = POI_INFERENCE_APPROACHES,
    max_k: int = 10,
) -> dict[str, dict[str, list[float]]]:
    """Return ``{dataset: {approach: [Acc@1, ..., Acc@max_k]}}``."""
    results: dict[str, dict[str, list[float]]] = {}
    for dataset_name in datasets:
        suite = context.suite(dataset_name)
        data = context.dataset(dataset_name)
        profiles = data.test.labeled_profiles
        true_indices = np.array([data.registry.index_of(p.pid) for p in profiles])
        rows: dict[str, list[float]] = {}
        for approach_name in approaches:
            approach = suite.get(approach_name)
            scores = np.asarray(approach.infer_poi_proba(profiles))
            rows[approach_name] = [
                accuracy_at_k(true_indices, scores, k) for k in range(1, max_k + 1)
            ]
        results[dataset_name] = rows
    return results


def format_report(results: dict[str, dict[str, list[float]]], max_k: int = 10) -> str:
    """Render the Figure 4 reproduction as Acc@K series."""
    sections = []
    for dataset, rows in results.items():
        sections.append(
            format_series(rows, list(range(1, max_k + 1)),
                          title=f"Figure 4 ({dataset}): Acc@K of POI inference", x_label="K")
        )
    return "\n\n".join(sections)
