"""The eleven co-location approaches of Table 3, built through the registry.

Every approach exposes ``predict(pairs)`` and ``predict_proba(pairs)``; the
non-naive ones also expose ``infer_poi_proba(profiles)`` (POI inference,
Figure 4) and, for the feature-first ones, ``probability_matrix(profiles)``
(clustering, Table 8).  The Table 3 names map one-to-one onto ``"judge"``
registry entries (``registry_name_for``), so :class:`ApproachSuite` builds
each approach from a plain configuration dictionary via
``repro.registry.build`` instead of hand-wired imports, trains it lazily and
caches it — experiments that share a trained model (Table 4, Figure 2,
Figure 4, Table 8, ...) never retrain it.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.registry as registry_mod
from repro.colocation import (
    Comp2LocApproach,
    CoLocationPipeline,
    JudgeConfig,
    OnePhaseConfig,
    PipelineConfig,
    variant_pipeline_config,
)
from repro.colocation.variants import PIPELINE_VARIANTS
from repro.data.dataset import ColocationDataset
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentScale, resolve_scale
from repro.features import HisRectConfig
from repro.io.configs import config_to_dict
from repro.ssl import SSLTrainingConfig
from repro.text.skipgram import SkipGramConfig

#: Table 3 rows, in the paper's order.
APPROACH_NAMES = (
    "TG-TI-C",
    "N-Gram-Gauss",
    "Comp2Loc",
    "One-phase",
    "History-only",
    "Tweet-only",
    "HisRect-SL",
    "One-hot",
    "BLSTM",
    "ConvLSTM",
    "HisRect",
)

#: Approaches that only do naive "infer two POIs and compare".
NAIVE_APPROACHES = ("TG-TI-C", "N-Gram-Gauss", "Comp2Loc")

#: Approaches excluded from the ROC comparison (Figure 2), as in the paper.
ROC_EXCLUDED = NAIVE_APPROACHES

#: Approaches compared on POI inference (Figure 4): the paper's nine.
POI_INFERENCE_APPROACHES = (
    "History-only",
    "Tweet-only",
    "One-hot",
    "HisRect-SL",
    "BLSTM",
    "ConvLSTM",
    "N-Gram-Gauss",
    "TG-TI-C",
    "HisRect",
)


@dataclass(frozen=True)
class ApproachTaxonomy:
    """One row of Table 3."""

    name: str
    uses_history: bool
    uses_tweet: bool
    uses_ssl: bool
    feature_first: bool
    naive: bool


TAXONOMY: dict[str, ApproachTaxonomy] = {
    "N-Gram-Gauss": ApproachTaxonomy("N-Gram-Gauss", False, True, False, False, True),
    "TG-TI-C": ApproachTaxonomy("TG-TI-C", False, True, False, False, True),
    "Comp2Loc": ApproachTaxonomy("Comp2Loc", True, True, True, True, True),
    "One-phase": ApproachTaxonomy("One-phase", True, True, False, False, False),
    "History-only": ApproachTaxonomy("History-only", True, False, True, True, False),
    "Tweet-only": ApproachTaxonomy("Tweet-only", False, True, True, True, False),
    "HisRect-SL": ApproachTaxonomy("HisRect-SL", True, True, False, True, False),
    "One-hot": ApproachTaxonomy("One-hot", True, True, True, True, False),
    "BLSTM": ApproachTaxonomy("BLSTM", True, True, True, True, False),
    "ConvLSTM": ApproachTaxonomy("ConvLSTM", True, True, True, True, False),
    "HisRect": ApproachTaxonomy("HisRect", True, True, True, True, False),
}


def base_pipeline_config(scale: ExperimentScale, seed: int = 97) -> PipelineConfig:
    """The HisRect pipeline configuration at a given experiment scale."""
    return PipelineConfig(
        hisrect=HisRectConfig(
            content_dim=scale.content_dim,
            feature_dim=scale.feature_dim,
            embedding_dim=scale.embedding_dim,
            seed=seed,
        ),
        ssl=SSLTrainingConfig(max_iterations=scale.ssl_iterations, seed=seed + 1),
        judge=JudgeConfig(
            embedding_dim=scale.embedding_dim,
            classifier_dim=scale.embedding_dim,
            epochs=scale.judge_epochs,
            seed=seed + 2,
        ),
        onephase=OnePhaseConfig(
            judge=JudgeConfig(
                embedding_dim=scale.embedding_dim,
                classifier_dim=scale.embedding_dim,
                seed=seed + 3,
            ),
            max_iterations=scale.onephase_iterations,
            seed=seed + 4,
        ),
        skipgram=SkipGramConfig(embedding_dim=scale.word_dim, epochs=scale.skipgram_epochs, seed=seed + 5),
        seed=seed,
    )


def registry_name_for(name: str) -> str:
    """The ``"judge"`` registry name implementing a Table 3 approach."""
    if name not in APPROACH_NAMES:
        raise ConfigurationError(f"unknown approach {name!r}; choose from {APPROACH_NAMES}")
    return name.lower()


def pipeline_config_for(name: str, scale: ExperimentScale, seed: int = 97) -> PipelineConfig:
    """The pipeline configuration implementing a neural Table 3 approach."""
    config = base_pipeline_config(scale, seed=seed)
    # Comp2Loc rides on the plain two-phase HisRect pipeline.
    variant = "hisrect" if name == "Comp2Loc" else name.lower()
    return variant_pipeline_config(variant, config)


class ApproachSuite:
    """Lazily builds and caches the trained approaches for one dataset."""

    def __init__(
        self,
        dataset: ColocationDataset,
        scale: ExperimentScale | str | None = None,
        seed: int = 97,
    ):
        self.dataset = dataset
        self.scale = resolve_scale(scale)
        self.seed = seed
        self._cache: dict[str, object] = {}

    def available(self) -> tuple[str, ...]:
        """All approach names (Table 3)."""
        return APPROACH_NAMES

    def get(self, name: str):
        """Return the fitted approach, training it on first use."""
        if name not in APPROACH_NAMES:
            raise ConfigurationError(f"unknown approach {name!r}; choose from {APPROACH_NAMES}")
        if name not in self._cache:
            self._cache[name] = self._build(name)
        return self._cache[name]

    def _build(self, name: str):
        if name == "Comp2Loc":
            # Comp2Loc shares the HisRect featurizer and POI classifier.
            hisrect: CoLocationPipeline = self.get("HisRect")  # type: ignore[assignment]
            return Comp2LocApproach.from_pipeline(hisrect)
        key = registry_name_for(name)
        if key in PIPELINE_VARIANTS:
            config = config_to_dict(base_pipeline_config(self.scale, seed=self.seed))
        else:
            config = None  # Baselines run with their published defaults.
        approach = registry_mod.build("judge", key, config)
        return approach.fit(self.dataset)

    def trained_names(self) -> list[str]:
        """Approaches already trained (for reporting/caching diagnostics)."""
        return sorted(self._cache)
