"""The eleven co-location approaches of Table 3, built from one factory.

Every approach exposes ``predict(pairs)`` and ``predict_proba(pairs)``; the
non-naive ones also expose ``infer_poi_proba(profiles)`` (POI inference,
Figure 4) and, for the feature-first ones, ``probability_matrix(profiles)``
(clustering, Table 8).  :class:`ApproachSuite` trains approaches lazily and
caches them, so experiments that share a trained model (Table 4, Figure 2,
Figure 4, Table 8, ...) never retrain it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines import NGramGaussBaseline, TGTICBaseline
from repro.colocation import CoLocationPipeline, JudgeConfig, OnePhaseConfig, PipelineConfig
from repro.data.dataset import ColocationDataset
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentScale, resolve_scale
from repro.features import HisRectConfig
from repro.ssl import SSLTrainingConfig
from repro.text.skipgram import SkipGramConfig

#: Table 3 rows, in the paper's order.
APPROACH_NAMES = (
    "TG-TI-C",
    "N-Gram-Gauss",
    "Comp2Loc",
    "One-phase",
    "History-only",
    "Tweet-only",
    "HisRect-SL",
    "One-hot",
    "BLSTM",
    "ConvLSTM",
    "HisRect",
)

#: Approaches that only do naive "infer two POIs and compare".
NAIVE_APPROACHES = ("TG-TI-C", "N-Gram-Gauss", "Comp2Loc")

#: Approaches excluded from the ROC comparison (Figure 2), as in the paper.
ROC_EXCLUDED = NAIVE_APPROACHES

#: Approaches compared on POI inference (Figure 4): the paper's nine.
POI_INFERENCE_APPROACHES = (
    "History-only",
    "Tweet-only",
    "One-hot",
    "HisRect-SL",
    "BLSTM",
    "ConvLSTM",
    "N-Gram-Gauss",
    "TG-TI-C",
    "HisRect",
)


@dataclass(frozen=True)
class ApproachTaxonomy:
    """One row of Table 3."""

    name: str
    uses_history: bool
    uses_tweet: bool
    uses_ssl: bool
    feature_first: bool
    naive: bool


TAXONOMY: dict[str, ApproachTaxonomy] = {
    "N-Gram-Gauss": ApproachTaxonomy("N-Gram-Gauss", False, True, False, False, True),
    "TG-TI-C": ApproachTaxonomy("TG-TI-C", False, True, False, False, True),
    "Comp2Loc": ApproachTaxonomy("Comp2Loc", True, True, True, True, True),
    "One-phase": ApproachTaxonomy("One-phase", True, True, False, False, False),
    "History-only": ApproachTaxonomy("History-only", True, False, True, True, False),
    "Tweet-only": ApproachTaxonomy("Tweet-only", False, True, True, True, False),
    "HisRect-SL": ApproachTaxonomy("HisRect-SL", True, True, False, True, False),
    "One-hot": ApproachTaxonomy("One-hot", True, True, True, True, False),
    "BLSTM": ApproachTaxonomy("BLSTM", True, True, True, True, False),
    "ConvLSTM": ApproachTaxonomy("ConvLSTM", True, True, True, True, False),
    "HisRect": ApproachTaxonomy("HisRect", True, True, True, True, False),
}


def base_pipeline_config(scale: ExperimentScale, seed: int = 97) -> PipelineConfig:
    """The HisRect pipeline configuration at a given experiment scale."""
    return PipelineConfig(
        hisrect=HisRectConfig(
            content_dim=scale.content_dim,
            feature_dim=scale.feature_dim,
            embedding_dim=scale.embedding_dim,
            seed=seed,
        ),
        ssl=SSLTrainingConfig(max_iterations=scale.ssl_iterations, seed=seed + 1),
        judge=JudgeConfig(
            embedding_dim=scale.embedding_dim,
            classifier_dim=scale.embedding_dim,
            epochs=scale.judge_epochs,
            seed=seed + 2,
        ),
        onephase=OnePhaseConfig(
            judge=JudgeConfig(
                embedding_dim=scale.embedding_dim,
                classifier_dim=scale.embedding_dim,
                seed=seed + 3,
            ),
            max_iterations=scale.onephase_iterations,
            seed=seed + 4,
        ),
        skipgram=SkipGramConfig(embedding_dim=scale.word_dim, epochs=scale.skipgram_epochs, seed=seed + 5),
        seed=seed,
    )


def pipeline_config_for(name: str, scale: ExperimentScale, seed: int = 97) -> PipelineConfig:
    """The pipeline configuration implementing a neural Table 3 approach."""
    config = base_pipeline_config(scale, seed=seed)
    hisrect = config.hisrect
    if name in ("HisRect", "Comp2Loc"):
        pass
    elif name == "HisRect-SL":
        config = replace(config, ssl=replace(config.ssl, use_unlabeled=False))
    elif name == "History-only":
        hisrect = replace(hisrect, use_content=False)
    elif name == "Tweet-only":
        hisrect = replace(hisrect, use_history=False)
    elif name == "One-hot":
        hisrect = replace(hisrect, history_encoding="onehot")
    elif name == "BLSTM":
        hisrect = replace(hisrect, content_encoder="blstm")
    elif name == "ConvLSTM":
        hisrect = replace(hisrect, content_encoder="convlstm")
    elif name == "One-phase":
        config = replace(config, mode="one-phase")
    else:
        raise ConfigurationError(f"{name!r} is not a pipeline-based approach")
    return replace(config, hisrect=hisrect)


class ApproachSuite:
    """Lazily builds and caches the trained approaches for one dataset."""

    def __init__(
        self,
        dataset: ColocationDataset,
        scale: ExperimentScale | str | None = None,
        seed: int = 97,
    ):
        self.dataset = dataset
        self.scale = resolve_scale(scale)
        self.seed = seed
        self._cache: dict[str, object] = {}

    def available(self) -> tuple[str, ...]:
        """All approach names (Table 3)."""
        return APPROACH_NAMES

    def get(self, name: str):
        """Return the fitted approach, training it on first use."""
        if name not in APPROACH_NAMES:
            raise ConfigurationError(f"unknown approach {name!r}; choose from {APPROACH_NAMES}")
        if name not in self._cache:
            self._cache[name] = self._build(name)
        return self._cache[name]

    def _build(self, name: str):
        train_profiles = self.dataset.train.labeled_profiles
        if name == "TG-TI-C":
            return TGTICBaseline(self.dataset.registry).fit(train_profiles)
        if name == "N-Gram-Gauss":
            return NGramGaussBaseline(self.dataset.registry).fit(train_profiles)
        if name == "Comp2Loc":
            # Comp2Loc shares the HisRect featurizer and POI classifier.
            hisrect: CoLocationPipeline = self.get("HisRect")  # type: ignore[assignment]
            return hisrect.comp2loc()
        config = pipeline_config_for(name, self.scale, seed=self.seed)
        return CoLocationPipeline(config).fit(self.dataset)

    def trained_names(self) -> list[str]:
        """Approaches already trained (for reporting/caching diagnostics)."""
        return sorted(self._cache)
