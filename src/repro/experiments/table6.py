"""Table 6 — HisRect POI-inference accuracy on the TR and FR splits.

The labelled test profiles are split into ``TR`` (profiles whose POI either
History-only or Tweet-only infers correctly) and ``FR`` (profiles both get
wrong).  The table reports HisRect's accuracy on each part: high accuracy on
``TR`` shows the combined feature captures whatever either source captures;
non-trivial accuracy on ``FR`` shows the combination adds information beyond
both single-source features.
"""

from __future__ import annotations

import numpy as np

from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext


def run(context: ExperimentContext, datasets: tuple[str, ...] = ("nyc", "lv")) -> dict[str, dict[str, float]]:
    """Return ``{dataset: {TR_count, TR_acc, FR_count, FR_acc}}``."""
    results: dict[str, dict[str, float]] = {}
    for dataset_name in datasets:
        suite = context.suite(dataset_name)
        data = context.dataset(dataset_name)
        profiles = data.test.labeled_profiles
        true_indices = np.array([data.registry.index_of(p.pid) for p in profiles])

        history_pred = np.asarray(suite.get("History-only").infer_poi_proba(profiles)).argmax(axis=1)
        tweet_pred = np.asarray(suite.get("Tweet-only").infer_poi_proba(profiles)).argmax(axis=1)
        hisrect_pred = np.asarray(suite.get("HisRect").infer_poi_proba(profiles)).argmax(axis=1)

        either_correct = (history_pred == true_indices) | (tweet_pred == true_indices)
        tr_mask = either_correct
        fr_mask = ~either_correct
        hisrect_correct = hisrect_pred == true_indices

        results[dataset_name] = {
            "TR_count": int(tr_mask.sum()),
            "TR_acc": float(hisrect_correct[tr_mask].mean()) if tr_mask.any() else 0.0,
            "FR_count": int(fr_mask.sum()),
            "FR_acc": float(hisrect_correct[fr_mask].mean()) if fr_mask.any() else 0.0,
        }
    return results


def format_report(results: dict[str, dict[str, float]]) -> str:
    """Render the Table 6 reproduction as text."""
    return format_table(
        results,
        columns=["TR_count", "TR_acc", "FR_count", "FR_acc"],
        title="Table 6: HisRect accuracy on TR (single-source solvable) and FR (neither solves) profiles",
    )
