"""Section 6.4.3 — comparison with other SSL formulations.

Three variants of the unsupervised loss are trained and evaluated:

* ``cosine``         — the paper's loss (cosine distance between normalised
  embeddings);
* ``l2``             — squared Euclidean distance between embeddings (the
  Weston et al. semi-supervised embedding);
* ``cosine-noembed`` — cosine distance computed directly on the HisRect
  features, i.e. the embedding ``E`` removed.

The paper finds the cosine + embedding combination best on both accuracy and
recall; the runner reports all four Table 4 metrics for each variant.
"""

from __future__ import annotations

from dataclasses import replace

from repro.colocation import CoLocationPipeline
from repro.eval.metrics import evaluate_judge
from repro.eval.reports import format_table
from repro.experiments.approaches import pipeline_config_for
from repro.experiments.runner import ExperimentContext
from repro.ssl.trainer import UNSUPERVISED_LOSSES


def run(
    context: ExperimentContext,
    dataset: str = "nyc",
    variants: tuple[str, ...] = UNSUPERVISED_LOSSES,
) -> dict[str, dict[str, float]]:
    """Return ``{variant: {Acc, Rec, Pre, F1}}``."""
    data = context.dataset(dataset)
    test_pairs = data.test.labeled_pairs
    results: dict[str, dict[str, float]] = {}
    for variant in variants:
        config = pipeline_config_for("HisRect", context.scale, seed=context.seed + 90)
        config = replace(config, ssl=replace(config.ssl, unsupervised_loss=variant))
        pipeline = CoLocationPipeline(config).fit(data)
        metrics = evaluate_judge(pipeline, test_pairs, num_folds=context.scale.eval_folds)
        results[variant] = metrics.as_dict()
    return results


def format_report(results: dict[str, dict[str, float]]) -> str:
    """Render the §6.4.3 comparison as text."""
    return format_table(
        results,
        columns=["Acc", "Rec", "Pre", "F1"],
        title="Section 6.4.3: SSL alternatives (unsupervised loss variants)",
    )
