"""Table 2 — dataset statistics.

Reports, per dataset (NYC-like, LV-like) and per split, the number of
timelines, labelled profiles, the average visit-history length and the counts
of positive / negative / unlabelled pairs, mirroring the layout of Table 2.
"""

from __future__ import annotations

from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext


def run(context: ExperimentContext, datasets: tuple[str, ...] = ("nyc", "lv")) -> dict[str, dict[str, dict[str, float]]]:
    """Return ``{dataset: {split: statistics}}``."""
    return {name: context.dataset(name).statistics() for name in datasets}


def format_report(results: dict[str, dict[str, dict[str, float]]]) -> str:
    """Render the Table 2 reproduction as text."""
    sections = []
    columns = [
        "timelines",
        "labeled_profiles",
        "avg_visits_per_profile",
        "positive_pairs",
        "negative_pairs",
        "unlabeled_pairs",
    ]
    for dataset, splits in results.items():
        sections.append(
            format_table(splits, columns=columns, title=f"Table 2 ({dataset}): dataset statistics",
                         float_format="{:.2f}")
        )
    return "\n\n".join(sections)
