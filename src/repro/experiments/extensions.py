"""Extension experiments beyond the paper's evaluation.

Two studies back the paper's future-work directions and the reproduction's own
design-choice ablations:

* **Encoder extensions** — swap the BiLSTM-C content encoder for a
  bidirectional GRU or an attention-pooled BLSTM and re-run the Table 4
  protocol.  The expectation is that BiLSTM-C stays competitive, confirming
  the paper's choice, while the cheaper GRU trails only slightly.
* **Social extension** — build a friendship graph over the training users
  (synthetic friendships correlated with co-visitation), extract social and
  frequent-pattern pair features, stack them on the trained HisRect judge and
  compare against the plain judge on the test pairs (Section 7's proposal).
"""

from __future__ import annotations

from dataclasses import replace

from repro.colocation import CoLocationPipeline
from repro.eval.metrics import evaluate_judge
from repro.eval.reports import format_table
from repro.experiments.approaches import pipeline_config_for
from repro.experiments.runner import ExperimentContext
from repro.social import (
    SocialCoLocationJudge,
    SocialFeatureExtractor,
    SocialGraphConfig,
    SocialJudgeConfig,
    generate_social_graph,
)

#: Content encoders compared by the encoder-extension study.
EXTENSION_ENCODERS = ("bilstm-c", "bgru", "attention")


def run_encoders(
    context: ExperimentContext,
    dataset: str = "nyc",
    encoders: tuple[str, ...] = EXTENSION_ENCODERS,
) -> dict[str, dict[str, float]]:
    """Table-4 metrics of HisRect pipelines differing only in the content encoder."""
    data = context.dataset(dataset)
    test_pairs = data.test.labeled_pairs
    results: dict[str, dict[str, float]] = {}
    for encoder in encoders:
        config = pipeline_config_for("HisRect", context.scale, seed=context.seed + 90)
        config = replace(config, hisrect=replace(config.hisrect, content_encoder=encoder))
        pipeline = CoLocationPipeline(config).fit(data)
        metrics = evaluate_judge(pipeline, test_pairs, num_folds=context.scale.eval_folds)
        results[encoder] = metrics.as_dict()
    return results


def format_encoder_report(results: dict[str, dict[str, float]]) -> str:
    """Render the encoder-extension study as text."""
    return format_table(
        results,
        columns=["Acc", "Rec", "Pre", "F1"],
        title="Extension: content-encoder variants (BiLSTM-C vs BiGRU vs attention)",
    )


def run_social(
    context: ExperimentContext,
    dataset: str = "nyc",
    social_config: SocialGraphConfig | None = None,
    judge_config: SocialJudgeConfig | None = None,
) -> dict[str, dict[str, float]]:
    """Compare the plain HisRect judge against the social-augmented judge.

    The friendship graph is generated over the *training* users only and the
    stacking layer is trained on the training pairs; evaluation uses the test
    pairs, mirroring the paper's protocol.
    """
    data = context.dataset(dataset)
    suite = context.suite(dataset)
    base = suite.get("HisRect")

    graph = generate_social_graph(
        data.train.store, data.registry, social_config or SocialGraphConfig(seed=context.seed + 7)
    )
    extractor = SocialFeatureExtractor(graph, data.registry, delta_t=data.delta_t)
    social = SocialCoLocationJudge(base, extractor, judge_config or SocialJudgeConfig())
    social.fit(data.train.labeled_pairs)

    test_pairs = data.test.labeled_pairs
    folds = context.scale.eval_folds
    return {
        "HisRect": evaluate_judge(base, test_pairs, num_folds=folds).as_dict(),
        "HisRect+Social": evaluate_judge(social, test_pairs, num_folds=folds).as_dict(),
    }


def format_social_report(results: dict[str, dict[str, float]]) -> str:
    """Render the social-extension comparison as text."""
    return format_table(
        results,
        columns=["Acc", "Rec", "Pre", "F1"],
        title="Extension: HisRect vs HisRect + social / frequent-pattern features",
    )
