"""Table 8 — clustering user profiles with a co-location approach.

Groups of five test profiles are sampled for each of the five patterns (5-0,
4-1, 3-2, 3-1-1, 2-2-1); an approach identifies a group correctly only when its
clustering exactly reproduces the ground-truth partition.  HisRect clusters via
its pairwise probability matrix + connected components; the naive approaches
cluster by putting profiles with the same inferred POI together.
"""

from __future__ import annotations

from repro.eval.group_patterns import (
    GROUP_PATTERNS,
    GroupPatternSampler,
    evaluate_clustering_judge,
    evaluate_poi_inference_judge,
)
from repro.eval.reports import format_table
from repro.experiments.runner import ExperimentContext

#: Approaches compared in Table 8.
DEFAULT_APPROACHES = ("HisRect", "Comp2Loc", "N-Gram-Gauss", "TG-TI-C")


def run(
    context: ExperimentContext,
    dataset: str = "nyc",
    approaches: tuple[str, ...] = DEFAULT_APPROACHES,
    groups_per_pattern: int | None = None,
) -> dict[str, dict[str, float]]:
    """Return ``{approach: {pattern: accuracy}}`` plus the sample counts."""
    suite = context.suite(dataset)
    data = context.dataset(dataset)
    groups_per_pattern = groups_per_pattern or context.scale.groups_per_pattern
    sampler = GroupPatternSampler(
        data.test.labeled_profiles, delta_t=data.delta_t, seed=context.seed + 8
    )
    samples_by_pattern = {
        pattern: sampler.sample_many(pattern, groups_per_pattern) for pattern in GROUP_PATTERNS
    }

    results: dict[str, dict[str, float]] = {}
    for approach_name in approaches:
        approach = suite.get(approach_name)
        row: dict[str, float] = {}
        for pattern, samples in samples_by_pattern.items():
            if approach_name == "HisRect":
                row[pattern] = evaluate_clustering_judge(approach.judge, samples)
            else:
                row[pattern] = evaluate_poi_inference_judge(approach, samples)
        results[approach_name] = row
    results["#groups"] = {
        pattern: float(len(samples)) for pattern, samples in samples_by_pattern.items()
    }
    return results


def format_report(results: dict[str, dict[str, float]]) -> str:
    """Render the Table 8 reproduction as text."""
    return format_table(
        results,
        columns=list(GROUP_PATTERNS),
        title="Table 8: accuracy of identifying group patterns",
    )
