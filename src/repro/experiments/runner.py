"""Shared experiment context: cached datasets and approach suites.

Every table/figure runner needs a dataset (NYC-like and/or LV-like) and, most
of the time, the same trained approaches.  :class:`ExperimentContext` owns both
caches so a benchmark session that regenerates several tables only pays for
dataset generation and model training once.
"""

from __future__ import annotations

from repro.data.dataset import (
    ColocationDataset,
    build_dataset,
    lv_like_dataset_config,
    nyc_like_dataset_config,
)
from repro.errors import ConfigurationError
from repro.experiments.approaches import ApproachSuite
from repro.experiments.config import ExperimentScale, resolve_scale

#: Dataset keys accepted by the experiment runners.
DATASETS = ("nyc", "lv")


class ExperimentContext:
    """Caches datasets and trained approach suites for one experiment scale."""

    def __init__(self, scale: ExperimentScale | str | None = None, seed: int = 7):
        self.scale = resolve_scale(scale)
        self.seed = seed
        self._datasets: dict[str, ColocationDataset] = {}
        self._suites: dict[str, ApproachSuite] = {}

    def dataset(self, name: str = "nyc") -> ColocationDataset:
        """The NYC-like or LV-like dataset at this context's scale (cached)."""
        if name not in DATASETS:
            raise ConfigurationError(f"unknown dataset {name!r}; choose from {DATASETS}")
        if name not in self._datasets:
            if name == "nyc":
                config = nyc_like_dataset_config(scale=self.scale.dataset_scale, seed=self.seed)
            else:
                config = lv_like_dataset_config(scale=self.scale.dataset_scale, seed=self.seed + 100)
            self._datasets[name] = build_dataset(config)
        return self._datasets[name]

    def suite(self, name: str = "nyc") -> ApproachSuite:
        """The approach suite trained on a dataset (cached)."""
        if name not in self._suites:
            self._suites[name] = ApproachSuite(self.dataset(name), scale=self.scale, seed=self.seed + 90)
        return self._suites[name]


_GLOBAL_CONTEXTS: dict[tuple[str, int], ExperimentContext] = {}


def shared_context(scale: ExperimentScale | str | None = None, seed: int = 7) -> ExperimentContext:
    """A process-wide cached context (used by the benchmark suite)."""
    resolved = resolve_scale(scale)
    key = (resolved.name, seed)
    if key not in _GLOBAL_CONTEXTS:
        _GLOBAL_CONTEXTS[key] = ExperimentContext(resolved, seed=seed)
    return _GLOBAL_CONTEXTS[key]
