"""The feature-store contract: what a serving cache must do, tier-agnostic.

:class:`FeatureStore` is the structural protocol every serving transport's
feature cache satisfies — the single hot-tier LRU (:class:`repro.store.HotStore`),
the memmap arena cold tier (:class:`repro.store.ArenaStore`), and the
:class:`repro.store.TieredStore` that composes them.  The
:class:`repro.api.ColocationEngine` talks only to this contract, so swapping
the cache layout (bigger-than-RAM cold tiers, shared read-only arenas, future
remote tiers) never touches the judgement path.

Ownership rule: ``put(key, row)`` *moves* the row into the store — callers
that just allocated the row (the engine inserting the batch it featurized)
hand it over without a defensive copy; callers holding borrowed rows
(``import_rows`` restoring another engine's export, wire restores) pass
``copy=True``.  ``get`` returns rows the caller must treat as read-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.core.protocols import ProfileKey


@dataclass(frozen=True)
class StoreStats:
    """One consistent snapshot of a store's tier traffic and occupancy.

    ``size``/``maxsize`` describe the hot (in-RAM) tier — the numbers the
    legacy engine cache reported — while ``cold_size`` counts live rows in
    the cold arena.  ``hot_hits``/``cold_hits`` split lookup traffic by the
    tier that answered; ``promotions`` are cold rows copied into the hot
    tier on a hot-miss/cold-hit, ``demotions`` are hot-tier evictions whose
    row stayed reachable in the cold tier instead of being dropped.
    """

    size: int
    maxsize: int
    evictions: int = 0
    hot_hits: int = 0
    cold_hits: int = 0
    promotions: int = 0
    demotions: int = 0
    cold_size: int = 0


@runtime_checkable
class FeatureStore(Protocol):
    """What the serving layer requires of a feature-row cache.

    Implementations are thread-safe: the engine featurizes outside any lock
    and concurrent callers race benignly (both featurize a shared miss, last
    insert wins), so every store method must tolerate interleaved calls.
    """

    #: Hot-tier row bound (0 disables in-RAM caching).
    capacity: int

    def get(self, key: ProfileKey) -> np.ndarray | None:
        """The row cached under ``key`` (any tier), or ``None``.  Treat as read-only."""
        ...

    def put(self, key: ProfileKey, row: np.ndarray, *, copy: bool = False) -> None:
        """Install a row, taking ownership; ``copy=True`` for borrowed rows."""
        ...

    def invalidate(self, uids: Iterable[int]) -> int:
        """Drop every row of the given users, all tiers; returns keys dropped."""
        ...

    def invalidate_stale(self) -> int:
        """Drop rows superseded by a higher observed revision; returns keys dropped."""
        ...

    def clear(self) -> None:
        """Drop every resident row (counters survive)."""
        ...

    def export(self) -> dict[ProfileKey, np.ndarray]:
        """Copy the hot tier's rows, LRU order preserved (coldest first)."""
        ...

    def import_rows(self, rows: dict[ProfileKey, np.ndarray]) -> int:
        """Install borrowed rows (always copied); returns keys still resident."""
        ...

    def stats(self) -> StoreStats:
        """Current tier traffic and occupancy."""
        ...

    def __len__(self) -> int:
        """Hot-tier rows resident."""
        ...

    def __contains__(self, key: ProfileKey) -> bool:
        """Whether ``key`` is resident in any tier."""
        ...
