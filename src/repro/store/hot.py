""":class:`HotStore` — the revision-indexed in-RAM LRU tier.

This is the feature cache that used to live inlined in
:class:`repro.api.ColocationEngine`: a bounded :class:`OrderedDict` LRU over
:data:`repro.core.protocols.ProfileKey` rows plus a
:class:`repro.core.protocols.RevisionedKeyIndex` so ``invalidate(uids)`` /
``invalidate_stale()`` run in O(rows dropped), not O(cache).  Extracted so
the engine depends only on the :class:`repro.store.FeatureStore` contract and
the LRU can sit as the hot tier of a :class:`repro.store.TieredStore`.

The ``on_evict`` hook is the tiering seam: the tiered store registers a
demotion callback, so rows leaving RAM land in the cold arena instead of
being dropped.  With ``capacity=0`` the store caches nothing and ``put`` is
a no-op (the tiered store still write-throughs to its cold tier itself).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Iterable

import numpy as np

from repro.core.protocols import ProfileKey, RevisionedKeyIndex
from repro.errors import ConfigurationError
from repro.store.base import StoreStats

#: Eviction callback: ``(key, row)`` leaving the hot tier.
EvictHook = Callable[[ProfileKey, np.ndarray], None]


class HotStore:
    """Bounded, thread-safe, revision-indexed LRU over feature rows.

    Parameters
    ----------
    capacity:
        Maximum rows resident; ``0`` disables the tier (puts are dropped).
    on_evict:
        Called with ``(key, row)`` for every row the LRU bound pushes out —
        under the store lock, so hooks must not call back into this store.
    """

    def __init__(self, capacity: int, *, on_evict: EvictHook | None = None):
        if capacity < 0:
            raise ConfigurationError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._rows: OrderedDict[ProfileKey, np.ndarray] = OrderedDict()  # guarded-by: _lock
        self._index = RevisionedKeyIndex()  # guarded-by: _lock
        self._on_evict = on_evict
        self._hits = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    # ----------------------------------------------------------------- lookups
    def get(self, key: ProfileKey) -> np.ndarray | None:
        with self._lock:
            row = self._rows.get(key)
            if row is not None:
                self._rows.move_to_end(key)
                self._hits += 1
            return row

    def put(self, key: ProfileKey, row: np.ndarray, *, copy: bool = False) -> None:
        """Install a row, taking ownership (``copy=True`` for borrowed rows).

        Views are always copied, even with ``copy=False``: a view keeps its
        whole base array alive, so caching one row of a featurized ``(B, D)``
        batch would pin the entire batch in RAM and ``capacity`` would no
        longer bound this tier's memory.  Only a standalone array (no base)
        is taken by reference.

        Insertion never drops other revisions of the same user: with
        revision-exact keys every resident row is correct for its own key,
        and older generations stay legitimately queryable (timeline replay,
        a sliding window's not-yet-expired profiles).  Reclaiming dead
        revisions is the caller's explicit decision — :meth:`invalidate` /
        :meth:`invalidate_stale` — not an insert side effect.
        """
        if self.capacity == 0:
            return
        row = np.asarray(row)
        if copy or row.base is not None:
            row = np.array(row, copy=True)
        with self._lock:
            self._rows[key] = row
            self._rows.move_to_end(key)
            self._index.register(key)
            while len(self._rows) > self.capacity:
                evicted_key, evicted_row = self._rows.popitem(last=False)
                self._index.discard(evicted_key)
                self._evictions += 1
                if self._on_evict is not None:
                    self._on_evict(evicted_key, evicted_row)

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def __contains__(self, key: ProfileKey) -> bool:
        with self._lock:
            return key in self._rows

    # ------------------------------------------------------------ invalidation
    def drop_keys(self, keys: Iterable[ProfileKey]) -> list[ProfileKey]:
        """Drop the given keys; returns those that were actually resident."""
        dropped = []
        with self._lock:
            for key in keys:
                if self._rows.pop(key, None) is not None:
                    dropped.append(key)
                self._index.discard(key)
        return dropped

    def invalidate(self, uids: Iterable[int]) -> int:
        with self._lock:
            return len(self.drop_keys(self._index.keys_of(uids)))

    def invalidate_stale(self) -> int:
        with self._lock:
            return len(self.drop_keys(self._index.stale_keys()))

    def keys_of(self, uids: Iterable[int]) -> list[ProfileKey]:
        """Resident keys of the given users (invalidation planning)."""
        with self._lock:
            return self._index.keys_of(uids)

    def stale_keys(self) -> list[ProfileKey]:
        """Resident keys superseded by a higher observed revision."""
        with self._lock:
            return self._index.stale_keys()

    def clear(self) -> None:
        with self._lock:
            self._rows.clear()
            self._index.clear()

    # -------------------------------------------------------- snapshot/restore
    def export(self) -> dict[ProfileKey, np.ndarray]:
        """Copy the resident rows, LRU order preserved (coldest first)."""
        with self._lock:
            return {key: np.array(row, copy=True) for key, row in self._rows.items()}

    def import_rows(self, rows: dict[ProfileKey, np.ndarray]) -> int:
        """Install borrowed rows (copied); returns imported keys still resident."""
        if self.capacity == 0:
            return 0
        with self._lock:
            for key, row in rows.items():
                self.put(key, row, copy=True)
            return sum(1 for key in rows if key in self._rows)

    # --------------------------------------------------------------- telemetry
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                size=len(self._rows),
                maxsize=self.capacity,
                evictions=self._evictions,
                hot_hits=self._hits,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HotStore(size={len(self)}/{self.capacity})"
