"""Tiered feature storage for the serving layer.

Serving an Eq. (1)–(2) co-location judgement is two phases: featurize the
(user, timestamp) profile, then score it.  Featurization dominates, so every
transport caches feature rows — and this package owns that cache as a
subsystem of its own, behind the :class:`FeatureStore` protocol, instead of
an ``OrderedDict`` inlined in the engine.

**Tiering.**  :class:`HotStore` is the revision-indexed in-RAM LRU (the
engine's original cache, extracted).  :class:`ArenaStore` is the cold tier: a
fixed-dtype ``numpy.memmap`` arena of row slots on disk, bounded as a FIFO
ring.  :class:`TieredStore` composes them with a write-through policy — a put
lands in the arena (durable) and the LRU (fast) in one call; a hot-miss /
cold-hit *promotes* the row back into RAM; a hot-tier LRU eviction is a
*demotion* because the arena still holds the row, so falling out of RAM costs
a page-cache read later, not a re-featurization.  ``cold=None`` degenerates
to the single-tier LRU — the default when no arena directory is configured.

**Invalidation.**  Profile identity is revisioned
(:data:`repro.core.protocols.ProfileKey` carries the feature revision), so
both tiers keep a :class:`repro.core.protocols.RevisionedKeyIndex` and drop
rows in O(dropped): ``invalidate(uids)`` for explicit mutation,
``invalidate_stale()`` for rows superseded by a higher observed revision.
In the arena a drop is a *tombstone* — a ``del`` record frees the slot into a
recycle list; the bytes stay in the file but become unreachable.

**Arena on-disk format** (one directory per arena slice, one writer):

* ``header.json`` — ``{magic, version, dtype, dim, capacity}``, written
  atomically via temp-file + rename once the row dimensionality is known.
* ``arena.dat`` — the ``(capacity, dim)`` row memmap.
* ``index.log`` — append-only JSONL of ``put``/``del``/``clear`` records,
  flushed per line; replay tolerates a torn final line, so a process crash
  loses at most the unacknowledged tail.  ``close()`` compacts the log.

Mapping an arena ``mode="r"`` is the zero-copy sharing path: a respawned
worker maps its slice read-only (or reopens it ``"r+"`` once it owns the
slice again) and serves the warm set without re-featurizing a single row and
without the rows ever crossing the wire.
"""

from repro.store.arena import ArenaStore
from repro.store.base import FeatureStore, StoreStats
from repro.store.hot import HotStore
from repro.store.tiered import TieredStore

__all__ = [
    "ArenaStore",
    "FeatureStore",
    "HotStore",
    "StoreStats",
    "TieredStore",
]
