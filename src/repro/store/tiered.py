""":class:`TieredStore` — hot LRU over a cold memmap arena.

The composition the serving transports actually run: every lookup tries the
in-RAM :class:`repro.store.HotStore` first, falls through to the
:class:`repro.store.ArenaStore`, and a cold hit *promotes* the row back into
RAM.  Writes are write-through — a freshly featurized row lands in the arena
immediately, so the durable tier is complete even if the process dies the
next instant (this is what makes crash-respawn warm starts featurize-free).
Hot-tier LRU evictions become *demotions*: because the arena already holds
the row, eviction only sheds the RAM copy and the row stays servable at
cold-read cost instead of re-featurization cost.

With ``cold=None`` the tiered store degenerates to the plain hot LRU — the
default for every transport when no arena directory is configured, with
byte-identical semantics to the pre-store engine cache.  A read-only cold
tier (an arena mapped ``mode="r"``) serves lookups and promotions but is
skipped by writes and demotions; invalidation and clear cannot mutate the
shared file, so dropped keys are remembered in an in-memory tombstone set
that lookups consult — the row stays in the arena for other mappers but is
dead to *this* store until a fresh put supersedes the drop.
"""

from __future__ import annotations

import threading
from typing import Iterable

import numpy as np

from repro.core.protocols import ProfileKey
from repro.obs import (
    EVENT_COLD_HIT,
    EVENT_DEMOTE,
    EVENT_HOT_HIT,
    EVENT_PROMOTE,
    get_tracer,
)
from repro.store.arena import ArenaStore
from repro.store.base import StoreStats
from repro.store.hot import HotStore


class TieredStore:
    """Two-tier feature store: RAM LRU in front, memmap arena behind.

    Parameters
    ----------
    hot:
        The in-RAM tier.  Its ``on_evict`` hook is claimed by this store
        (evictions turn into demotion accounting).
    cold:
        Optional arena tier; ``None`` leaves a single-tier LRU.
    """

    def __init__(self, hot: HotStore, cold: ArenaStore | None = None):
        self._hot = hot
        self._cold = cold
        self._hot._on_evict = self._demote
        self._counters = threading.Lock()
        self._cold_hits = 0
        self._promotions = 0
        self._demotions = 0
        #: Keys invalidated while the cold tier is read-only: the shared
        #: arena file cannot be mutated, so get() consults this set to keep
        #: the "removed from any tier" invalidation contract honest.
        self._ro_tombstones: set[ProfileKey] = set()

    @property
    def capacity(self) -> int:
        return self._hot.capacity

    @property
    def hot(self) -> HotStore:
        return self._hot

    @property
    def cold(self) -> ArenaStore | None:
        return self._cold

    def _cold_writable(self) -> bool:
        return self._cold is not None and self._cold.writable

    # ----------------------------------------------------------------- lookups
    def get(self, key: ProfileKey) -> np.ndarray | None:
        # Tier-event latencies (hot_hit / cold_hit / promote) go to the
        # metrics registry only when tracing is enabled; disabled, the
        # lookup path pays a single attribute read.
        tracer = get_tracer()
        timed = tracer.enabled
        lookup_started = tracer.clock() if timed else 0.0
        row = self._hot.get(key)
        if row is not None:
            if timed:
                tracer.record_event(
                    EVENT_HOT_HIT, (tracer.clock() - lookup_started) * 1e3
                )
            return row
        if self._cold is None:
            return None
        if self._ro_tombstones and key in self._ro_tombstones:
            return None  # invalidated against a read-only cold tier
        # The arena copies under its own lock (a recycled slot must not tear
        # into the returned row); the hot tier then owns that stable copy.
        row = self._cold.get(key)
        if row is None:
            return None
        if timed:
            tracer.record_event(EVENT_COLD_HIT, (tracer.clock() - lookup_started) * 1e3)
        promoted = False
        if self._hot.capacity > 0:
            promote_started = tracer.clock() if timed else 0.0
            self._hot.put(key, row)
            if timed:
                tracer.record_event(
                    EVENT_PROMOTE, (tracer.clock() - promote_started) * 1e3
                )
            promoted = True
        with self._counters:
            self._cold_hits += 1
            if promoted:
                self._promotions += 1
        return row

    def put(self, key: ProfileKey, row: np.ndarray, *, copy: bool = False) -> None:
        # Write-through: the arena copies into the mapped file, making the
        # row durable before the RAM tier ever sees it.
        if self._cold_writable():
            self._cold.put(key, row)
        if self._ro_tombstones:
            with self._counters:
                self._ro_tombstones.discard(key)  # a fresh row supersedes the drop
        self._hot.put(key, row, copy=copy)

    def _demote(self, key: ProfileKey, row: np.ndarray) -> None:
        """Hot-tier eviction hook: keep the row reachable in the arena."""
        if not self._cold_writable():
            return
        tracer = get_tracer()
        timed = tracer.enabled
        started = tracer.clock() if timed else 0.0
        if key not in self._cold:
            self._cold.put(key, row)
        if timed:
            tracer.record_event(EVENT_DEMOTE, (tracer.clock() - started) * 1e3)
        with self._counters:
            self._demotions += 1

    def __len__(self) -> int:
        return len(self._hot)

    def __contains__(self, key: ProfileKey) -> bool:
        if key in self._hot:
            return True
        if self._cold is None or key in self._ro_tombstones:
            return False
        return key in self._cold

    # ------------------------------------------------------------ invalidation
    def _tombstone_cold(self, keys: Iterable[ProfileKey]) -> list[ProfileKey]:
        """Record read-only-cold drops; returns the keys newly tombstoned."""
        with self._counters:
            fresh = [key for key in keys if key not in self._ro_tombstones]
            self._ro_tombstones.update(fresh)
        return fresh

    def invalidate(self, uids: Iterable[int]) -> int:
        uids = list(uids)
        dropped = set(self._hot.drop_keys(self._hot.keys_of(uids)))
        if self._cold_writable():
            dropped.update(self._cold.drop_keys(self._cold.keys_of(uids)))
        elif self._cold is not None:
            dropped.update(self._tombstone_cold(self._cold.keys_of(uids)))
        return len(dropped)

    def invalidate_stale(self) -> int:
        dropped = set(self._hot.drop_keys(self._hot.stale_keys()))
        if self._cold_writable():
            dropped.update(self._cold.drop_keys(self._cold.stale_keys()))
        elif self._cold is not None:
            dropped.update(self._tombstone_cold(self._cold.stale_keys()))
        return len(dropped)

    def clear(self) -> None:
        self._hot.clear()
        if self._cold_writable():
            self._cold.clear()
        elif self._cold is not None:
            self._tombstone_cold(self._cold.keys())

    # -------------------------------------------------------- snapshot/restore
    def export(self) -> dict[ProfileKey, np.ndarray]:
        """Copy the hot tier's rows (the wire snapshot stays RAM-sized)."""
        return self._hot.export()

    def import_rows(self, rows: dict[ProfileKey, np.ndarray]) -> int:
        for key, row in rows.items():
            self.put(key, row, copy=True)
        return sum(1 for key in rows if key in self)

    # --------------------------------------------------------------- lifecycle
    def sync(self) -> None:
        """Flush the cold tier to the OS (no-op without one)."""
        if self._cold is not None:
            self._cold.sync()

    def close(self) -> None:
        """Release the cold tier's mapping (hot rows stay usable)."""
        if self._cold is not None:
            self._cold.close()

    # --------------------------------------------------------------- telemetry
    def stats(self) -> StoreStats:
        hot = self._hot.stats()
        with self._counters:
            cold_hits, promotions, demotions = (
                self._cold_hits,
                self._promotions,
                self._demotions,
            )
            tombstoned = len(self._ro_tombstones)
        cold_size = max(0, len(self._cold) - tombstoned) if self._cold is not None else 0
        return StoreStats(
            size=hot.size,
            maxsize=hot.maxsize,
            evictions=hot.evictions,
            hot_hits=hot.hot_hits,
            cold_hits=cold_hits,
            promotions=promotions,
            demotions=demotions,
            cold_size=cold_size,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cold = f", cold={len(self._cold)}" if self._cold is not None else ""
        return f"TieredStore(hot={len(self._hot)}/{self._hot.capacity}{cold})"
