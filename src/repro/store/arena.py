""":class:`ArenaStore` — the memmap arena cold tier.

A fixed-dtype row arena on disk: feature rows live in slots of one
``numpy.memmap`` file, keyed by :data:`repro.core.protocols.ProfileKey`, so a
cache miss costs a page-cache read instead of running the encoders — and a
restarted shard or worker warm-starts by *mapping the file* instead of
re-featurizing or re-receiving its rows over the wire.

On-disk format (one directory per arena slice; exactly one writer at a time):

* ``header.json`` — ``{"magic", "version", "dtype", "dim", "capacity"}``,
  written atomically (temp file + rename) once the row dimensionality is
  known.  A directory without a readable header is an empty arena.
* ``arena.dat`` — the ``(capacity, dim)`` memmap of raw rows.
* ``index.log`` — append-only JSONL of ``put`` / ``del`` / ``clear``
  records mapping keys to slots.  Each record is one line flushed to the OS
  as it is written, so a *process* crash loses at most the torn final line
  (replay tolerates exactly that: an undecodable *last* line is dropped,
  corruption anywhere earlier refuses to map — skipping a mid-file ``del``
  could alias two keys onto one recycled slot); everything acknowledged
  before the crash is recovered.  :meth:`close` compacts the log to the
  live mapping.

Invalidation is tombstone-based: a ``del`` record frees the slot (the row
bytes stay in the file but become unreachable) and the free list recycles it
for the next insert.  When every slot is live, the oldest insertion is
tombstoned and overwritten (FIFO), so the arena is a bounded ring, not an
append-only leak.

Open with ``mode="r"`` to map an existing arena read-only — the sharing
mode: several processes can map one file, ``get(..., copy=False)`` returns
views straight into the shared page cache, and mutating calls raise.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from collections import OrderedDict
from typing import Iterable

import numpy as np

from repro.core.protocols import ProfileKey, RevisionedKeyIndex
from repro.errors import ConfigurationError
from repro.store.base import StoreStats

_MAGIC = "repro-feature-arena"
_VERSION = 1
_HEADER = "header.json"
_DATA = "arena.dat"
_LOG = "index.log"


def _decode_key(raw) -> ProfileKey:
    return (int(raw[0]), float(raw[1]), str(raw[2]), int(raw[3]), int(raw[4]))


class ArenaStore:
    """Fixed-dtype memmap arena of feature rows, keyed by profile key.

    Parameters
    ----------
    directory:
        The arena slice directory (created on first write if absent).
    capacity:
        Row slots in the arena file.  Ignored when opening an existing
        arena — the header's capacity wins.
    dtype:
        Row dtype.  Feature rows are float64 everywhere; the header pins it
        so every incarnation maps the same bytes.
    mode:
        ``"r+"`` (default) creates or opens read-write; ``"r"`` maps an
        existing arena read-only (mutating calls raise).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        capacity: int = 65536,
        dtype: str | np.dtype = np.float64,
        mode: str = "r+",
    ):
        if mode not in ("r", "r+"):
            raise ConfigurationError("arena mode must be 'r' or 'r+'")
        if capacity < 1:
            raise ConfigurationError("arena capacity must be >= 1")
        self.directory = pathlib.Path(directory)
        self.mode = mode
        self.capacity = int(capacity)
        self.dtype = np.dtype(dtype)
        self.dim: int | None = None
        self._lock = threading.RLock()
        #: key -> slot, insertion-ordered: the FIFO ring's eviction order.
        self._slots: OrderedDict[ProfileKey, int] = OrderedDict()
        self._free: list[int] = []
        self._high_water = 0  # slots ever allocated (free list lives below it)
        self._index = RevisionedKeyIndex()
        self._mmap: np.memmap | None = None
        self._log = None
        self._closed = False

        header_path = self.directory / _HEADER
        if header_path.exists():
            self._open_existing(header_path)
        elif mode == "r":
            raise ConfigurationError(f"{self.directory} holds no feature arena to map")
        # Read-write on a fresh directory: the arena materialises lazily on
        # the first put, when the row dimensionality is known.

    # ------------------------------------------------------------- file layout
    @property
    def writable(self) -> bool:
        return self.mode == "r+" and not self._closed

    def _open_existing(self, header_path: pathlib.Path) -> None:
        try:
            header = json.loads(header_path.read_text())
        except ValueError as exc:
            raise ConfigurationError(f"corrupt arena header in {self.directory}") from exc
        if header.get("magic") != _MAGIC:
            raise ConfigurationError(f"{self.directory} is not a feature arena")
        if int(header.get("version", 0)) != _VERSION:
            raise ConfigurationError(
                f"arena version {header.get('version')!r} unsupported (want {_VERSION})"
            )
        self.capacity = int(header["capacity"])
        self.dim = int(header["dim"])
        self.dtype = np.dtype(str(header["dtype"]))
        self._mmap = np.memmap(
            self.directory / _DATA,
            dtype=self.dtype,
            mode=self.mode,
            shape=(self.capacity, self.dim),
        )
        self._replay_log()
        if self.mode == "r+":
            self._log = open(self.directory / _LOG, "a", encoding="utf-8")

    def _initialise(self, dim: int) -> None:
        """First write into a fresh directory: header, data file, log."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self.dim = int(dim)
        self._mmap = np.memmap(
            self.directory / _DATA,
            dtype=self.dtype,
            mode="w+",
            shape=(self.capacity, self.dim),
        )
        header = {
            "magic": _MAGIC,
            "version": _VERSION,
            "dtype": self.dtype.name,
            "dim": self.dim,
            "capacity": self.capacity,
        }
        # Atomic header write: a crash mid-create leaves no half-written
        # header, so the directory reads as an empty arena, never a corrupt one.
        tmp = self.directory / (_HEADER + ".tmp")
        tmp.write_text(json.dumps(header))
        os.replace(tmp, self.directory / _HEADER)
        self._log = open(self.directory / _LOG, "a", encoding="utf-8")

    def _replay_log(self) -> None:
        log_path = self.directory / _LOG
        if not log_path.exists():
            return
        with open(log_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for lineno, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except ValueError:
                if lineno == len(lines):
                    break  # torn tail line from a crash mid-append
                # A corrupt record anywhere else is real damage: skipping a
                # mid-file "del" would resurrect a tombstoned key whose slot
                # may since have been recycled, aliasing two keys onto one
                # slot — refuse to map rather than serve another key's bytes.
                raise ConfigurationError(
                    f"corrupt arena index log in {self.directory} "
                    f"(line {lineno} of {len(lines)})"
                )
            op = record.get("op")
            if op == "put":
                key = _decode_key(record["key"])
                slot = int(record["slot"])
                if key in self._slots:
                    self._slots.move_to_end(key)
                    self._slots[key] = slot
                else:
                    self._slots[key] = slot
                    self._index.register(key)
            elif op == "del":
                key = _decode_key(record["key"])
                self._slots.pop(key, None)
                self._index.discard(key)
            elif op == "clear":
                self._slots.clear()
                self._index = RevisionedKeyIndex()
        allocated = set(self._slots.values())
        self._high_water = max(allocated) + 1 if allocated else 0
        self._free = [slot for slot in range(self._high_water) if slot not in allocated]

    def _append(self, record: dict) -> None:
        if self._log is not None:
            self._log.write(json.dumps(record) + "\n")
            self._log.flush()  # reach the kernel: survives a process crash

    def _require_writable(self) -> None:
        if self._closed:
            raise ConfigurationError("the arena store is closed")
        if self.mode != "r+":
            raise ConfigurationError("the arena is mapped read-only")

    # ----------------------------------------------------------------- lookups
    def get(self, key: ProfileKey, *, copy: bool = True) -> np.ndarray | None:
        """The row stored under ``key``.

        By default the row is copied *under the arena lock* — a concurrent
        invalidate-then-put could recycle the slot, and a view handed out
        across the lock boundary could tear into another key's bytes.
        ``copy=False`` returns the raw page-cache view (true zero-copy) and
        is safe only when the slot cannot be rewritten underneath the caller:
        read-only mappings, or single-threaded owners.
        """
        with self._lock:
            if self._mmap is None:
                return None
            slot = self._slots.get(key)
            if slot is None:
                return None
            return np.array(self._mmap[slot]) if copy else self._mmap[slot]

    def put(self, key: ProfileKey, row: np.ndarray, *, copy: bool = False) -> None:
        """Write a row into a slot (rows always copy into the mapped file)."""
        self._require_writable()
        row = np.asarray(row, dtype=self.dtype)
        if row.ndim != 1:
            raise ConfigurationError(f"arena rows must be 1-D, got shape {row.shape}")
        with self._lock:
            if self._mmap is None:
                self._initialise(row.shape[0])
            if row.shape[0] != self.dim:
                raise ConfigurationError(
                    f"arena holds dim-{self.dim} rows, got dim-{row.shape[0]}"
                )
            slot = self._slots.get(key)
            if slot is None:
                slot = self._allocate_slot()
                self._slots[key] = slot
                self._index.register(key)
            else:
                self._slots.move_to_end(key)  # refreshed rows rejoin the ring's tail
            self._mmap[slot] = row
            self._append({"op": "put", "key": list(key), "slot": slot})

    def _allocate_slot(self) -> int:
        """A free slot: tombstoned first, then unused, then the FIFO victim."""
        if self._free:
            return self._free.pop()
        if self._high_water < self.capacity:
            slot = self._high_water
            self._high_water += 1
            return slot
        victim, slot = self._slots.popitem(last=False)
        self._index.discard(victim)
        self._append({"op": "del", "key": list(victim)})
        return slot

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    def __contains__(self, key: ProfileKey) -> bool:
        with self._lock:
            return key in self._slots

    def keys(self) -> list[ProfileKey]:
        """Live keys, insertion order (FIFO eviction order)."""
        with self._lock:
            return list(self._slots)

    # ------------------------------------------------------------ invalidation
    def drop_keys(self, keys: Iterable[ProfileKey]) -> list[ProfileKey]:
        """Tombstone the given keys; returns those that were actually live."""
        self._require_writable()
        dropped = []
        with self._lock:
            for key in keys:
                slot = self._slots.pop(key, None)
                self._index.discard(key)
                if slot is not None:
                    self._free.append(slot)
                    self._append({"op": "del", "key": list(key)})
                    dropped.append(key)
        return dropped

    def invalidate(self, uids: Iterable[int]) -> int:
        with self._lock:
            return len(self.drop_keys(self._index.keys_of(uids)))

    def invalidate_stale(self) -> int:
        with self._lock:
            return len(self.drop_keys(self._index.stale_keys()))

    def keys_of(self, uids: Iterable[int]) -> list[ProfileKey]:
        """Live keys of the given users (invalidation planning)."""
        with self._lock:
            return self._index.keys_of(uids)

    def stale_keys(self) -> list[ProfileKey]:
        """Live keys superseded by a higher observed revision."""
        with self._lock:
            return self._index.stale_keys()

    def clear(self) -> None:
        self._require_writable()
        with self._lock:
            self._slots.clear()
            self._index = RevisionedKeyIndex()
            self._free = list(range(self._high_water))
            self._append({"op": "clear"})

    # -------------------------------------------------------- snapshot/restore
    def export(self) -> dict[ProfileKey, np.ndarray]:
        """Copy every live row out of the arena (wire-reship fallback path)."""
        with self._lock:
            if self._mmap is None:
                return {}
            return {key: np.array(self._mmap[slot]) for key, slot in self._slots.items()}

    def import_rows(self, rows: dict[ProfileKey, np.ndarray]) -> int:
        for key, row in rows.items():
            self.put(key, row)
        with self._lock:
            return sum(1 for key in rows if key in self._slots)

    # --------------------------------------------------------------- lifecycle
    def sync(self) -> None:
        """Flush mapped rows and the index log to the OS."""
        with self._lock:
            if self._mmap is not None and self.mode == "r+":
                self._mmap.flush()
            if self._log is not None:
                self._log.flush()

    def _compact_log(self) -> None:
        """Rewrite the log as the live mapping only (atomic rename)."""
        tmp = self.directory / (_LOG + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for key, slot in self._slots.items():
                handle.write(json.dumps({"op": "put", "key": list(key), "slot": slot}) + "\n")
        os.replace(tmp, self.directory / _LOG)

    def close(self) -> None:
        """Flush, compact the index log, release the mapping (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self.sync()
            if self._log is not None:
                self._log.close()
                self._log = None
                self._compact_log()
            self._mmap = None
            self._closed = True

    def __enter__(self) -> "ArenaStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # --------------------------------------------------------------- telemetry
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(size=0, maxsize=0, cold_size=len(self._slots))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArenaStore({self.directory}, rows={len(self)}/{self.capacity}, "
            f"mode={self.mode!r})"
        )
