"""Synthetic Twitter substrate: cities, mobility, timelines, profiles, pairs, datasets."""

from repro.data.city import City, CityConfig, generate_city, lv_like_config, nyc_like_config
from repro.data.dataset import (
    ColocationDataset,
    DatasetConfig,
    DatasetSplit,
    build_dataset,
    lv_like_dataset_config,
    nyc_like_dataset_config,
    tiny_dataset_config,
)
from repro.data.ingest import (
    dataset_from_timelines,
    split_timelines,
    timelines_from_tweets,
    tweets_from_dicts,
)
from repro.data.language import (
    BACKGROUND_WORDS,
    CATEGORY_WORDS,
    LanguageModelConfig,
    TweetLanguageModel,
)
from repro.data.mobility import MobilityConfig, MobilityModel, UserMobility
from repro.data.profiles import PairBuilder, PairBuilderConfig, ProfileBuilder, split_pairs
from repro.data.records import Pair, Profile, Timeline, Tweet, Visit, average_visits_per_profile
from repro.data.store import TimelineStore
from repro.data.timelines import (
    DAY_SECONDS,
    HOUR_SECONDS,
    SimulationResult,
    TimelineConfig,
    TimelineSimulator,
)

__all__ = [
    "Tweet",
    "Visit",
    "Timeline",
    "Profile",
    "Pair",
    "average_visits_per_profile",
    "TimelineStore",
    "City",
    "CityConfig",
    "generate_city",
    "nyc_like_config",
    "lv_like_config",
    "LanguageModelConfig",
    "TweetLanguageModel",
    "CATEGORY_WORDS",
    "BACKGROUND_WORDS",
    "MobilityConfig",
    "MobilityModel",
    "UserMobility",
    "TimelineConfig",
    "TimelineSimulator",
    "SimulationResult",
    "HOUR_SECONDS",
    "DAY_SECONDS",
    "ProfileBuilder",
    "PairBuilder",
    "PairBuilderConfig",
    "split_pairs",
    "tweets_from_dicts",
    "timelines_from_tweets",
    "split_timelines",
    "dataset_from_timelines",
    "DatasetConfig",
    "DatasetSplit",
    "ColocationDataset",
    "build_dataset",
    "nyc_like_dataset_config",
    "lv_like_dataset_config",
    "tiny_dataset_config",
]
