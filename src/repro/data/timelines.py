"""Timeline simulation: turning a city + mobility model into user tweet streams.

The simulation advances in discrete *slots* (a few per day).  In each slot an
active user visits one POI sampled from their mobility profile and may post
tweets: an on-POI tweet (whose text mixes POI-specific vocabulary) and/or
generic chatter.  A configurable fraction of tweets is geo-tagged; geo-tagged
coordinates are sampled inside the POI footprint most of the time and slightly
outside it otherwise, which produces the paper's mix of *labelled* profiles
(geo-tag inside a POI polygon), *unlabelled-but-geo-tagged* profiles (geo-tag
near, but not inside, a POI) and plain non-geo-tagged tweets.

Because all users share the same slot grid, users visiting the same POI in the
same slot yield tweets within the co-location window Δt — that is how positive
pairs arise, exactly as in the real data where co-located users tweet from the
same venue during the same hour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.data.city import City
from repro.data.language import TweetLanguageModel
from repro.data.mobility import MobilityModel, UserMobility
from repro.data.records import Timeline, Tweet
from repro.errors import DataGenerationError
from repro.geo.poi import POI

#: One hour in seconds; the paper's default Δt.
HOUR_SECONDS = 3600.0
DAY_SECONDS = 24 * HOUR_SECONDS


@dataclass
class TimelineConfig:
    """Parameters of the timeline simulation."""

    num_users: int = 120
    num_days: int = 21
    slots_per_day: int = 4
    #: Probability a user is active (visits a POI) in a given slot.
    activity_probability: float = 0.25
    #: Probability the user tweets from the POI they are visiting.
    poi_tweet_probability: float = 0.8
    #: Probability a tweet is geo-tagged.  The paper observes ~2%; the default
    #: is higher so laptop-scale datasets still contain enough labels, and the
    #: label-scarcity *ratio* (unlabelled ≫ labelled) is preserved via
    #: ``offsite_fraction`` and the generic tweets below.
    geotag_probability: float = 0.55
    #: Fraction of geo-tagged POI tweets whose coordinates fall outside the POI
    #: polygon (these become unlabelled profiles).
    offsite_fraction: float = 0.35
    #: How far (metres) outside the POI an off-site geo-tag lands.
    offsite_distance_m: float = 250.0
    #: Expected number of generic (non-visit) tweets per user per day.
    generic_tweets_per_day: float = 1.0
    #: Span of the visit-timestamp jitter inside a slot, in seconds.  Keeping it
    #: under Δt guarantees same-slot visits are pair candidates.
    jitter_seconds: float = 0.9 * HOUR_SECONDS
    seed: int = 101


@dataclass
class SimulationResult:
    """Timelines plus the ground-truth visit log used for evaluation."""

    timelines: list[Timeline]
    users: list[UserMobility]
    #: (uid, slot_index, poi_id, timestamp) for every simulated visit.
    visit_log: list[tuple[int, int, int, float]] = field(default_factory=list)


class TimelineSimulator:
    """Simulates tweet timelines for a population of users."""

    def __init__(
        self,
        city: City,
        config: TimelineConfig | None = None,
        language_model: TweetLanguageModel | None = None,
        mobility_model: MobilityModel | None = None,
    ):
        self.city = city
        self.config = config or TimelineConfig()
        if self.config.num_users < 2:
            raise DataGenerationError("need at least two users to form pairs")
        if self.config.num_days < 1 or self.config.slots_per_day < 1:
            raise DataGenerationError("num_days and slots_per_day must be positive")
        self.language_model = language_model or TweetLanguageModel()
        self.mobility_model = mobility_model or MobilityModel(city)
        self._rng = np.random.default_rng(self.config.seed)
        for poi in city.registry:
            self.language_model.register_poi(poi)

    # ------------------------------------------------------------------ helpers
    def _sample_onsite_coordinates(self, poi: POI) -> tuple[float, float]:
        """Coordinates inside the POI footprint (rejection sampling with fallback)."""
        min_lat, min_lon, max_lat, max_lon = poi.polygon.bounding_box()
        for _ in range(12):
            lat = float(self._rng.uniform(min_lat, max_lat))
            lon = float(self._rng.uniform(min_lon, max_lon))
            if poi.contains(lat, lon):
                return lat, lon
        return poi.center.lat, poi.center.lon

    def _sample_offsite_coordinates(self, poi: POI) -> tuple[float, float]:
        """Coordinates near, but outside, the POI footprint."""
        angle = float(self._rng.uniform(0.0, 2.0 * math.pi))
        base = max(p for p in (self.config.offsite_distance_m, 50.0))
        distance = float(self._rng.uniform(base, 2.0 * base))
        point = poi.center.offset(distance * math.cos(angle), distance * math.sin(angle))
        return point.lat, point.lon

    # --------------------------------------------------------------- simulation
    def simulate(self) -> SimulationResult:
        """Run the simulation and return timelines plus the ground-truth visit log."""
        cfg = self.config
        users = self.mobility_model.build_population(cfg.num_users)
        registry = self.city.registry
        total_slots = cfg.num_days * cfg.slots_per_day
        slot_length = DAY_SECONDS / cfg.slots_per_day

        tweets_by_user: dict[int, list[Tweet]] = {u.uid: [] for u in users}
        visit_log: list[tuple[int, int, int, float]] = []

        for slot in range(total_slots):
            slot_start = slot * slot_length
            for user in users:
                if self._rng.random() >= cfg.activity_probability:
                    continue
                poi_index = self.mobility_model.sample_destination(user, self._rng)
                poi = registry.pois[poi_index]
                ts = slot_start + float(self._rng.uniform(0.0, cfg.jitter_seconds))
                visit_log.append((user.uid, slot, poi.pid, ts))
                if self._rng.random() >= cfg.poi_tweet_probability:
                    continue
                content = self.language_model.generate(self._rng, poi)
                if self._rng.random() < cfg.geotag_probability:
                    if self._rng.random() < cfg.offsite_fraction:
                        lat, lon = self._sample_offsite_coordinates(poi)
                    else:
                        lat, lon = self._sample_onsite_coordinates(poi)
                    tweet = Tweet(user.uid, ts, content, lat=lat, lon=lon, true_pid=poi.pid)
                else:
                    tweet = Tweet(user.uid, ts, content, true_pid=poi.pid)
                tweets_by_user[user.uid].append(tweet)

        # Generic chatter spread over the whole horizon, never geo-tagged.
        expected_generic = cfg.generic_tweets_per_day * cfg.num_days
        horizon = cfg.num_days * DAY_SECONDS
        for user in users:
            count = int(self._rng.poisson(expected_generic))
            for _ in range(count):
                ts = float(self._rng.uniform(0.0, horizon))
                content = self.language_model.generate(self._rng, None)
                tweets_by_user[user.uid].append(Tweet(user.uid, ts, content))

        timelines = [
            Timeline(uid=uid, tweets=tuple(tweets))
            for uid, tweets in tweets_by_user.items()
            if tweets
        ]
        return SimulationResult(timelines=timelines, users=users, visit_log=visit_log)
