"""User mobility model.

Twitter users in the paper exhibit two regularities HisRect exploits:

1. **Preferential return** — a user's next POI is strongly biased towards POIs
   they visited before (historical visits carry predictive signal);
2. **Spatial locality** — a user's favourite POIs cluster around a home area,
   and within a short time window a user does not move far.

:class:`MobilityModel` reproduces both: each user gets a home neighbourhood, a
personal favourite-POI distribution (favourites drawn near home, weighted by a
Dirichlet sample scaled by global POI popularity), and an exploration
probability for occasionally visiting new POIs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.city import City
from repro.errors import DataGenerationError


@dataclass
class MobilityConfig:
    """Parameters of the preferential-return mobility model."""

    #: Number of favourite POIs per user.
    favorites_per_user: int = 6
    #: Probability that a visit goes to a favourite rather than an exploration.
    return_probability: float = 0.85
    #: Dirichlet concentration for a user's preference over their favourites.
    preference_concentration: float = 0.7
    #: Radius (metres) around the user's home anchor from which favourites are drawn.
    home_radius_m: float = 4_000.0
    seed: int = 23


@dataclass(frozen=True)
class UserMobility:
    """The mobility profile of a single synthetic user."""

    uid: int
    home_poi_index: int
    favorite_indices: tuple[int, ...]
    favorite_weights: tuple[float, ...]

    def as_distribution(self, num_pois: int) -> np.ndarray:
        """Dense visit distribution over all POIs (favourites only)."""
        dist = np.zeros(num_pois)
        for idx, weight in zip(self.favorite_indices, self.favorite_weights):
            dist[idx] = weight
        return dist


class MobilityModel:
    """Builds per-user mobility profiles and samples visit destinations."""

    def __init__(self, city: City, config: MobilityConfig | None = None):
        self.city = city
        self.config = config or MobilityConfig()
        if self.config.favorites_per_user < 1:
            raise DataGenerationError("favorites_per_user must be >= 1")
        if not 0.0 <= self.config.return_probability <= 1.0:
            raise DataGenerationError("return_probability must be in [0, 1]")
        self._rng = np.random.default_rng(self.config.seed)
        self._num_pois = len(city.registry)
        # Pairwise distances between POI centres, used to pick spatially
        # coherent favourite sets.
        lats = city.registry.center_lats
        lons = city.registry.center_lons
        self._poi_distances = np.zeros((self._num_pois, self._num_pois))
        for i in range(self._num_pois):
            from repro.geo.point import point_to_many_m

            self._poi_distances[i] = point_to_many_m(lats[i], lons[i], lats, lons)

    def build_user(self, uid: int) -> UserMobility:
        """Create the mobility profile for one user."""
        cfg = self.config
        home_idx = int(self._rng.choice(self._num_pois, p=self.city.popularity))
        near = self._poi_distances[home_idx] <= cfg.home_radius_m
        candidate_indices = np.flatnonzero(near)
        if candidate_indices.size == 0:
            candidate_indices = np.arange(self._num_pois)
        k = min(cfg.favorites_per_user, candidate_indices.size)
        local_popularity = self.city.popularity[candidate_indices]
        local_popularity = local_popularity / local_popularity.sum()
        favorites = self._rng.choice(candidate_indices, size=k, replace=False, p=local_popularity)
        if home_idx not in favorites:
            favorites[0] = home_idx
        weights = self._rng.dirichlet(np.full(k, cfg.preference_concentration))
        return UserMobility(
            uid=uid,
            home_poi_index=home_idx,
            favorite_indices=tuple(int(i) for i in favorites),
            favorite_weights=tuple(float(w) for w in weights),
        )

    def build_population(self, num_users: int) -> list[UserMobility]:
        """Create mobility profiles for a population of users."""
        if num_users < 1:
            raise DataGenerationError("num_users must be >= 1")
        return [self.build_user(uid) for uid in range(num_users)]

    def sample_destination(self, user: UserMobility, rng: np.random.Generator) -> int:
        """Sample the POI index of the user's next visit."""
        if rng.random() < self.config.return_probability:
            return int(
                rng.choice(np.array(user.favorite_indices), p=np.array(user.favorite_weights))
            )
        return int(rng.choice(self._num_pois, p=self.city.popularity))
