"""End-to-end dataset construction and Table 2 statistics.

``build_dataset`` wires the synthetic substrate together the same way the paper
prepares its crawled data:

1. generate a city (POI set ``P``);
2. simulate user timelines;
3. keep only timelines containing at least one POI tweet;
4. split timelines 1/5 into testing, the rest 9:1 into training/validation;
5. per split, build labelled/unlabelled profiles and labelled/unlabelled pairs
   (unlabelled pairs are only kept for the training split, as in Table 2).

The resulting :class:`ColocationDataset` carries everything downstream stages
need: the POI registry, per-split profile and pair sets, the raw training text
corpus for skip-gram, and the Table 2 statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.city import City, CityConfig, generate_city, lv_like_config, nyc_like_config
from repro.data.language import LanguageModelConfig, TweetLanguageModel
from repro.data.mobility import MobilityConfig, MobilityModel
from repro.data.profiles import PairBuilder, PairBuilderConfig, ProfileBuilder
from repro.data.records import Pair, Profile, Timeline, average_visits_per_profile
from repro.data.store import TimelineStore
from repro.data.timelines import HOUR_SECONDS, TimelineConfig, TimelineSimulator
from repro.errors import DataGenerationError


@dataclass
class DatasetConfig:
    """Every knob of the synthetic dataset in one place."""

    city: CityConfig = field(default_factory=CityConfig)
    timelines: TimelineConfig = field(default_factory=TimelineConfig)
    mobility: MobilityConfig = field(default_factory=MobilityConfig)
    language: LanguageModelConfig = field(default_factory=LanguageModelConfig)
    pairs: PairBuilderConfig = field(default_factory=PairBuilderConfig)
    #: Fraction of timelines held out for testing (the paper uses 1/5).
    test_fraction: float = 0.2
    #: Train : validation ratio applied to the remaining timelines (paper: 9:1).
    validation_fraction: float = 0.1
    #: Cap on visit-history length carried by each profile.
    max_history: int | None = 64
    seed: int = 202


@dataclass
class DatasetSplit:
    """Profiles and pairs of one split (training / validation / testing)."""

    name: str
    store: TimelineStore
    labeled_profiles: list[Profile]
    unlabeled_profiles: list[Profile]
    labeled_pairs: list[Pair]
    unlabeled_pairs: list[Pair]

    @property
    def positive_pairs(self) -> list[Pair]:
        return [p for p in self.labeled_pairs if p.is_positive]

    @property
    def negative_pairs(self) -> list[Pair]:
        return [p for p in self.labeled_pairs if p.is_negative]

    def statistics(self) -> dict[str, float]:
        """The Table 2 row for this split."""
        return {
            "timelines": len(self.store),
            "labeled_profiles": len(self.labeled_profiles),
            "avg_visits_per_profile": round(
                average_visits_per_profile(self.labeled_profiles + self.unlabeled_profiles), 2
            ),
            "positive_pairs": len(self.positive_pairs),
            "negative_pairs": len(self.negative_pairs),
            "unlabeled_pairs": len(self.unlabeled_pairs),
        }


@dataclass
class ColocationDataset:
    """A fully prepared co-location dataset (one city)."""

    name: str
    config: DatasetConfig
    city: City
    train: DatasetSplit
    validation: DatasetSplit
    test: DatasetSplit

    @property
    def registry(self):
        """The POI registry (the paper's set ``P``)."""
        return self.city.registry

    @property
    def delta_t(self) -> float:
        return self.config.pairs.delta_t

    def training_corpus(self) -> list[str]:
        """All training tweet contents (the skip-gram corpus ``C_train``)."""
        return self.train.store.all_contents()

    def statistics(self) -> dict[str, dict[str, float]]:
        """Table 2: statistics of every split."""
        return {
            "Training": self.train.statistics(),
            "Validation": self.validation.statistics(),
            "Testing": self.test.statistics(),
        }


def _split_timelines(
    timelines: list[Timeline],
    test_fraction: float,
    validation_fraction: float,
    rng: np.random.Generator,
) -> tuple[list[Timeline], list[Timeline], list[Timeline]]:
    if len(timelines) < 5:
        raise DataGenerationError("too few usable timelines to split; increase num_users")
    order = rng.permutation(len(timelines))
    shuffled = [timelines[int(i)] for i in order]
    n_test = max(1, int(round(len(shuffled) * test_fraction)))
    test = shuffled[:n_test]
    remaining = shuffled[n_test:]
    n_val = max(1, int(round(len(remaining) * validation_fraction)))
    validation = remaining[:n_val]
    train = remaining[n_val:]
    if not train:
        raise DataGenerationError("training split is empty; increase num_users")
    return train, validation, test


def build_dataset(config: DatasetConfig, name: str | None = None) -> ColocationDataset:
    """Generate a full synthetic co-location dataset from a config."""
    city = generate_city(config.city)
    language_model = TweetLanguageModel(config.language)
    mobility_model = MobilityModel(city, config.mobility)
    simulator = TimelineSimulator(
        city, config.timelines, language_model=language_model, mobility_model=mobility_model
    )
    result = simulator.simulate()

    profile_builder = ProfileBuilder(city.registry, max_history=config.max_history)
    full_store = TimelineStore(result.timelines)

    # Keep only timelines with at least one POI tweet, as the paper does.
    usable: list[Timeline] = []
    for timeline in result.timelines:
        has_poi_tweet = any(
            t.is_geotagged and city.registry.locate(t.lat, t.lon) is not None  # type: ignore[arg-type]
            for t in timeline.tweets
        )
        if has_poi_tweet:
            usable.append(timeline)
    if len(usable) < 5:
        raise DataGenerationError(
            "simulation produced too few timelines with POI tweets; "
            "increase num_users, activity_probability or geotag_probability"
        )

    rng = np.random.default_rng(config.seed)
    train_tls, val_tls, test_tls = _split_timelines(
        usable, config.test_fraction, config.validation_fraction, rng
    )

    splits: dict[str, DatasetSplit] = {}
    for split_name, timelines in (("train", train_tls), ("validation", val_tls), ("test", test_tls)):
        store = TimelineStore(timelines)
        profiles = profile_builder.build_all(store)
        labeled = [p for p in profiles if p.is_labeled]
        unlabeled = [p for p in profiles if not p.is_labeled]
        pair_builder = PairBuilder(config.pairs)
        labeled_pairs, unlabeled_pairs = pair_builder.build(profiles)
        if split_name != "train":
            # Table 2: validation/testing splits only need labelled pairs.
            unlabeled_pairs = []
        splits[split_name] = DatasetSplit(
            name=split_name,
            store=store,
            labeled_profiles=labeled,
            unlabeled_profiles=unlabeled,
            labeled_pairs=labeled_pairs,
            unlabeled_pairs=unlabeled_pairs,
        )

    del full_store
    return ColocationDataset(
        name=name or config.city.name,
        config=config,
        city=city,
        train=splits["train"],
        validation=splits["validation"],
        test=splits["test"],
    )


def nyc_like_dataset_config(scale: float = 1.0, seed: int = 7) -> DatasetConfig:
    """The NYC-like preset, scaled by ``scale`` (users, POIs and days grow with it)."""
    num_pois = max(10, int(round(30 * scale)))
    num_users = max(24, int(round(120 * scale)))
    num_days = max(7, int(round(28 * min(1.0, scale))))
    city = nyc_like_config(num_pois=num_pois, seed=seed)
    city.popularity_exponent = 1.3
    return DatasetConfig(
        city=city,
        timelines=TimelineConfig(
            num_users=num_users,
            num_days=num_days,
            slots_per_day=4,
            activity_probability=0.35,
            geotag_probability=0.65,
            offsite_fraction=0.3,
            seed=seed + 1,
        ),
        mobility=MobilityConfig(favorites_per_user=5, return_probability=0.9, seed=seed + 2),
        pairs=PairBuilderConfig(
            delta_t=HOUR_SECONDS,
            max_negative_pairs=20_000,
            max_unlabeled_pairs=20_000,
            seed=seed + 3,
        ),
        seed=seed + 4,
    )


def lv_like_dataset_config(scale: float = 1.0, seed: int = 11) -> DatasetConfig:
    """The LV-like preset: fewer POIs and users, as in the paper's LV dataset."""
    num_pois = max(6, int(round(14 * scale)))
    num_users = max(16, int(round(60 * scale)))
    num_days = max(7, int(round(28 * min(1.0, scale))))
    city = lv_like_config(num_pois=num_pois, seed=seed)
    city.popularity_exponent = 1.3
    return DatasetConfig(
        city=city,
        timelines=TimelineConfig(
            num_users=num_users,
            num_days=num_days,
            slots_per_day=4,
            activity_probability=0.35,
            geotag_probability=0.65,
            offsite_fraction=0.3,
            seed=seed + 1,
        ),
        mobility=MobilityConfig(favorites_per_user=4, return_probability=0.9, seed=seed + 2),
        pairs=PairBuilderConfig(
            delta_t=HOUR_SECONDS,
            max_negative_pairs=10_000,
            max_unlabeled_pairs=10_000,
            seed=seed + 3,
        ),
        seed=seed + 4,
    )


def tiny_dataset_config(seed: int = 5, scale: float = 1.0) -> DatasetConfig:
    """A deliberately small preset used by unit tests.

    ``scale`` multiplies the user count (floor 12) so the CLI's ``--scale``
    flag means the same thing on every preset; the default reproduces the
    historical 30-user dataset exactly.
    """
    base = nyc_like_dataset_config(scale=0.3, seed=seed)
    num_users = max(12, int(round(30 * scale)))
    return replace(
        base,
        timelines=TimelineConfig(
            num_users=num_users, num_days=7, slots_per_day=3, seed=seed + 1, geotag_probability=0.7
        ),
        pairs=PairBuilderConfig(
            delta_t=HOUR_SECONDS, max_negative_pairs=2_000, max_unlabeled_pairs=2_000, seed=seed + 3
        ),
    )


def _register_dataset_presets() -> None:
    """Register the synthetic dataset presets under the ``"preset"`` kind.

    ``repro.registry.build("preset", name, {"scale": 0.5, "seed": 7})``
    returns the corresponding :class:`DatasetConfig`, ready for
    :func:`build_dataset`.
    """
    from repro.registry import register

    presets = {
        "nyc": (nyc_like_dataset_config, "NYC-like synthetic city (paper's larger dataset)"),
        "lv": (lv_like_dataset_config, "LV-like synthetic city (fewer POIs and users)"),
        "tiny": (tiny_dataset_config, "deliberately small preset used by unit tests"),
    }

    def make_factory(builder):
        def factory(config: dict | None = None) -> DatasetConfig:
            # Unknown keys are dropped, matching config_from_dict's tolerance
            # (e.g. the tiny preset has no `scale` knob).
            import inspect

            accepted = inspect.signature(builder).parameters
            kwargs = {k: v for k, v in (config or {}).items() if k in accepted}
            return builder(**kwargs)

        return factory

    for name, (builder, description) in presets.items():
        register("preset", name, factory=make_factory(builder), description=description)


_register_dataset_presets()
