"""Synthetic tweet language model.

The paper's learning signal from text comes from the fact that tweets posted at
a POI tend to contain terms specific to that POI or its category ("Statue of
Liberty" vs generic chatter).  This module reproduces that coupling with a
small generative model:

* every POI *category* owns a pool of category words (``museum`` tweets mention
  "exhibit", "gallery", ...);
* every POI owns a handful of POI-specific tokens derived from its name;
* a global background vocabulary supplies filler words and stop words.

A tweet posted at a POI mixes the three pools; a tweet posted away from any POI
uses only the background pool.  The mixing weights control how much location
signal the text carries, which is the knob the reproduction uses to keep the
relative ordering of text-based approaches realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.poi import POI

#: Category-specific word pools for the synthetic cities.
CATEGORY_WORDS: dict[str, tuple[str, ...]] = {
    "museum": ("exhibit", "gallery", "art", "sculpture", "painting", "history", "curator"),
    "park": ("trees", "picnic", "jogging", "sunny", "lawn", "bench", "fountain"),
    "stadium": ("game", "team", "score", "crowd", "cheering", "tickets", "match"),
    "cafe": ("coffee", "latte", "espresso", "croissant", "barista", "brunch", "wifi"),
    "casino": ("jackpot", "poker", "slots", "chips", "dealer", "blackjack", "vegas"),
    "theater": ("show", "stage", "actors", "curtain", "applause", "broadway", "musical"),
    "mall": ("shopping", "sale", "store", "fitting", "brands", "discount", "escalator"),
    "hotel": ("lobby", "checkin", "suite", "rooftop", "concierge", "view", "pool"),
    "restaurant": ("dinner", "menu", "chef", "dessert", "reservation", "delicious", "wine"),
    "landmark": ("tourists", "photo", "skyline", "iconic", "architecture", "selfie", "view"),
    "university": ("lecture", "campus", "library", "students", "professor", "exam", "research"),
    "airport": ("flight", "boarding", "gate", "delay", "luggage", "takeoff", "terminal"),
    "generic": ("place", "spot", "corner", "street", "block", "building", "nearby"),
}

#: Background chatter used by every tweet regardless of location.
BACKGROUND_WORDS: tuple[str, ...] = (
    "today", "really", "great", "love", "feeling", "time", "friends", "happy", "lol",
    "omg", "finally", "week", "morning", "night", "good", "best", "again", "new",
    "can't", "wait", "back", "home", "work", "weather", "weekend", "tired", "fun",
    "amazing", "nice", "day", "people", "city", "life", "music", "food", "about",
    "the", "a", "is", "to", "and", "in", "of", "for", "on", "with", "at", "my",
)


@dataclass
class LanguageModelConfig:
    """Mixing weights and length distribution for synthetic tweets."""

    #: Probability that a token of an on-POI tweet comes from the POI-specific pool.
    poi_word_prob: float = 0.35
    #: Probability that a token of an on-POI tweet comes from the category pool.
    category_word_prob: float = 0.3
    #: Minimum and maximum tweet length in tokens.
    min_length: int = 6
    max_length: int = 14
    #: Number of POI-specific tokens derived per POI.
    poi_specific_tokens: int = 3
    #: Probability that an on-POI tweet is pure background noise (no location clue),
    #: reproducing the paper's observation that some POI tweets carry no signal.
    noise_tweet_prob: float = 0.15


@dataclass
class TweetLanguageModel:
    """Generates tweet text conditioned on the POI (or absence of one)."""

    config: LanguageModelConfig = field(default_factory=LanguageModelConfig)

    def __post_init__(self) -> None:
        self._poi_tokens: dict[int, tuple[str, ...]] = {}

    def register_poi(self, poi: POI) -> None:
        """Derive and memoise the POI-specific tokens for a POI."""
        base = poi.name.lower().replace(" ", "_")
        tokens = tuple(f"{base}_{k}" for k in range(self.config.poi_specific_tokens))
        self._poi_tokens[poi.pid] = tokens

    def poi_tokens(self, pid: int) -> tuple[str, ...]:
        """The POI-specific tokens registered for ``pid`` (empty if unknown)."""
        return self._poi_tokens.get(pid, ())

    def generate(self, rng: np.random.Generator, poi: POI | None = None) -> str:
        """Generate one tweet's text.

        When ``poi`` is given the text mixes POI-specific, category and
        background words; otherwise it is pure background chatter.
        """
        cfg = self.config
        length = int(rng.integers(cfg.min_length, cfg.max_length + 1))
        if poi is not None and poi.pid not in self._poi_tokens:
            self.register_poi(poi)

        on_poi = poi is not None and rng.random() >= cfg.noise_tweet_prob
        words: list[str] = []
        for _ in range(length):
            if on_poi:
                draw = rng.random()
                if draw < cfg.poi_word_prob:
                    pool = self._poi_tokens[poi.pid]  # type: ignore[union-attr]
                elif draw < cfg.poi_word_prob + cfg.category_word_prob:
                    pool = CATEGORY_WORDS.get(poi.category, CATEGORY_WORDS["generic"])  # type: ignore[union-attr]
                else:
                    pool = BACKGROUND_WORDS
            else:
                pool = BACKGROUND_WORDS
            words.append(pool[int(rng.integers(0, len(pool)))])
        return " ".join(words)
