"""Synthetic city generation.

The paper evaluates on New York City (top 1000 POIs by tweet volume) and Clark
County / Las Vegas (top 250 POIs).  Without access to the crawled Twitter data
or the OSM dumps, this module generates cities with the same structure: a set
of polygonal POIs scattered over a metropolitan area, grouped into a few dense
neighbourhoods (so that negative pairs include both "nearby but different POI"
and "far away" cases), with a Zipf-like popularity distribution that drives how
often users visit each POI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.language import CATEGORY_WORDS
from repro.errors import DataGenerationError
from repro.geo.poi import POI, POIRegistry
from repro.geo.point import GeoPoint
from repro.geo.polygon import BoundingPolygon


@dataclass
class CityConfig:
    """Parameters of a synthetic city."""

    name: str = "synthetic-city"
    #: Geographic anchor of the city (defaults to lower Manhattan).
    center_lat: float = 40.72
    center_lon: float = -73.99
    num_pois: int = 40
    #: Number of dense neighbourhoods POIs cluster into.
    num_neighborhoods: int = 5
    #: Radius (metres) of the whole metropolitan area.
    city_radius_m: float = 12_000.0
    #: Radius (metres) of a single neighbourhood cluster.
    neighborhood_radius_m: float = 1_500.0
    #: POI footprint radius range in metres.
    poi_radius_min_m: float = 60.0
    poi_radius_max_m: float = 160.0
    #: Zipf exponent for POI popularity (1.0 is classic Zipf).
    popularity_exponent: float = 1.0
    seed: int = 7
    categories: tuple[str, ...] = tuple(sorted(CATEGORY_WORDS))


@dataclass
class City:
    """A generated city: POI registry plus popularity weights."""

    config: CityConfig
    registry: POIRegistry
    #: Visit-popularity weight of each POI, aligned with registry order, sums to 1.
    popularity: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def name(self) -> str:
        return self.config.name

    def popular_pids(self, top_k: int) -> list[int]:
        """POI ids of the ``top_k`` most popular POIs."""
        order = np.argsort(-self.popularity)[:top_k]
        return [self.registry.pid_at(int(i)) for i in order]


def generate_city(config: CityConfig) -> City:
    """Generate a synthetic city from a :class:`CityConfig`."""
    if config.num_pois < 2:
        raise DataGenerationError("a city needs at least two POIs")
    if config.num_neighborhoods < 1:
        raise DataGenerationError("a city needs at least one neighbourhood")
    rng = np.random.default_rng(config.seed)
    center = GeoPoint(config.center_lat, config.center_lon)

    # Neighbourhood anchors spread over the metropolitan area.
    anchors: list[GeoPoint] = []
    for _ in range(config.num_neighborhoods):
        angle = rng.uniform(0.0, 2.0 * np.pi)
        radius = config.city_radius_m * np.sqrt(rng.uniform(0.05, 1.0))
        anchors.append(center.offset(radius * np.cos(angle), radius * np.sin(angle)))

    pois: list[POI] = []
    categories = config.categories
    for pid in range(config.num_pois):
        anchor = anchors[pid % len(anchors)]
        angle = rng.uniform(0.0, 2.0 * np.pi)
        radius = config.neighborhood_radius_m * np.sqrt(rng.uniform(0.0, 1.0))
        poi_center = anchor.offset(radius * np.cos(angle), radius * np.sin(angle))
        footprint = rng.uniform(config.poi_radius_min_m, config.poi_radius_max_m)
        category = categories[int(rng.integers(0, len(categories)))]
        name = f"{category}_{pid}"
        polygon = BoundingPolygon.regular(poi_center, footprint, sides=8)
        pois.append(POI(pid=pid, name=name, polygon=polygon, center=poi_center, category=category))

    registry = POIRegistry(pois)
    ranks = np.arange(1, config.num_pois + 1, dtype=np.float64)
    weights = ranks ** (-config.popularity_exponent)
    rng.shuffle(weights)
    popularity = weights / weights.sum()
    return City(config=config, registry=registry, popularity=popularity)


def nyc_like_config(num_pois: int = 40, seed: int = 7) -> CityConfig:
    """A New-York-like preset: many POIs, many neighbourhoods, large area."""
    return CityConfig(
        name="NYC-like",
        center_lat=40.72,
        center_lon=-73.99,
        num_pois=num_pois,
        num_neighborhoods=max(4, num_pois // 10),
        city_radius_m=15_000.0,
        neighborhood_radius_m=1_800.0,
        popularity_exponent=1.05,
        seed=seed,
    )


def lv_like_config(num_pois: int = 16, seed: int = 11) -> CityConfig:
    """A Las-Vegas-like preset: fewer POIs concentrated along a strip."""
    return CityConfig(
        name="LV-like",
        center_lat=36.11,
        center_lon=-115.17,
        num_pois=num_pois,
        num_neighborhoods=max(2, num_pois // 8),
        city_radius_m=8_000.0,
        neighborhood_radius_m=1_200.0,
        popularity_exponent=1.2,
        seed=seed,
        categories=("casino", "hotel", "restaurant", "theater", "mall", "landmark"),
    )
