"""Profile and pair construction (paper Definitions 4 and 5).

``ProfileBuilder`` turns every geo-tagged tweet into a :class:`Profile`: the
tweet is the profile's *recent tweet*, the user's earlier geo-tagged tweets are
its *visit history*, and the profile is labelled with the POI whose bounding
polygon contains the geo-tag (if any).

``PairBuilder`` enumerates pairs of profiles from different users whose
timestamps differ by less than Δt.  Pairs of two labelled profiles are positive
(same POI) or negative (different POIs); pairs involving an unlabelled profile
are unlabelled and only feed the semi-supervised affinity graph.  Because
negative and unlabelled pairs vastly outnumber positives (Table 2), the builder
supports down-sampling them, mirroring the paper's "use 1/10 of negative and
unlabelled pairs per epoch" protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.data.records import Pair, Profile
from repro.data.store import TimelineStore
from repro.data.timelines import HOUR_SECONDS
from repro.errors import DataGenerationError
from repro.geo.poi import POIRegistry


class ProfileBuilder:
    """Builds labelled/unlabelled profiles from timelines against a POI set."""

    def __init__(self, registry: POIRegistry, max_history: int | None = None):
        self.registry = registry
        self.max_history = max_history

    def build_profile(self, store: TimelineStore, uid: int, tweet_index: int) -> Profile:
        """Build the profile for the ``tweet_index``-th geo-tagged tweet of ``uid``."""
        geo = store.geotagged_tweets(uid)
        if not 0 <= tweet_index < len(geo):
            raise DataGenerationError(
                f"user {uid} has {len(geo)} geo-tagged tweets, index {tweet_index} is invalid"
            )
        tweet = geo[tweet_index]
        history = store.visits_before(uid, tweet.ts)
        # The profile's history revision is the number of visits the user had
        # accumulated when the profile was built — the untruncated count, so a
        # capped history that slides its window still advances the revision
        # and agrees with OnlineProfileBuilder's per-ingest counter.
        revision = len(history)
        if self.max_history is not None and len(history) > self.max_history:
            history = history[len(history) - self.max_history :] if self.max_history > 0 else ()
        poi = self.registry.locate(tweet.lat, tweet.lon)  # type: ignore[arg-type]
        return Profile(
            uid=uid,
            tweet=tweet,
            visit_history=history,
            pid=poi.pid if poi is not None else None,
            revision=revision,
        )

    def build_all(self, store: TimelineStore) -> list[Profile]:
        """Build one profile per geo-tagged tweet in the store."""
        profiles: list[Profile] = []
        for uid in store.user_ids:
            for index in range(len(store.geotagged_tweets(uid))):
                profiles.append(self.build_profile(store, uid, index))
        return profiles


@dataclass
class PairBuilderConfig:
    """Pair-enumeration parameters."""

    #: The co-location time window Δt, in seconds (the paper uses one hour).
    delta_t: float = HOUR_SECONDS
    #: Keep every positive pair; keep this fraction of negative pairs.
    negative_keep_fraction: float = 1.0
    #: Keep this fraction of unlabelled pairs.
    unlabeled_keep_fraction: float = 1.0
    #: Hard cap on negative pairs (None = no cap); applied after the fraction.
    max_negative_pairs: int | None = None
    #: Hard cap on unlabelled pairs (None = no cap).
    max_unlabeled_pairs: int | None = None
    seed: int = 19


class PairBuilder:
    """Enumerates labelled and unlabelled pairs from a set of profiles."""

    def __init__(self, config: PairBuilderConfig | None = None):
        self.config = config or PairBuilderConfig()
        if self.config.delta_t <= 0:
            raise DataGenerationError("delta_t must be positive")
        self._rng = np.random.default_rng(self.config.seed)

    def build(self, profiles: Sequence[Profile]) -> tuple[list[Pair], list[Pair]]:
        """Return ``(labeled_pairs, unlabeled_pairs)``.

        Labelled pairs carry co-labels (1 = same POI, 0 = different POIs);
        unlabelled pairs involve at least one unlabelled profile.
        """
        cfg = self.config
        ordered = sorted(profiles, key=lambda p: p.ts)
        positives: list[Pair] = []
        negatives: list[Pair] = []
        unlabeled: list[Pair] = []

        start = 0
        for j, right in enumerate(ordered):
            while right.ts - ordered[start].ts >= cfg.delta_t:
                start += 1
            for i in range(start, j):
                left = ordered[i]
                if left.uid == right.uid:
                    continue
                if left.is_labeled and right.is_labeled:
                    label = 1 if left.pid == right.pid else 0
                    pair = Pair(left, right, co_label=label)
                    (positives if label == 1 else negatives).append(pair)
                else:
                    unlabeled.append(Pair(left, right, co_label=None))

        negatives = self._downsample(negatives, cfg.negative_keep_fraction, cfg.max_negative_pairs)
        unlabeled = self._downsample(unlabeled, cfg.unlabeled_keep_fraction, cfg.max_unlabeled_pairs)
        return positives + negatives, unlabeled

    def _downsample(
        self, pairs: list[Pair], fraction: float, cap: int | None
    ) -> list[Pair]:
        if fraction < 1.0 and pairs:
            keep = max(1, int(round(len(pairs) * fraction)))
            indices = self._rng.choice(len(pairs), size=keep, replace=False)
            pairs = [pairs[int(i)] for i in sorted(indices)]
        if cap is not None and len(pairs) > cap:
            indices = self._rng.choice(len(pairs), size=cap, replace=False)
            pairs = [pairs[int(i)] for i in sorted(indices)]
        return pairs


def split_pairs(pairs: Iterable[Pair]) -> tuple[list[Pair], list[Pair]]:
    """Split labelled pairs into (positives, negatives)."""
    positives, negatives = [], []
    for pair in pairs:
        if pair.is_positive:
            positives.append(pair)
        elif pair.is_negative:
            negatives.append(pair)
    return positives, negatives
