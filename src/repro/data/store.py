"""An indexed in-memory store of tweets and timelines.

The paper's pipeline repeatedly asks two questions of its raw data: "give me
all geo-tagged tweets of user *u* before time *t*" (to build visit histories)
and "give me every tweet in the time window [t1, t2]" (to enumerate pair
candidates).  :class:`TimelineStore` answers both with per-user sorted arrays
and a global time-sorted index, so profile and pair construction stay
near-linear instead of quadratic in the number of tweets.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Sequence

from repro.data.records import Timeline, Tweet, Visit
from repro.errors import DataGenerationError


class TimelineStore:
    """Stores timelines with user and time indexes."""

    def __init__(self, timelines: Iterable[Timeline]):
        self._timelines: dict[int, Timeline] = {}
        for timeline in timelines:
            if timeline.uid in self._timelines:
                raise DataGenerationError(f"duplicate timeline for user {timeline.uid}")
            self._timelines[timeline.uid] = timeline
        # Per-user sorted geo-tagged tweet timestamps for visit-history queries.
        self._geo_ts: dict[int, list[float]] = {}
        self._geo_tweets: dict[int, list[Tweet]] = {}
        for uid, timeline in self._timelines.items():
            geo = list(timeline.geotagged())
            self._geo_tweets[uid] = geo
            self._geo_ts[uid] = [t.ts for t in geo]
        # Global time index over all tweets.
        all_tweets = [t for timeline in self._timelines.values() for t in timeline.tweets]
        all_tweets.sort(key=lambda t: t.ts)
        self._all_tweets = all_tweets
        self._all_ts = [t.ts for t in all_tweets]

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._timelines)

    def __contains__(self, uid: int) -> bool:
        return uid in self._timelines

    def __iter__(self) -> Iterator[Timeline]:
        return iter(self._timelines.values())

    @property
    def user_ids(self) -> list[int]:
        """All user ids in insertion order."""
        return list(self._timelines)

    def timeline(self, uid: int) -> Timeline:
        """The timeline of a user."""
        try:
            return self._timelines[uid]
        except KeyError as exc:
            raise DataGenerationError(f"no timeline for user {uid}") from exc

    def num_tweets(self) -> int:
        """Total number of tweets across all timelines."""
        return len(self._all_tweets)

    def num_geotagged(self) -> int:
        """Total number of geo-tagged tweets."""
        return sum(len(v) for v in self._geo_tweets.values())

    # ----------------------------------------------------------------- queries
    def visits_before(self, uid: int, ts: float) -> tuple[Visit, ...]:
        """Visits (geo-tagged tweets) of ``uid`` strictly before ``ts``."""
        timestamps = self._geo_ts.get(uid, [])
        tweets = self._geo_tweets.get(uid, [])
        cut = bisect.bisect_left(timestamps, ts)
        return tuple(Visit(t.ts, t.lat, t.lon) for t in tweets[:cut])  # type: ignore[arg-type]

    def geotagged_tweets(self, uid: int) -> Sequence[Tweet]:
        """All geo-tagged tweets of a user, time-sorted."""
        return tuple(self._geo_tweets.get(uid, ()))

    def tweets_in_window(self, start_ts: float, end_ts: float) -> Sequence[Tweet]:
        """All tweets (any user) with ``start_ts <= ts < end_ts``."""
        lo = bisect.bisect_left(self._all_ts, start_ts)
        hi = bisect.bisect_left(self._all_ts, end_ts)
        return tuple(self._all_tweets[lo:hi])

    def tweets_of(self, uid: int) -> Sequence[Tweet]:
        """All tweets of one user, time-sorted."""
        return self.timeline(uid).tweets

    def all_contents(self) -> list[str]:
        """Every tweet's text (the skip-gram training corpus ``C_train``)."""
        return [t.content for t in self._all_tweets]

    def subset(self, uids: Iterable[int]) -> "TimelineStore":
        """A new store restricted to the given users (used by dataset splits)."""
        keep = set(uids)
        return TimelineStore(t for uid, t in self._timelines.items() if uid in keep)
