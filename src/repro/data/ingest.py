"""Ingest externally produced data into the co-location pipeline.

The synthetic generator in :mod:`repro.data` exists because the paper's
Twitter crawl cannot be redistributed, but nothing in the model cares where
timelines come from.  This module turns raw tweet records (e.g. parsed from a
real crawl, a check-in dataset, or the JSONL files written by
:mod:`repro.io.records_json`) into the same :class:`ColocationDataset` object
the rest of the library consumes.

Typical use::

    from repro.data.ingest import tweets_from_dicts, timelines_from_tweets, dataset_from_timelines

    tweets = tweets_from_dicts(rows)            # rows: iterable of dicts
    timelines = timelines_from_tweets(tweets)
    dataset = dataset_from_timelines(timelines, registry)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace
from typing import Any, Iterable, Sequence

import numpy as np

from repro.data.city import City
from repro.data.dataset import ColocationDataset, DatasetConfig
from repro.data.records import Timeline, Tweet
from repro.data.store import TimelineStore
from repro.errors import DataGenerationError
from repro.geo.poi import POIRegistry


def tweets_from_dicts(rows: Iterable[dict[str, Any]]) -> list[Tweet]:
    """Parse raw tweet dictionaries into :class:`Tweet` records.

    Each row needs ``uid``, ``ts`` and ``content``; ``lat``/``lon`` are
    optional (absent or ``None`` means the tweet is not geo-tagged).
    """
    from repro.io.records_json import tweet_from_dict

    return [tweet_from_dict(row) for row in rows]


def timelines_from_tweets(tweets: Iterable[Tweet]) -> list[Timeline]:
    """Group tweets by user into timelines (tweets are sorted by timestamp)."""
    by_user: dict[int, list[Tweet]] = defaultdict(list)
    for tweet in tweets:
        by_user[tweet.uid].append(tweet)
    return [Timeline(uid=uid, tweets=tuple(items)) for uid, items in sorted(by_user.items())]


def _has_poi_tweet(timeline: Timeline, registry: POIRegistry) -> bool:
    return any(
        t.is_geotagged and registry.locate(t.lat, t.lon) is not None  # type: ignore[arg-type]
        for t in timeline.tweets
    )


def split_timelines(
    timelines: Sequence[Timeline],
    test_fraction: float = 0.2,
    validation_fraction: float = 0.1,
    seed: int = 17,
) -> tuple[list[Timeline], list[Timeline], list[Timeline]]:
    """Random train/validation/test split of timelines (paper: 1/5 test, then 9:1)."""
    if not 0.0 <= test_fraction < 1.0 or not 0.0 <= validation_fraction < 1.0:
        raise DataGenerationError("split fractions must lie in [0, 1)")
    timelines = list(timelines)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(timelines))
    num_test = int(round(len(timelines) * test_fraction))
    test = [timelines[int(i)] for i in order[:num_test]]
    remaining = [timelines[int(i)] for i in order[num_test:]]
    num_val = int(round(len(remaining) * validation_fraction))
    validation = remaining[:num_val]
    train = remaining[num_val:]
    if not train:
        raise DataGenerationError("the split left no training timelines")
    return train, validation, test


def dataset_from_timelines(
    timelines: Sequence[Timeline],
    registry: POIRegistry | City,
    config: DatasetConfig | None = None,
    name: str = "ingested",
    require_poi_tweet: bool = True,
) -> ColocationDataset:
    """Build a :class:`ColocationDataset` from externally produced timelines.

    Parameters
    ----------
    timelines:
        User timelines (one per user); geo-tagged tweets inside POI polygons
        become labelled profiles.
    registry:
        The POI set ``P`` — either a bare :class:`POIRegistry` or a
        :class:`City` (whose registry is used).
    config:
        Optional :class:`DatasetConfig`; its ``pairs``, ``max_history``,
        ``test_fraction``, ``validation_fraction`` and ``seed`` fields control
        pair enumeration and splitting.  The city/timeline/mobility/language
        sub-configs are ignored (the data already exists).
    require_poi_tweet:
        Drop timelines that contain no POI tweet, as the paper does.
    """
    from repro.io.city import city_from_registry
    from repro.io.datasets import build_split

    if isinstance(registry, City):
        city = registry
    else:
        city = city_from_registry(registry, name=f"{name}-city")
    config = config or DatasetConfig()
    config = replace(config, city=city.config)

    usable = [t for t in timelines if not require_poi_tweet or _has_poi_tweet(t, city.registry)]
    if len(usable) < 3:
        raise DataGenerationError(
            "ingest needs at least three timelines containing POI tweets; "
            f"got {len(usable)} (of {len(list(timelines))} provided)"
        )
    train, validation, test = split_timelines(
        usable, config.test_fraction, config.validation_fraction, seed=config.seed
    )

    splits = {}
    for split_name, split_timelines_ in (("train", train), ("validation", validation), ("test", test)):
        store = TimelineStore(split_timelines_)
        splits[split_name] = build_split(
            split_name,
            store,
            city.registry,
            config,
            keep_unlabeled_pairs=(split_name == "train"),
        )

    return ColocationDataset(
        name=name,
        config=config,
        city=city,
        train=splits["train"],
        validation=splits["validation"],
        test=splits["test"],
    )
