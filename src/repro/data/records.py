"""Core data records mirroring the paper's Definitions 2-5.

* :class:`Tweet` — ``(ts, content, lat, lon)``; ``lat``/``lon`` are ``None``
  for non-geo-tagged tweets (Definition 2).
* :class:`Visit` — ``(ts, lat, lon)`` extracted from a geo-tagged tweet
  (Definition 3).
* :class:`Profile` — ``(uid, t, v-history, pid)`` combining a recent tweet with
  the user's visit history before it (Definition 4).
* :class:`Pair` — two profiles of different users whose timestamps are within
  ``delta_t`` of each other, with a co-location label (Definition 5).

Timestamps are plain ``float`` seconds since an arbitrary epoch; the paper only
ever uses timestamp *differences*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True, slots=True)
class Tweet:
    """A single tweet (paper Definition 2)."""

    uid: int
    ts: float
    content: str
    lat: float | None = None
    lon: float | None = None
    #: POI id the tweet was posted from, when known by the generator.  This is
    #: ground truth used only for evaluation and label construction — models
    #: never read it directly.
    true_pid: int | None = None

    @property
    def is_geotagged(self) -> bool:
        """True when the tweet carries coordinates."""
        return self.lat is not None and self.lon is not None


@dataclass(frozen=True, slots=True)
class Visit:
    """A visit implied by a geo-tagged tweet (paper Definition 3)."""

    ts: float
    lat: float
    lon: float


@dataclass(frozen=True, slots=True)
class Timeline:
    """All tweets of one user, sorted by timestamp."""

    uid: int
    tweets: tuple[Tweet, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tweets", tuple(sorted(self.tweets, key=lambda t: t.ts)))

    def __len__(self) -> int:
        return len(self.tweets)

    def geotagged(self) -> tuple[Tweet, ...]:
        """Geo-tagged tweets in timestamp order."""
        return tuple(t for t in self.tweets if t.is_geotagged)

    def visits_before(self, ts: float) -> tuple[Visit, ...]:
        """Visits (geo-tagged tweets) strictly before ``ts``."""
        return tuple(
            Visit(t.ts, t.lat, t.lon)  # type: ignore[arg-type]
            for t in self.tweets
            if t.is_geotagged and t.ts < ts
        )


@dataclass(frozen=True)
class Profile:
    """A user profile (paper Definition 4).

    ``pid`` is the POI identifier when the recent tweet is a POI tweet
    (labelled profile) and ``None`` otherwise (unlabelled profile).

    ``revision`` is the monotonic per-user visit-history revision stamped by
    the profile builders (:class:`repro.data.profiles.ProfileBuilder`,
    :class:`repro.service.stream.OnlineProfileBuilder`): it increments every
    time the user's history mutates, so two profiles whose histories differ
    *always* differ in revision — even when a capped history drops its oldest
    visit and appends a new one at unchanged length.  Serving caches key on
    it (see :func:`repro.core.profile_key`).  ``None`` marks a profile built
    outside the builders (tests, ad-hoc construction); such profiles fall
    back to length-based identity.
    """

    uid: int
    tweet: Tweet
    visit_history: tuple[Visit, ...] = field(default_factory=tuple)
    pid: int | None = None
    revision: int | None = None

    @property
    def ts(self) -> float:
        """Timestamp of the recent tweet (``r.ts`` in the paper)."""
        return self.tweet.ts

    @property
    def lat(self) -> float | None:
        """Latitude of the recent tweet (``r.lat``)."""
        return self.tweet.lat

    @property
    def lon(self) -> float | None:
        """Longitude of the recent tweet (``r.lon``)."""
        return self.tweet.lon

    @property
    def content(self) -> str:
        """Content of the recent tweet (``r.content``)."""
        return self.tweet.content

    @property
    def is_labeled(self) -> bool:
        """True when the recent tweet was posted inside a known POI."""
        return self.pid is not None

    def without_history(self) -> "Profile":
        """Copy of the profile with an empty visit history (Table 5 ablation).

        The copy's history is a different history state, so it does not keep
        the original's revision — it reverts to length-based identity and can
        never collide with the original's cache rows.
        """
        return Profile(uid=self.uid, tweet=self.tweet, visit_history=(), pid=self.pid)

    def without_content(self, placeholder: str = "") -> "Profile":
        """Copy of the profile whose tweet text is blanked out (Table 5 ablation)."""
        blank = Tweet(
            uid=self.tweet.uid,
            ts=self.tweet.ts,
            content=placeholder,
            lat=self.tweet.lat,
            lon=self.tweet.lon,
            true_pid=self.tweet.true_pid,
        )
        return Profile(
            uid=self.uid,
            tweet=blank,
            visit_history=self.visit_history,
            pid=self.pid,
            revision=self.revision,
        )


@dataclass(frozen=True)
class Pair:
    """A pair of profiles from different users posted within ``delta_t`` (Definition 5).

    ``co_label`` is 1 for a positive pair (same POI), 0 for a negative pair
    (different POIs) and ``None`` for an unlabelled pair.
    """

    left: Profile
    right: Profile
    co_label: int | None = None

    @property
    def is_labeled(self) -> bool:
        return self.co_label is not None

    @property
    def is_positive(self) -> bool:
        return self.co_label == 1

    @property
    def is_negative(self) -> bool:
        return self.co_label == 0

    @property
    def time_gap(self) -> float:
        """Absolute timestamp difference between the two profiles."""
        return abs(self.left.ts - self.right.ts)


def average_visits_per_profile(profiles: Sequence[Profile]) -> float:
    """Average visit-history length, the "#avg visits/profile" column of Table 2."""
    if not profiles:
        return 0.0
    return sum(len(p.visit_history) for p in profiles) / len(profiles)
