"""An undirected social graph between Twitter users.

The paper closes by pointing at "social relationship among users and frequent
patterns shared by users" as future-work signals for co-location judgement
(Section 7).  The reproduction builds that extension: this module holds the
friendship graph itself plus a generator that wires friendships into the
synthetic substrate so the extension has something realistic to learn from —
friendship probability grows with how often two users' timelines already
co-visit the same POIs, with a small random background rate on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.data.store import TimelineStore
from repro.errors import DataGenerationError
from repro.geo.poi import POIRegistry


class SocialGraph:
    """An undirected friendship graph keyed by user id."""

    def __init__(self, user_ids: Iterable[int] = ()):
        self._adjacency: dict[int, set[int]] = {uid: set() for uid in user_ids}

    # ------------------------------------------------------------- population
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "SocialGraph":
        """Build a graph from an iterable of ``(uid_a, uid_b)`` edges."""
        graph = cls()
        for uid_a, uid_b in edges:
            graph.add_friendship(uid_a, uid_b)
        return graph

    def add_user(self, uid: int) -> None:
        """Register a user with no friends yet (idempotent)."""
        self._adjacency.setdefault(uid, set())

    def add_friendship(self, uid_a: int, uid_b: int) -> None:
        """Add an undirected friendship edge; self-loops are rejected."""
        if uid_a == uid_b:
            raise DataGenerationError("a user cannot befriend themselves")
        self.add_user(uid_a)
        self.add_user(uid_b)
        self._adjacency[uid_a].add(uid_b)
        self._adjacency[uid_b].add(uid_a)

    def remove_friendship(self, uid_a: int, uid_b: int) -> None:
        """Remove an edge if present (no error when absent)."""
        self._adjacency.get(uid_a, set()).discard(uid_b)
        self._adjacency.get(uid_b, set()).discard(uid_a)

    # ---------------------------------------------------------------- queries
    def __contains__(self, uid: int) -> bool:
        return uid in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adjacency)

    @property
    def num_users(self) -> int:
        return len(self._adjacency)

    @property
    def num_friendships(self) -> int:
        return sum(len(friends) for friends in self._adjacency.values()) // 2

    def friends(self, uid: int) -> frozenset[int]:
        """The friend set of ``uid`` (empty for unknown users)."""
        return frozenset(self._adjacency.get(uid, set()))

    def degree(self, uid: int) -> int:
        return len(self._adjacency.get(uid, set()))

    def are_friends(self, uid_a: int, uid_b: int) -> bool:
        return uid_b in self._adjacency.get(uid_a, set())

    def edges(self) -> list[tuple[int, int]]:
        """Every friendship as a sorted ``(small_uid, large_uid)`` tuple."""
        seen = set()
        for uid, friends in self._adjacency.items():
            for other in friends:
                edge = (min(uid, other), max(uid, other))
                seen.add(edge)
        return sorted(seen)

    # --------------------------------------------------- pairwise similarities
    def common_friends(self, uid_a: int, uid_b: int) -> frozenset[int]:
        """Mutual friends of the two users."""
        return frozenset(self._adjacency.get(uid_a, set()) & self._adjacency.get(uid_b, set()))

    def friend_jaccard(self, uid_a: int, uid_b: int) -> float:
        """Jaccard similarity of the two friend sets."""
        friends_a = self._adjacency.get(uid_a, set())
        friends_b = self._adjacency.get(uid_b, set())
        union = friends_a | friends_b
        if not union:
            return 0.0
        return len(friends_a & friends_b) / len(union)

    def adamic_adar(self, uid_a: int, uid_b: int) -> float:
        """Adamic-Adar index: mutual friends weighted by inverse log degree."""
        score = 0.0
        for mutual in self.common_friends(uid_a, uid_b):
            degree = self.degree(mutual)
            if degree > 1:
                score += 1.0 / math.log(degree)
            elif degree == 1:
                score += 1.0
        return score

    # ------------------------------------------------------------ conversions
    def to_networkx(self):
        """The graph as a :class:`networkx.Graph` (for community detection)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self._adjacency)
        graph.add_edges_from(self.edges())
        return graph


@dataclass
class SocialGraphConfig:
    """Knobs of the synthetic friendship generator."""

    #: Probability of a friendship between two users with no co-visit overlap.
    background_rate: float = 0.01
    #: Additional probability per unit of co-visit Jaccard overlap.
    covisit_boost: float = 0.6
    #: Cap on the number of candidate partners examined per user (for scale).
    max_candidates_per_user: int = 50
    seed: int = 47

    def __post_init__(self) -> None:
        if not 0.0 <= self.background_rate <= 1.0:
            raise DataGenerationError("background_rate must be a probability")
        if self.covisit_boost < 0.0:
            raise DataGenerationError("covisit_boost must be non-negative")
        if self.max_candidates_per_user < 1:
            raise DataGenerationError("max_candidates_per_user must be at least 1")


def _visited_poi_sets(store: TimelineStore, registry: POIRegistry) -> dict[int, set[int]]:
    """POI-id sets visited by each user, derived from geo-tagged tweets."""
    visited: dict[int, set[int]] = {}
    for timeline in store:
        pois: set[int] = set()
        for tweet in timeline.geotagged():
            poi = registry.locate(tweet.lat, tweet.lon)
            if poi is not None:
                pois.add(poi.pid)
        visited[timeline.uid] = pois
    return visited


def covisit_overlap(visited_a: set[int], visited_b: set[int]) -> float:
    """Jaccard overlap of two visited-POI sets."""
    union = visited_a | visited_b
    if not union:
        return 0.0
    return len(visited_a & visited_b) / len(union)


def generate_social_graph(
    store: TimelineStore,
    registry: POIRegistry,
    config: SocialGraphConfig | None = None,
) -> SocialGraph:
    """Generate a friendship graph correlated with co-visitation.

    For every user, candidate partners are the other users sharing at least
    one visited POI (bucketed by POI so the pass stays near-linear), plus a
    random background sample.  Each candidate becomes a friend with probability
    ``background_rate + covisit_boost * covisit_jaccard``.
    """
    config = config or SocialGraphConfig()
    rng = np.random.default_rng(config.seed)
    visited = _visited_poi_sets(store, registry)
    user_ids = sorted(visited)
    graph = SocialGraph(user_ids)
    if len(user_ids) < 2:
        return graph

    # Bucket users by visited POI to find co-visit candidates cheaply.
    by_poi: dict[int, list[int]] = {}
    for uid, pois in visited.items():
        for pid in pois:
            by_poi.setdefault(pid, []).append(uid)

    for uid in user_ids:
        candidates: set[int] = set()
        for pid in visited[uid]:
            candidates.update(by_poi[pid])
        candidates.discard(uid)
        # Background candidates keep the graph connected even across POIs.
        num_background = min(5, len(user_ids) - 1)
        background = rng.choice(user_ids, size=num_background, replace=False)
        candidates.update(int(b) for b in background if int(b) != uid)
        ordered = sorted(candidates)
        if len(ordered) > config.max_candidates_per_user:
            chosen = rng.choice(len(ordered), size=config.max_candidates_per_user, replace=False)
            ordered = [ordered[int(i)] for i in chosen]
        for other in ordered:
            if other <= uid:
                continue  # handle each unordered pair once
            overlap = covisit_overlap(visited[uid], visited[other])
            probability = min(1.0, config.background_rate + config.covisit_boost * overlap)
            if rng.random() < probability:
                graph.add_friendship(uid, other)
    return graph
