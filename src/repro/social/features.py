"""Pairwise social and frequent-pattern features for profile pairs.

These are the signals the paper's Section 7 proposes adding on top of
HisRect: the social relationship between the two users (friendship, mutual
friends, Adamic-Adar) and the "frequent patterns shared by users" extracted
from their visit histories (co-visited POI overlap, historical co-presence
within the problem's ``delta_t`` window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.records import Pair, Profile
from repro.geo.poi import POIRegistry
from repro.geo.trajectory import covisit_count, covisit_jaccard
from repro.social.graph import SocialGraph

#: Ordered names of the features produced by :class:`SocialFeatureExtractor`.
FEATURE_NAMES = (
    "is_friend",
    "common_friends_log",
    "friend_jaccard",
    "adamic_adar",
    "covisit_jaccard",
    "covisit_count_log",
)


@dataclass(frozen=True, slots=True)
class SocialPairFeatures:
    """The social/pattern feature values of one pair, with named access."""

    is_friend: float
    common_friends_log: float
    friend_jaccard: float
    adamic_adar: float
    covisit_jaccard: float
    covisit_count_log: float

    def as_array(self) -> np.ndarray:
        """The features as a fixed-order vector (matching :data:`FEATURE_NAMES`)."""
        return np.array(
            [
                self.is_friend,
                self.common_friends_log,
                self.friend_jaccard,
                self.adamic_adar,
                self.covisit_jaccard,
                self.covisit_count_log,
            ]
        )


class SocialFeatureExtractor:
    """Turns a profile pair into a fixed-length social feature vector.

    Parameters
    ----------
    graph:
        The friendship graph between users.
    registry:
        POI registry used to map historical visits onto POIs.
    delta_t:
        Time window (seconds) for the historical co-presence count, matching
        the problem's pairing window.
    """

    def __init__(self, graph: SocialGraph, registry: POIRegistry, delta_t: float = 3600.0):
        self.graph = graph
        self.registry = registry
        self.delta_t = delta_t

    @property
    def feature_dim(self) -> int:
        """Number of features per pair."""
        return len(FEATURE_NAMES)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Ordered feature names (stable across versions)."""
        return FEATURE_NAMES

    def extract(self, left: Profile, right: Profile) -> SocialPairFeatures:
        """Compute the features of one (left, right) profile pair."""
        uid_a, uid_b = left.uid, right.uid
        num_common = len(self.graph.common_friends(uid_a, uid_b))
        covisits = covisit_count(
            left.visit_history, right.visit_history, self.registry, delta_t=self.delta_t
        )
        return SocialPairFeatures(
            is_friend=1.0 if self.graph.are_friends(uid_a, uid_b) else 0.0,
            common_friends_log=math.log1p(num_common),
            friend_jaccard=self.graph.friend_jaccard(uid_a, uid_b),
            adamic_adar=self.graph.adamic_adar(uid_a, uid_b),
            covisit_jaccard=covisit_jaccard(left.visit_history, right.visit_history, self.registry),
            covisit_count_log=math.log1p(covisits),
        )

    def extract_pair(self, pair: Pair) -> SocialPairFeatures:
        """Compute the features of a :class:`~repro.data.records.Pair`."""
        return self.extract(pair.left, pair.right)

    def featurize_pairs(self, pairs: list[Pair]) -> np.ndarray:
        """Feature matrix ``(num_pairs, feature_dim)`` for a list of pairs."""
        if not pairs:
            return np.zeros((0, self.feature_dim))
        return np.stack([self.extract_pair(pair).as_array() for pair in pairs])
