"""A co-location judge augmented with social and frequent-pattern features.

The paper's future-work section suggests that social relationships and shared
visit patterns could strengthen co-location judgement.  This module stacks a
small logistic layer on top of an already-trained HisRect judge: the stacked
model sees the base judge's logit plus the :class:`SocialFeatureExtractor`
features and learns how much to trust each signal.  Keeping the base judge
frozen mirrors how the paper trains the judge on top of a frozen featurizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.protocols import pairwise_probability_matrix
from repro.data.records import Pair, Profile
from repro.errors import NotFittedError, TrainingError
from repro.nn import Adam, Linear, Tensor, binary_cross_entropy_with_logits, clip_grad_norm
from repro.social.features import SocialFeatureExtractor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.dataset import ColocationDataset


@dataclass
class SocialJudgeConfig:
    """Hyperparameters of the stacked social judge."""

    epochs: int = 40
    learning_rate: float = 0.05
    weight_decay: float = 1e-4
    batch_size: int = 64
    grad_clip: float = 5.0
    threshold: float = 0.5
    seed: int = 53

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise TrainingError("epochs must be at least 1")
        if not 0.0 < self.threshold < 1.0:
            raise TrainingError("threshold must be in (0, 1)")


@dataclass
class SocialJudgeHistory:
    """Loss trace of the stacked-model training."""

    losses: list[float] = field(default_factory=list)


def _logit(probabilities: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    clipped = np.clip(probabilities, eps, 1.0 - eps)
    return np.log(clipped / (1.0 - clipped))


class SocialCoLocationJudge:
    """Stack social features on top of a trained base co-location judge.

    ``base_judge`` is anything exposing ``predict_proba(pairs) -> np.ndarray``
    (the HisRect judge, the One-phase model or the pipeline itself).
    """

    def __init__(
        self,
        base_judge,
        extractor: SocialFeatureExtractor,
        config: SocialJudgeConfig | None = None,
    ):
        self.base_judge = base_judge
        self.extractor = extractor
        self.config = config or SocialJudgeConfig()
        self._rng = np.random.default_rng(self.config.seed)
        # +1 for the base judge's logit.
        self.stacker = Linear(extractor.feature_dim + 1, 1, init_std=0.01, rng=self._rng)
        self._feature_mean: np.ndarray | None = None
        self._feature_std: np.ndarray | None = None
        self._fitted = False

    # ---------------------------------------------------------------- features
    def _design_matrix(self, pairs: list[Pair]) -> np.ndarray:
        base_logits = _logit(np.asarray(self.base_judge.predict_proba(pairs), dtype=float))
        social = self.extractor.featurize_pairs(pairs)
        if self._feature_mean is not None and self._feature_std is not None:
            social = (social - self._feature_mean) / self._feature_std
        return np.column_stack([base_logits, social])

    # ---------------------------------------------------------------- training
    def fit(self, labeled_pairs: list[Pair]) -> SocialJudgeHistory:
        """Train the stacking layer on labelled pairs (base judge stays frozen)."""
        labeled = [p for p in labeled_pairs if p.is_labeled]
        positives = [p for p in labeled if p.is_positive]
        negatives = [p for p in labeled if p.is_negative]
        if not positives or not negatives:
            raise TrainingError("social judge training needs both positive and negative pairs")

        raw_social = self.extractor.featurize_pairs(labeled)
        self._feature_mean = raw_social.mean(axis=0)
        std = raw_social.std(axis=0)
        std[std < 1e-8] = 1.0
        self._feature_std = std

        design = self._design_matrix(labeled)
        labels = np.array([p.co_label for p in labeled], dtype=np.float64)

        cfg = self.config
        optimizer = Adam(self.stacker.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        history = SocialJudgeHistory()
        num_rows = design.shape[0]
        for _ in range(cfg.epochs):
            order = self._rng.permutation(num_rows)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, num_rows, cfg.batch_size):
                index = order[start : start + cfg.batch_size]
                logits = self.stacker(Tensor(design[index])).reshape(len(index))
                loss = binary_cross_entropy_with_logits(logits, labels[index])
                self.stacker.zero_grad()
                loss.backward()
                clip_grad_norm(optimizer.parameters, cfg.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            history.losses.append(epoch_loss / max(1, batches))
        self._fitted = True
        return history

    # --------------------------------------------------------------- inference
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("the social co-location judge has not been fitted")

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probability for each pair, blending HisRect and social signals."""
        self._require_fitted()
        if not pairs:
            return np.zeros(0)
        logits = self.stacker(Tensor(self._design_matrix(pairs))).data.reshape(-1)
        return 1.0 / (1.0 + np.exp(-logits))

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions (1 = co-located)."""
        return (self.predict_proba(pairs) >= self.config.threshold).astype(int)

    @property
    def decision_threshold(self) -> float:
        """The probability threshold behind :meth:`predict`."""
        return self.config.threshold

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """Pairwise co-location probability matrix (generic pair-scoring path).

        Social features are defined per *pair*, so there is no feature-level
        shortcut; every unordered pair is scored through the stacker.
        """
        self._require_fitted()
        return pairwise_probability_matrix(self, profiles)

    def feature_weights(self) -> dict[str, float]:
        """Learned weight per input signal (useful for interpreting the blend)."""
        self._require_fitted()
        weights = self.stacker.weight.data.reshape(-1)
        names = ("base_logit",) + self.extractor.feature_names
        return {name: float(weight) for name, weight in zip(names, weights)}


@dataclass
class SocialApproachConfig:
    """Configuration of the registry-buildable social approach."""

    #: Configuration of the base HisRect pipeline (serialised PipelineConfig).
    base: dict[str, Any] = field(default_factory=dict)
    #: Synthetic friendship-graph generator settings.
    graph: dict[str, Any] = field(default_factory=dict)
    #: Stacked-judge training hyper-parameters.
    judge: dict[str, Any] = field(default_factory=dict)


class SocialColocationApproach:
    """Trainable wrapper: base pipeline + friendship graph + stacked judge.

    Registered under ``("judge", "social")``.  Fitting trains (or reuses) a
    two-phase HisRect pipeline, generates a friendship graph correlated with
    co-visitation over the training timelines, extracts social pair features
    and trains the stacking layer — everything from one dataset, so the
    approach composes with the CLI and the experiment runners.
    """

    def __init__(self, config: SocialApproachConfig | None = None, base_judge=None):
        self.config = config or SocialApproachConfig()
        self.base_judge = base_judge
        self.model: SocialCoLocationJudge | None = None

    @classmethod
    def from_config(cls, config: dict[str, Any] | None = None) -> "SocialColocationApproach":
        from repro.io.configs import config_from_dict

        return cls(config_from_dict(SocialApproachConfig, config or {}))

    def to_config(self) -> dict[str, Any]:
        from repro.io.configs import config_to_dict

        return config_to_dict(self.config)

    def fit(self, dataset: "ColocationDataset") -> "SocialColocationApproach":
        """Train the base judge (unless shared), the graph and the stacker."""
        from repro.io.configs import config_from_dict
        from repro.social.graph import SocialGraphConfig, generate_social_graph

        if self.base_judge is None:
            from repro.colocation.pipeline import CoLocationPipeline

            base = CoLocationPipeline.from_config(dict(self.config.base, mode="two-phase"))
            self.base_judge = base.fit(dataset)
        graph_config = config_from_dict(SocialGraphConfig, self.config.graph)
        graph = generate_social_graph(dataset.train.store, dataset.registry, graph_config)
        extractor = SocialFeatureExtractor(graph, dataset.registry, delta_t=dataset.delta_t)
        judge_config = config_from_dict(SocialJudgeConfig, self.config.judge)
        self.model = SocialCoLocationJudge(self.base_judge, extractor, judge_config)
        self.model.fit(dataset.train.labeled_pairs)
        return self

    def _require_model(self) -> SocialCoLocationJudge:
        if self.model is None:
            raise NotFittedError("SocialColocationApproach.fit() has not been called")
        return self.model

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        return self._require_model().predict_proba(pairs)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        return self._require_model().predict(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        return self._require_model().probability_matrix(profiles)

    def feature_weights(self) -> dict[str, float]:
        return self._require_model().feature_weights()


def _register_social_judge() -> None:
    from repro.registry import register

    register(
        "judge",
        "social",
        factory=SocialColocationApproach.from_config,
        description="HisRect stacked with social / frequent-pattern pair features",
    )


_register_social_judge()
