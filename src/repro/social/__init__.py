"""Social extension (paper Section 7 future work): friendship graphs, pair features, stacked judge."""

from repro.social.features import FEATURE_NAMES, SocialFeatureExtractor, SocialPairFeatures
from repro.social.graph import (
    SocialGraph,
    SocialGraphConfig,
    covisit_overlap,
    generate_social_graph,
)
from repro.social.judge import (
    SocialApproachConfig,
    SocialCoLocationJudge,
    SocialColocationApproach,
    SocialJudgeConfig,
    SocialJudgeHistory,
)

__all__ = [
    "SocialApproachConfig",
    "SocialColocationApproach",
    "SocialGraph",
    "SocialGraphConfig",
    "generate_social_graph",
    "covisit_overlap",
    "SocialFeatureExtractor",
    "SocialPairFeatures",
    "FEATURE_NAMES",
    "SocialCoLocationJudge",
    "SocialJudgeConfig",
    "SocialJudgeHistory",
]
