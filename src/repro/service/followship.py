"""Followship measurement in the real world (paper Section 1, citing Pham & Shahabi).

" 'Followship' measurement in the real world investigates when a person visits
a POI due to the influence of another person."  The analyzer counts, for an
ordered user pair (leader, follower), the follower's POI visits that happen
within a trailing window after the leader visited the same POI, and reports a
followship score normalised by the follower's total POI visits.  A permutation
baseline (expected score when visit times are shuffled) is provided so callers
can judge whether an observed score is above chance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.store import TimelineStore
from repro.errors import ConfigurationError
from repro.geo.poi import POIRegistry


@dataclass(frozen=True, slots=True)
class FollowshipScore:
    """Followship of one ordered (leader, follower) user pair."""

    leader_uid: int
    follower_uid: int
    #: Number of follower visits that trail a leader visit to the same POI.
    followed_visits: int
    #: Total number of follower POI visits considered.
    total_follower_visits: int

    @property
    def score(self) -> float:
        """Fraction of the follower's POI visits that trail the leader."""
        if self.total_follower_visits == 0:
            return 0.0
        return self.followed_visits / self.total_follower_visits


class FollowshipAnalyzer:
    """Measure who follows whom across POIs.

    Parameters
    ----------
    registry:
        POI registry used to map visits onto POIs, or a
        :class:`repro.api.ColocationEngine`, whose registry is adopted — so
        every service application can be constructed from the same engine.
    window_s:
        A follower visit counts as "followed" when it happens strictly after a
        leader visit to the same POI and within ``window_s`` seconds of it.
    """

    def __init__(self, registry: POIRegistry, window_s: float = 6 * 3600.0):
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if not hasattr(registry, "locate") and hasattr(registry, "registry"):
            registry = registry.registry
        self.registry = registry
        self.window_s = window_s

    # -------------------------------------------------------------- low level
    def poi_events(self, visits: Sequence) -> list[tuple[int, float]]:
        """``(pid, ts)`` events for the visits that fall inside a POI."""
        events = []
        for visit in visits:
            poi = self.registry.locate(visit.lat, visit.lon)
            if poi is not None:
                events.append((poi.pid, visit.ts))
        events.sort(key=lambda event: event[1])
        return events

    def score_pair(self, leader_visits: Sequence, follower_visits: Sequence, leader_uid: int = -1, follower_uid: int = -1) -> FollowshipScore:
        """Followship score of one ordered (leader, follower) visit-history pair."""
        leader_events = self.poi_events(leader_visits)
        follower_events = self.poi_events(follower_visits)
        leader_by_poi: dict[int, list[float]] = {}
        for pid, ts in leader_events:
            leader_by_poi.setdefault(pid, []).append(ts)
        followed = 0
        for pid, follower_ts in follower_events:
            timestamps = leader_by_poi.get(pid)
            if not timestamps:
                continue
            if any(0.0 < follower_ts - leader_ts <= self.window_s for leader_ts in timestamps):
                followed += 1
        return FollowshipScore(
            leader_uid=leader_uid,
            follower_uid=follower_uid,
            followed_visits=followed,
            total_follower_visits=len(follower_events),
        )

    def expected_score(
        self,
        leader_visits: Sequence,
        follower_visits: Sequence,
        num_permutations: int = 20,
        seed: int = 61,
    ) -> float:
        """Mean followship score with follower visit times shuffled.

        Shuffling destroys the temporal ordering while keeping both users'
        POI marginals, so the result estimates how much followship would be
        observed by coincidence alone.
        """
        follower_events = self.poi_events(follower_visits)
        if not follower_events:
            return 0.0
        rng = np.random.default_rng(seed)
        leader_events = self.poi_events(leader_visits)
        leader_by_poi: dict[int, list[float]] = {}
        for pid, ts in leader_events:
            leader_by_poi.setdefault(pid, []).append(ts)
        timestamps = np.array([ts for _, ts in follower_events])
        pids = [pid for pid, _ in follower_events]
        scores = []
        for _ in range(num_permutations):
            shuffled = rng.permutation(timestamps)
            followed = 0
            for pid, follower_ts in zip(pids, shuffled):
                leader_ts_list = leader_by_poi.get(pid)
                if not leader_ts_list:
                    continue
                if any(0.0 < follower_ts - leader_ts <= self.window_s for leader_ts in leader_ts_list):
                    followed += 1
            scores.append(followed / len(follower_events))
        return float(np.mean(scores))

    # ------------------------------------------------------------- store level
    def analyze_store(
        self,
        store: TimelineStore,
        min_score: float = 0.0,
        min_followed_visits: int = 1,
        top_k: int | None = None,
    ) -> list[FollowshipScore]:
        """Followship scores for every ordered user pair in a timeline store.

        Pairs are filtered to those with at least ``min_followed_visits``
        followed visits and a score of at least ``min_score``; the result is
        sorted by decreasing score (ties broken by follower visit volume).
        """
        histories = {
            timeline.uid: [
                visit for visit in timeline.visits_before(float("inf"))
            ]
            for timeline in store
        }
        user_ids = sorted(histories)
        results: list[FollowshipScore] = []
        for leader_uid in user_ids:
            for follower_uid in user_ids:
                if leader_uid == follower_uid:
                    continue
                score = self.score_pair(
                    histories[leader_uid],
                    histories[follower_uid],
                    leader_uid=leader_uid,
                    follower_uid=follower_uid,
                )
                if score.followed_visits >= min_followed_visits and score.score >= min_score:
                    results.append(score)
        results.sort(key=lambda s: (-s.score, -s.total_follower_visits, s.leader_uid, s.follower_uid))
        if top_k is not None:
            results = results[:top_k]
        return results
