"""Online co-location services built on a :class:`repro.api.ColocationEngine`.

The paper motivates co-location judgement with online applications — friends
notification, local people recommendation, community detection, followship
measurement — and reports (Section 6.4.4) that once trained, profile
construction and judgement run in about a millisecond, so the model "can work
in online scenarios".  This package provides that application layer.  Every
application takes a :class:`repro.api.ColocationEngine` (raw fitted judges
are wrapped automatically), so profile features are cached across services
sharing an engine:

* :class:`repro.service.stream.OnlineProfileBuilder` — turns a live tweet
  stream into :class:`Profile` objects, maintaining each user's visit history
  incrementally.
* :class:`repro.service.stream.StreamScorer` — builder + sliding window +
  engine: tweets in, scored candidate pairs out.
* :class:`repro.service.pairing.SlidingPairWindow` — keeps the profiles seen
  in the last Δt seconds and enumerates candidate pairs for each new profile.
* :class:`repro.service.notification.FriendsNotificationService` — the
  friends-notification application: feed tweets, get notifications whenever
  two friends are judged co-located.
* :class:`repro.service.recommendation.LocalPeopleRecommender` — local people
  recommendation blending co-location probability with shared interests.
* :class:`repro.service.community.CommunityDetector` — community detection
  over the weighted co-location graph between users.
* :class:`repro.service.followship.FollowshipAnalyzer` — followship
  measurement: who visits a POI after whom.
"""

from repro.service.community import CommunityDetector, CommunityResult
from repro.service.followship import FollowshipAnalyzer, FollowshipScore
from repro.service.notification import FriendsNotificationService, Notification
from repro.service.pairing import SlidingPairWindow
from repro.service.recommendation import (
    LocalPeopleRecommender,
    Recommendation,
    evaluate_recommender,
)
from repro.service.stream import OnlineProfileBuilder, ScoredPair, StreamScorer

__all__ = [
    "OnlineProfileBuilder",
    "StreamScorer",
    "ScoredPair",
    "SlidingPairWindow",
    "FriendsNotificationService",
    "Notification",
    "LocalPeopleRecommender",
    "Recommendation",
    "evaluate_recommender",
    "CommunityDetector",
    "CommunityResult",
    "FollowshipAnalyzer",
    "FollowshipScore",
]
