"""Community detection over co-location relationships (paper Section 1).

"Community detection and group analysis ... aim to find users sharing
interests and appear in the same place at the same time."  The detector builds
a weighted user graph whose edges are co-location probabilities produced by a
fitted judge (aggregated over the users' profile pairs) and extracts
communities with modularity maximisation; connected components remain
available as the cheap alternative the paper's own clustering case study uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError
from repro.service._engine import resolve_engine


@dataclass
class CommunityResult:
    """Detected communities plus the user graph they were extracted from."""

    #: Communities as sets of user ids, largest first.
    communities: list[set[int]]
    #: The weighted co-location graph between users.
    graph: nx.Graph = field(repr=False)
    #: Modularity of the reported partition (0 when it cannot be computed).
    modularity: float = 0.0

    @property
    def num_communities(self) -> int:
        return len(self.communities)

    def community_of(self, uid: int) -> set[int] | None:
        """The community containing ``uid`` (None for unknown users)."""
        for community in self.communities:
            if uid in community:
                return community
        return None


class CommunityDetector:
    """Detect user communities from pairwise co-location probabilities.

    Parameters
    ----------
    engine:
        A :class:`repro.api.ColocationEngine`, or any fitted judge exposing
        ``predict_proba(pairs)`` (wrapped into an engine automatically).
    delta_t:
        Pairing window: profiles of two users are only compared when their
        timestamps are within ``delta_t`` seconds.
    edge_threshold:
        Minimum aggregated co-location probability for a user-user edge.
    method:
        ``"modularity"`` (greedy modularity maximisation, the default) or
        ``"components"`` (plain connected components, as in Table 8).
    judge:
        Deprecated alias for ``engine`` (kept for pre-engine call sites).
    """

    def __init__(
        self,
        engine=None,
        delta_t: float = 3600.0,
        edge_threshold: float = 0.5,
        method: str = "modularity",
        *,
        judge=None,
    ):
        if delta_t <= 0:
            raise ConfigurationError("delta_t must be positive")
        if not 0.0 <= edge_threshold <= 1.0:
            raise ConfigurationError("edge_threshold must lie in [0, 1]")
        if method not in ("modularity", "components"):
            raise ConfigurationError("method must be 'modularity' or 'components'")
        self.engine = resolve_engine(engine, judge)
        self.delta_t = delta_t
        self.edge_threshold = edge_threshold
        self.method = method

    @property
    def judge(self):
        """The raw judge behind the engine (legacy accessor)."""
        return self.engine.judge

    # -------------------------------------------------------------- the graph
    def build_user_graph(self, profiles: list[Profile]) -> nx.Graph:
        """Weighted user graph from the judge's pairwise probabilities.

        When two users have several profile pairs inside the window, the edge
        weight is the maximum probability over those pairs — one strong
        co-location is enough to tie the users together.
        """
        graph = nx.Graph()
        graph.add_nodes_from({profile.uid for profile in profiles})
        candidate_pairs: list[Pair] = []
        for i, left in enumerate(profiles):
            for right in profiles[i + 1 :]:
                if left.uid == right.uid:
                    continue
                if abs(left.ts - right.ts) >= self.delta_t:
                    continue
                candidate_pairs.append(Pair(left=left, right=right, co_label=None))
        if not candidate_pairs:
            return graph
        probabilities = np.asarray(self.engine.predict_proba(candidate_pairs), dtype=float)
        for pair, probability in zip(candidate_pairs, probabilities):
            if probability < self.edge_threshold:
                continue
            uid_a, uid_b = pair.left.uid, pair.right.uid
            if graph.has_edge(uid_a, uid_b):
                graph[uid_a][uid_b]["weight"] = max(graph[uid_a][uid_b]["weight"], float(probability))
            else:
                graph.add_edge(uid_a, uid_b, weight=float(probability))
        return graph

    # -------------------------------------------------------------- detection
    def detect(self, profiles: list[Profile]) -> CommunityResult:
        """Detect communities among the users behind ``profiles``."""
        graph = self.build_user_graph(profiles)
        if graph.number_of_nodes() == 0:
            return CommunityResult(communities=[], graph=graph, modularity=0.0)
        if self.method == "components" or graph.number_of_edges() == 0:
            communities = [set(c) for c in nx.connected_components(graph)]
        else:
            communities = [
                set(c)
                for c in nx.algorithms.community.greedy_modularity_communities(graph, weight="weight")
            ]
        communities.sort(key=lambda c: (-len(c), min(c)))
        modularity = 0.0
        if graph.number_of_edges() > 0 and len(communities) > 0:
            modularity = float(
                nx.algorithms.community.modularity(graph, communities, weight="weight")
            )
        return CommunityResult(communities=communities, graph=graph, modularity=modularity)

    def detect_from_matrix(self, profiles: list[Profile], matrix: np.ndarray) -> CommunityResult:
        """Detect communities from an externally computed probability matrix.

        ``matrix[i, j]`` is the co-location probability of ``profiles[i]`` and
        ``profiles[j]``; useful when the matrix is already available from the
        clustering case study.
        """
        if matrix.shape != (len(profiles), len(profiles)):
            raise ConfigurationError("matrix shape must be (len(profiles), len(profiles))")
        graph = nx.Graph()
        graph.add_nodes_from({p.uid for p in profiles})
        for i, left in enumerate(profiles):
            for j in range(i + 1, len(profiles)):
                right = profiles[j]
                if left.uid == right.uid:
                    continue
                probability = float(matrix[i, j])
                if probability < self.edge_threshold:
                    continue
                if graph.has_edge(left.uid, right.uid):
                    graph[left.uid][right.uid]["weight"] = max(
                        graph[left.uid][right.uid]["weight"], probability
                    )
                else:
                    graph.add_edge(left.uid, right.uid, weight=probability)
        communities = [set(c) for c in nx.connected_components(graph)]
        communities.sort(key=lambda c: (-len(c), min(c)))
        modularity = 0.0
        if graph.number_of_edges() > 0:
            modularity = float(nx.algorithms.community.modularity(graph, communities, weight="weight"))
        return CommunityResult(communities=communities, graph=graph, modularity=modularity)
