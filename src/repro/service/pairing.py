"""Candidate-pair enumeration over a sliding Δt window.

Definition 5 only pairs profiles whose timestamps differ by less than Δt, so
an online service never needs to compare a new profile against anything older
than Δt.  :class:`SlidingPairWindow` keeps exactly that window and, for each
new profile, yields the candidate pairs against every retained profile of a
different user — optionally pre-filtered by a spatial gate for geo-tagged
profiles (two users tweeting 30 km apart cannot be co-located at one POI).
"""

from __future__ import annotations

from collections import deque

from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError
from repro.geo.point import equirectangular_m


class SlidingPairWindow:
    """Maintains recent profiles and enumerates Δt-compatible candidate pairs.

    Parameters
    ----------
    delta_t:
        The co-location window in seconds (paper default: one hour).
    max_distance_m:
        Optional spatial gate: when both profiles are geo-tagged and further
        apart than this, the pair is skipped.  ``None`` disables the gate
        (non-geo-tagged profiles are never gated).
    max_profiles:
        Hard cap on retained profiles, protecting memory under bursty streams.
    """

    def __init__(
        self,
        delta_t: float = 3600.0,
        max_distance_m: float | None = None,
        max_profiles: int = 10_000,
    ):
        if delta_t <= 0:
            raise ConfigurationError("delta_t must be positive")
        if max_profiles < 1:
            raise ConfigurationError("max_profiles must be positive")
        self.delta_t = delta_t
        self.max_distance_m = max_distance_m
        self.max_profiles = max_profiles
        self._window: deque[Profile] = deque()

    def __len__(self) -> int:
        return len(self._window)

    @property
    def profiles(self) -> list[Profile]:
        """The profiles currently retained, oldest first."""
        return list(self._window)

    def _evict(self, now_ts: float) -> None:
        while self._window and now_ts - self._window[0].ts >= self.delta_t:
            self._window.popleft()
        # Keep room for the profile about to be appended.
        while len(self._window) >= self.max_profiles:
            self._window.popleft()

    def _spatially_compatible(self, left: Profile, right: Profile) -> bool:
        if self.max_distance_m is None:
            return True
        if left.lat is None or right.lat is None or left.lon is None or right.lon is None:
            return True
        distance = equirectangular_m(left.lat, left.lon, right.lat, right.lon)
        return distance <= self.max_distance_m

    def add(self, profile: Profile) -> list[Pair]:
        """Add a profile and return its candidate pairs against the window.

        Pairs follow Definition 5: different users, time gap strictly below
        Δt.  The new profile is retained for future candidates.
        """
        self._evict(profile.ts)
        candidates: list[Pair] = []
        for other in self._window:
            if other.uid == profile.uid:
                continue
            if abs(profile.ts - other.ts) >= self.delta_t:
                continue
            if not self._spatially_compatible(profile, other):
                continue
            candidates.append(Pair(left=other, right=profile, co_label=None))
        self._window.append(profile)
        return candidates

    def clear(self) -> None:
        """Drop every retained profile."""
        self._window.clear()
