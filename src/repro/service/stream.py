"""Incremental profile construction from a live tweet stream.

The offline :class:`repro.data.profiles.ProfileBuilder` needs the whole
timeline up front; an online service sees tweets one at a time.
:class:`OnlineProfileBuilder` keeps a bounded per-user visit history and
builds the profile for each incoming tweet from the state accumulated so far,
mirroring Definition 4: the visit history contains only visits *before* the
recent tweet.
"""

from __future__ import annotations

from collections import deque

from repro.data.records import Profile, Tweet, Visit
from repro.errors import DataGenerationError
from repro.geo.poi import POIRegistry


class OnlineProfileBuilder:
    """Builds profiles from tweets arriving in timestamp order.

    Parameters
    ----------
    registry:
        The POI set ``P``; geo-tagged tweets inside a POI polygon produce
        labelled profiles (their ``pid`` is set).
    max_history:
        Cap on the per-user visit history carried by emitted profiles.
    enforce_order:
        When True (default), a tweet older than the user's latest seen tweet
        raises :class:`DataGenerationError` — out-of-order delivery would
        silently corrupt visit histories.
    """

    def __init__(
        self,
        registry: POIRegistry,
        max_history: int = 64,
        enforce_order: bool = True,
    ):
        if max_history < 0:
            raise DataGenerationError("max_history must be non-negative")
        self.registry = registry
        self.max_history = max_history
        self.enforce_order = enforce_order
        self._histories: dict[int, deque[Visit]] = {}
        self._last_ts: dict[int, float] = {}
        self._profiles_built = 0

    # ------------------------------------------------------------------ state
    @property
    def num_users(self) -> int:
        """Number of distinct users seen so far."""
        return len(self._last_ts)

    @property
    def profiles_built(self) -> int:
        """Number of profiles emitted so far."""
        return self._profiles_built

    def history(self, uid: int) -> tuple[Visit, ...]:
        """The visit history currently held for a user."""
        return tuple(self._histories.get(uid, ()))

    # ---------------------------------------------------------------- consume
    def consume(self, tweet: Tweet) -> Profile:
        """Ingest one tweet and return the profile it defines.

        The profile's visit history reflects only tweets consumed *before*
        this one; if the tweet is geo-tagged it is added to the user's history
        afterwards, ready for the next profile.
        """
        last = self._last_ts.get(tweet.uid)
        if self.enforce_order and last is not None and tweet.ts < last:
            raise DataGenerationError(
                f"tweet for user {tweet.uid} at ts={tweet.ts} arrived after ts={last}"
            )
        self._last_ts[tweet.uid] = max(tweet.ts, last) if last is not None else tweet.ts

        history = tuple(self._histories.get(tweet.uid, ()))
        pid = None
        if tweet.is_geotagged:
            poi = self.registry.locate(tweet.lat, tweet.lon)  # type: ignore[arg-type]
            if poi is not None:
                pid = poi.pid
        profile = Profile(uid=tweet.uid, tweet=tweet, visit_history=history, pid=pid)
        self._profiles_built += 1

        if tweet.is_geotagged:
            bucket = self._histories.setdefault(tweet.uid, deque(maxlen=self.max_history or None))
            bucket.append(Visit(ts=tweet.ts, lat=tweet.lat, lon=tweet.lon))  # type: ignore[arg-type]
        return profile

    def consume_many(self, tweets: list[Tweet]) -> list[Profile]:
        """Ingest tweets in order and return their profiles."""
        return [self.consume(tweet) for tweet in sorted(tweets, key=lambda t: t.ts)]
