"""Incremental profile construction and scoring from a live tweet stream.

The offline :class:`repro.data.profiles.ProfileBuilder` needs the whole
timeline up front; an online service sees tweets one at a time.
:class:`OnlineProfileBuilder` keeps a bounded per-user visit history and
builds the profile for each incoming tweet from the state accumulated so far,
mirroring Definition 4: the visit history contains only visits *before* the
recent tweet.

:class:`StreamScorer` composes the builder with a
:class:`repro.service.pairing.SlidingPairWindow` and a
:class:`repro.api.ColocationEngine`: tweets in, scored Δt-compatible candidate
pairs out.  It is the common substrate of the streaming applications (friends
notification builds on it directly).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.data.records import Pair, Profile, Tweet, Visit
from repro.errors import DataGenerationError
from repro.features.history import HistoryDeltaTracker
from repro.geo.poi import POIRegistry
from repro.service.pairing import SlidingPairWindow


class OnlineProfileBuilder:
    """Builds profiles from tweets arriving in timestamp order.

    Parameters
    ----------
    registry:
        The POI set ``P``; geo-tagged tweets inside a POI polygon produce
        labelled profiles (their ``pid`` is set).
    max_history:
        Cap on the per-user visit history carried by emitted profiles.
        ``0`` keeps no visits at all (every profile has an empty history);
        ``None`` keeps an unbounded history.
    enforce_order:
        When True (default), a tweet older than the user's latest seen tweet
        raises :class:`DataGenerationError` — out-of-order delivery would
        silently corrupt visit histories.
    """

    def __init__(
        self,
        registry: POIRegistry,
        max_history: int | None = 64,
        enforce_order: bool = True,
    ):
        if max_history is not None and max_history < 0:
            raise DataGenerationError("max_history must be non-negative")
        self.registry = registry
        self.max_history = max_history
        self.enforce_order = enforce_order
        self._histories: dict[int, deque[Visit]] = {}
        self._last_ts: dict[int, float] = {}
        self._revisions: dict[int, int] = {}
        self._profiles_built = 0

    # ------------------------------------------------------------------ state
    @property
    def num_users(self) -> int:
        """Number of distinct users seen so far."""
        return len(self._last_ts)

    @property
    def profiles_built(self) -> int:
        """Number of profiles emitted so far."""
        return self._profiles_built

    def history(self, uid: int) -> tuple[Visit, ...]:
        """The visit history currently held for a user."""
        return tuple(self._histories.get(uid, ()))

    def revision(self, uid: int) -> int:
        """The history revision the user's *next* profile will carry.

        The revision counts the visits ingested for the user so far — the same
        quantity the offline :class:`repro.data.profiles.ProfileBuilder` stamps
        (``len(visits_before)``), so a profile built either way for the same
        history state gets the same cache identity.  It advances on every
        geo-tagged tweet even under a capped history whose *length* stays put,
        which is exactly what makes the key collision impossible.
        """
        return self._revisions.get(uid, 0)

    # ---------------------------------------------------------------- consume
    def consume(self, tweet: Tweet) -> Profile:
        """Ingest one tweet and return the profile it defines.

        The profile's visit history reflects only tweets consumed *before*
        this one; if the tweet is geo-tagged it is added to the user's history
        afterwards, ready for the next profile.
        """
        last = self._last_ts.get(tweet.uid)
        if self.enforce_order and last is not None and tweet.ts < last:
            raise DataGenerationError(
                f"tweet for user {tweet.uid} at ts={tweet.ts} arrived after ts={last}"
            )
        self._last_ts[tweet.uid] = max(tweet.ts, last) if last is not None else tweet.ts

        history = tuple(self._histories.get(tweet.uid, ()))
        pid = None
        if tweet.is_geotagged:
            poi = self.registry.locate(tweet.lat, tweet.lon)  # type: ignore[arg-type]
            if poi is not None:
                pid = poi.pid
        revision = self._revisions.get(tweet.uid, 0)
        profile = Profile(
            uid=tweet.uid, tweet=tweet, visit_history=history, pid=pid, revision=revision
        )
        self._profiles_built += 1

        if tweet.is_geotagged:
            # maxlen=0 is a valid deque bound (keep nothing); only None means
            # unbounded.  `self.max_history or None` would conflate the two.
            bucket = self._histories.setdefault(tweet.uid, deque(maxlen=self.max_history))
            bucket.append(Visit(ts=tweet.ts, lat=tweet.lat, lon=tweet.lon))  # type: ignore[arg-type]
            self._revisions[tweet.uid] = revision + 1
        return profile

    def consume_many(self, tweets: list[Tweet]) -> list[Profile]:
        """Ingest tweets in order and return their profiles."""
        return [self.consume(tweet) for tweet in sorted(tweets, key=lambda t: t.ts)]


@dataclass(frozen=True)
class ScoredPair:
    """One candidate pair with the engine's co-location probability."""

    pair: Pair
    probability: float


def _history_featurizer_from(judge):
    """The seedable HisRect featurizer behind a judge, or ``None``.

    Seedable means: the featurizer accepts precomputed history rows
    (``warm_history_row``), actually uses history features, and its history
    featurizer speaks the delta contract (``featurize_delta``).
    """
    featurizer = getattr(judge, "featurizer", None)
    if featurizer is None or not hasattr(featurizer, "warm_history_row"):
        return None
    if not getattr(getattr(featurizer, "config", None), "use_history", False):
        return None
    history = getattr(featurizer, "history_featurizer", None)
    if history is None or not hasattr(history, "featurize_delta"):
        return None
    return featurizer


def _seedable_featurizers(engine):
    """``(reference_featurizer, profile -> featurizer)`` for a serving stack.

    Walks batcher fronts down to the engine, then resolves which featurizer
    instance will featurize a given profile: the single engine's judge, or —
    for a :class:`repro.cluster.ShardedEngine` with replicated judges — the
    owner shard's replica (replicas deep-copy the fitted parameters, so rows
    computed against the reference are bit-identical on every replica).
    Returns ``None`` when the stack cannot be seeded from this process
    (a :class:`repro.cluster.WorkerPool`: its featurizers live in worker
    processes, where the engine-side revisioned cache already does the work).
    """
    node = engine
    for _ in range(8):  # bounded walk through wrapper fronts (MicroBatcher)
        if hasattr(node, "num_workers"):
            return None
        inner = getattr(node, "engine", None)
        if inner is None or inner is node:
            break
        node = inner
    shards = getattr(node, "shards", None)
    if shards is not None and hasattr(node, "shard_of"):
        featurizers = [_history_featurizer_from(shard.judge) for shard in shards]
        if any(featurizer is None for featurizer in featurizers):
            return None
        return featurizers[0], lambda profile: featurizers[node.shard_of(profile)]
    featurizer = _history_featurizer_from(getattr(node, "judge", node))
    if featurizer is None:
        return None
    return featurizer, lambda profile: featurizer


class StreamScorer:
    """Tweets in, engine-scored candidate pairs out.

    Parameters
    ----------
    engine:
        A :class:`repro.api.ColocationEngine`, a
        :class:`repro.cluster.ShardedEngine` (the sharded path: each user's
        features live on their owner shard) or a raw fitted judge, which is
        wrapped.  The engine's feature cache is what keeps a profile from
        being re-featurized for every pair it participates in.
    registry:
        POI set for labelling geo-tagged tweets; defaults to the engine's.
    delta_t / max_distance_m / max_history / enforce_order:
        Forwarded to the sliding window and the profile builder.
        ``enforce_order`` keeps the builder's strict default; pass ``False``
        for tolerant out-of-order ingestion.
    pair_filter:
        Optional predicate applied to candidate pairs *before* they reach the
        engine (e.g. "are these two users friends"), keeping the judged batch
        small.
    incremental:
        Maintain a :class:`repro.features.HistoryDeltaTracker` mirroring the
        builder's per-user histories and seed the featurizer's history-row
        cache with delta-updated Eq. (1)–(2) rows before each profile is
        scored (default).  The delta path reuses the batch kernels, so seeded
        rows are bit-identical to scratch featurization — scores do not
        change, only the per-ingest featurization cost (O(1 visit) instead of
        O(history)).  Stacks whose featurizers this process cannot reach
        (a :class:`repro.cluster.WorkerPool`) fall back to scratch
        featurization automatically; :attr:`incremental` reports whether
        seeding is actually active.
    """

    def __init__(
        self,
        engine,
        registry: POIRegistry | None = None,
        delta_t: float = 3600.0,
        max_history: int | None = 64,
        max_distance_m: float | None = None,
        pair_filter: Callable[[Pair], bool] | None = None,
        enforce_order: bool = True,
        incremental: bool = True,
    ):
        from repro.service._engine import resolve_engine

        self.engine = resolve_engine(engine)
        self.builder = OnlineProfileBuilder(
            registry if registry is not None else self.engine.registry,
            max_history=max_history,
            enforce_order=enforce_order,
        )
        self.window = SlidingPairWindow(delta_t=delta_t, max_distance_m=max_distance_m)
        self.pair_filter = pair_filter
        self._tracker: HistoryDeltaTracker | None = None
        self._featurizer_of = None
        if incremental:
            resolved = _seedable_featurizers(self.engine)
            if resolved is not None:
                reference, self._featurizer_of = resolved
                self._tracker = HistoryDeltaTracker(
                    reference.history_featurizer, max_history=max_history
                )

    @property
    def incremental(self) -> bool:
        """Whether delta-featurization seeding is active on this scorer."""
        return self._tracker is not None

    def _consume(self, tweet: Tweet) -> Profile:
        """Builder consume plus (when active) incremental history seeding.

        The seeded row is computed from the tracker's pre-append state — the
        same history the emitted profile carries — and warmed into the
        featurizer that will featurize this profile; the visit is appended to
        the tracker afterwards, mirroring the builder's post-emission append.
        """
        profile = self.builder.consume(tweet)
        if self._tracker is not None:
            featurizer = self._featurizer_of(profile)
            featurizer.warm_history_row(profile, self._tracker.row_for(profile))
            if tweet.is_geotagged:
                self._tracker.append(
                    profile.uid, Visit(ts=tweet.ts, lat=tweet.lat, lon=tweet.lon)  # type: ignore[arg-type]
                )
        return profile

    def process(self, tweet: Tweet) -> list[ScoredPair]:
        """Consume one tweet; return its scored Δt-compatible candidate pairs."""
        profile = self._consume(tweet)
        candidates = self.window.add(profile)
        if self.pair_filter is not None:
            candidates = [pair for pair in candidates if self.pair_filter(pair)]
        if not candidates:
            return []
        probabilities = self.engine.predict_proba(candidates)
        return [
            ScoredPair(pair=pair, probability=float(probability))
            for pair, probability in zip(candidates, probabilities)
        ]

    def process_many(self, tweets: list[Tweet]) -> list[ScoredPair]:
        """Consume tweets in timestamp order and collect every scored pair.

        Tweets sharing a timestamp are consumed one by one (profile state is
        sequential) but their candidate pairs score as **one** engine call —
        one batched gather instead of a call per tweet.  Coalescing changes
        the BLAS batch shape, so like a :class:`repro.cluster.MicroBatcher`
        flush the probabilities may drift from per-tweet :meth:`process`
        calls by last-mantissa-bit noise only (``<= 1e-12``); feature rows
        and cache identity are unaffected.
        """
        ordered = sorted(tweets, key=lambda t: t.ts)
        scored: list[ScoredPair] = []
        index = 0
        while index < len(ordered):
            stop = index
            while stop < len(ordered) and ordered[stop].ts == ordered[index].ts:
                stop += 1
            groups: list[list[Pair]] = []
            for tweet in ordered[index:stop]:
                candidates = self.window.add(self._consume(tweet))
                if self.pair_filter is not None:
                    candidates = [pair for pair in candidates if self.pair_filter(pair)]
                groups.append(candidates)
            index = stop
            flat = [pair for group in groups for pair in group]
            if not flat:
                continue
            probabilities = self.engine.predict_proba(flat)
            offset = 0
            for group in groups:
                for pair in group:
                    scored.append(
                        ScoredPair(pair=pair, probability=float(probabilities[offset]))
                    )
                    offset += 1
        return scored
