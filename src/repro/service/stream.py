"""Incremental profile construction and scoring from a live tweet stream.

The offline :class:`repro.data.profiles.ProfileBuilder` needs the whole
timeline up front; an online service sees tweets one at a time.
:class:`OnlineProfileBuilder` keeps a bounded per-user visit history and
builds the profile for each incoming tweet from the state accumulated so far,
mirroring Definition 4: the visit history contains only visits *before* the
recent tweet.

:class:`StreamScorer` composes the builder with a
:class:`repro.service.pairing.SlidingPairWindow` and a
:class:`repro.api.ColocationEngine`: tweets in, scored Δt-compatible candidate
pairs out.  It is the common substrate of the streaming applications (friends
notification builds on it directly).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.data.records import Pair, Profile, Tweet, Visit
from repro.errors import DataGenerationError
from repro.geo.poi import POIRegistry
from repro.service.pairing import SlidingPairWindow


class OnlineProfileBuilder:
    """Builds profiles from tweets arriving in timestamp order.

    Parameters
    ----------
    registry:
        The POI set ``P``; geo-tagged tweets inside a POI polygon produce
        labelled profiles (their ``pid`` is set).
    max_history:
        Cap on the per-user visit history carried by emitted profiles.
        ``0`` keeps no visits at all (every profile has an empty history);
        ``None`` keeps an unbounded history.
    enforce_order:
        When True (default), a tweet older than the user's latest seen tweet
        raises :class:`DataGenerationError` — out-of-order delivery would
        silently corrupt visit histories.
    """

    def __init__(
        self,
        registry: POIRegistry,
        max_history: int | None = 64,
        enforce_order: bool = True,
    ):
        if max_history is not None and max_history < 0:
            raise DataGenerationError("max_history must be non-negative")
        self.registry = registry
        self.max_history = max_history
        self.enforce_order = enforce_order
        self._histories: dict[int, deque[Visit]] = {}
        self._last_ts: dict[int, float] = {}
        self._profiles_built = 0

    # ------------------------------------------------------------------ state
    @property
    def num_users(self) -> int:
        """Number of distinct users seen so far."""
        return len(self._last_ts)

    @property
    def profiles_built(self) -> int:
        """Number of profiles emitted so far."""
        return self._profiles_built

    def history(self, uid: int) -> tuple[Visit, ...]:
        """The visit history currently held for a user."""
        return tuple(self._histories.get(uid, ()))

    # ---------------------------------------------------------------- consume
    def consume(self, tweet: Tweet) -> Profile:
        """Ingest one tweet and return the profile it defines.

        The profile's visit history reflects only tweets consumed *before*
        this one; if the tweet is geo-tagged it is added to the user's history
        afterwards, ready for the next profile.
        """
        last = self._last_ts.get(tweet.uid)
        if self.enforce_order and last is not None and tweet.ts < last:
            raise DataGenerationError(
                f"tweet for user {tweet.uid} at ts={tweet.ts} arrived after ts={last}"
            )
        self._last_ts[tweet.uid] = max(tweet.ts, last) if last is not None else tweet.ts

        history = tuple(self._histories.get(tweet.uid, ()))
        pid = None
        if tweet.is_geotagged:
            poi = self.registry.locate(tweet.lat, tweet.lon)  # type: ignore[arg-type]
            if poi is not None:
                pid = poi.pid
        profile = Profile(uid=tweet.uid, tweet=tweet, visit_history=history, pid=pid)
        self._profiles_built += 1

        if tweet.is_geotagged:
            # maxlen=0 is a valid deque bound (keep nothing); only None means
            # unbounded.  `self.max_history or None` would conflate the two.
            bucket = self._histories.setdefault(tweet.uid, deque(maxlen=self.max_history))
            bucket.append(Visit(ts=tweet.ts, lat=tweet.lat, lon=tweet.lon))  # type: ignore[arg-type]
        return profile

    def consume_many(self, tweets: list[Tweet]) -> list[Profile]:
        """Ingest tweets in order and return their profiles."""
        return [self.consume(tweet) for tweet in sorted(tweets, key=lambda t: t.ts)]


@dataclass(frozen=True)
class ScoredPair:
    """One candidate pair with the engine's co-location probability."""

    pair: Pair
    probability: float


class StreamScorer:
    """Tweets in, engine-scored candidate pairs out.

    Parameters
    ----------
    engine:
        A :class:`repro.api.ColocationEngine`, a
        :class:`repro.cluster.ShardedEngine` (the sharded path: each user's
        features live on their owner shard) or a raw fitted judge, which is
        wrapped.  The engine's feature cache is what keeps a profile from
        being re-featurized for every pair it participates in.
    registry:
        POI set for labelling geo-tagged tweets; defaults to the engine's.
    delta_t / max_distance_m / max_history / enforce_order:
        Forwarded to the sliding window and the profile builder.
        ``enforce_order`` keeps the builder's strict default; pass ``False``
        for tolerant out-of-order ingestion.
    pair_filter:
        Optional predicate applied to candidate pairs *before* they reach the
        engine (e.g. "are these two users friends"), keeping the judged batch
        small.
    """

    def __init__(
        self,
        engine,
        registry: POIRegistry | None = None,
        delta_t: float = 3600.0,
        max_history: int | None = 64,
        max_distance_m: float | None = None,
        pair_filter: Callable[[Pair], bool] | None = None,
        enforce_order: bool = True,
    ):
        from repro.service._engine import resolve_engine

        self.engine = resolve_engine(engine)
        self.builder = OnlineProfileBuilder(
            registry if registry is not None else self.engine.registry,
            max_history=max_history,
            enforce_order=enforce_order,
        )
        self.window = SlidingPairWindow(delta_t=delta_t, max_distance_m=max_distance_m)
        self.pair_filter = pair_filter

    def process(self, tweet: Tweet) -> list[ScoredPair]:
        """Consume one tweet; return its scored Δt-compatible candidate pairs."""
        profile = self.builder.consume(tweet)
        candidates = self.window.add(profile)
        if self.pair_filter is not None:
            candidates = [pair for pair in candidates if self.pair_filter(pair)]
        if not candidates:
            return []
        probabilities = self.engine.predict_proba(candidates)
        return [
            ScoredPair(pair=pair, probability=float(probability))
            for pair, probability in zip(candidates, probabilities)
        ]

    def process_many(self, tweets: list[Tweet]) -> list[ScoredPair]:
        """Consume tweets in timestamp order and collect every scored pair."""
        scored: list[ScoredPair] = []
        for tweet in sorted(tweets, key=lambda t: t.ts):
            scored.extend(self.process(tweet))
        return scored
