"""Shared engine plumbing of the service layer.

Every application takes a :class:`repro.api.ColocationEngine` as its first
argument; raw fitted judges are still accepted (and wrapped on the fly) so
pre-engine call sites keep working, and the legacy ``judge=`` keyword remains
available behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.api import ColocationEngine
from repro.errors import ConfigurationError


def resolve_engine(engine, judge=None) -> ColocationEngine:
    """Normalise a service's ``engine``/legacy ``judge`` arguments to an engine."""
    if judge is not None:
        if engine is not None:
            raise ConfigurationError("pass either engine or judge, not both")
        warnings.warn(
            "the judge= keyword is deprecated; pass a ColocationEngine "
            "(or a fitted judge) as the first argument",
            DeprecationWarning,
            stacklevel=3,
        )
        engine = judge
    if engine is None:
        raise ConfigurationError("an engine (or fitted judge) is required")
    return ColocationEngine.ensure(engine)
