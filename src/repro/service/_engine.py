"""Shared engine plumbing of the service layer.

Every application takes a :class:`repro.api.ColocationEngine` — or a
:class:`repro.cluster.ShardedEngine`, which exposes the same serving surface —
as its first argument; raw fitted judges are still accepted (and wrapped on
the fly) so pre-engine call sites keep working, and the legacy ``judge=``
keyword remains available behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.api import ColocationEngine
from repro.errors import ConfigurationError


def resolve_engine(engine, judge=None):
    """Normalise a service's ``engine``/legacy ``judge`` arguments to an engine.

    A :class:`repro.cluster.ShardedEngine`, :class:`repro.cluster.MicroBatcher`
    or :class:`repro.cluster.WorkerPool` passes through unchanged — all three
    speak the full engine surface (``predict_proba`` /
    ``probability_matrix`` / ``warm`` / ``serve`` / ``cache_info`` /
    ``registry``) — so every service gains the sharded, micro-batched and
    process-worker paths by construction.
    """
    if judge is not None:
        if engine is not None:
            raise ConfigurationError("pass either engine or judge, not both")
        warnings.warn(
            "the judge= keyword is deprecated; pass a ColocationEngine "
            "(or a fitted judge) as the first argument",
            DeprecationWarning,
            stacklevel=3,
        )
        engine = judge
    if engine is None:
        raise ConfigurationError("an engine (or fitted judge) is required")
    from repro.cluster.batcher import MicroBatcher
    from repro.cluster.gateway import WorkerPool
    from repro.cluster.sharded import ShardedEngine

    if isinstance(engine, (ShardedEngine, MicroBatcher, WorkerPool)):
        return engine
    return ColocationEngine.ensure(engine)
