"""Local people recommendation (paper Section 1's second motivating service).

"Many social network platforms also offer local people recommendation, which
can recommend users who are close to and share the same interest with a user
in need."  Given a fitted co-location judge, the recommender scores every
candidate user by blending (a) the probability that the candidate is co-located
with the query user right now and (b) the content similarity between their
recent tweets (the "shared interest" signal), then returns the top-k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError
from repro.eval.ranking import ranking_report
from repro.service._engine import resolve_engine
from repro.text.ngrams import TfidfVectorizer, document_similarity


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One recommended user for a query profile."""

    #: The recommended user's id.
    uid: int
    #: Blended ranking score (higher is better).
    score: float
    #: Co-location probability from the judge.
    colocation_probability: float
    #: Tweet-content cosine similarity (the shared-interest proxy).
    interest_similarity: float
    #: The candidate profile that was scored.
    profile: Profile


class LocalPeopleRecommender:
    """Recommend nearby, like-minded users with a co-location engine.

    Parameters
    ----------
    engine:
        A :class:`repro.api.ColocationEngine`, or any fitted judge exposing
        ``predict_proba(pairs)`` (wrapped into an engine automatically).
    delta_t:
        Only candidates whose recent tweet falls within ``delta_t`` seconds of
        the query profile's tweet are considered (the problem's pairing rule).
    colocation_weight:
        Weight of the co-location probability in the blended score; the
        remaining weight goes to interest similarity.
    vectorizer:
        Optional pre-fitted :class:`TfidfVectorizer` used for the interest
        signal.  When omitted, one is fitted lazily on the candidate contents
        of each request.
    judge:
        Deprecated alias for ``engine`` (kept for pre-engine call sites).
    """

    def __init__(
        self,
        engine=None,
        delta_t: float = 3600.0,
        colocation_weight: float = 0.7,
        vectorizer: TfidfVectorizer | None = None,
        *,
        judge=None,
    ):
        if delta_t <= 0:
            raise ConfigurationError("delta_t must be positive")
        if not 0.0 <= colocation_weight <= 1.0:
            raise ConfigurationError("colocation_weight must lie in [0, 1]")
        self.engine = resolve_engine(engine, judge)
        self.delta_t = delta_t
        self.colocation_weight = colocation_weight
        self.vectorizer = vectorizer

    @property
    def judge(self):
        """The raw judge behind the engine (legacy accessor)."""
        return self.engine.judge

    # -------------------------------------------------------------- internals
    def _eligible(self, query: Profile, candidates: list[Profile]) -> list[Profile]:
        return [
            candidate
            for candidate in candidates
            if candidate.uid != query.uid and abs(candidate.ts - query.ts) < self.delta_t
        ]

    def _interest_similarities(self, query: Profile, candidates: list[Profile]) -> np.ndarray:
        vectorizer = self.vectorizer
        if vectorizer is None:
            corpus = [query.content] + [c.content for c in candidates]
            try:
                vectorizer = TfidfVectorizer().fit(corpus)
            except Exception:
                # Degenerate corpora (all empty / all stop words) carry no
                # interest signal; fall back to zeros.
                return np.zeros(len(candidates))
        query_vector = vectorizer.transform_one(query.content)
        return np.array(
            [
                document_similarity(query_vector, vectorizer.transform_one(candidate.content))
                for candidate in candidates
            ]
        )

    # ------------------------------------------------------------------- API
    def score_candidates(self, query: Profile, candidates: list[Profile]) -> list[Recommendation]:
        """Score every eligible candidate for a query profile (unsorted)."""
        eligible = self._eligible(query, candidates)
        if not eligible:
            return []
        pairs = [Pair(left=query, right=candidate, co_label=None) for candidate in eligible]
        probabilities = np.asarray(self.engine.predict_proba(pairs), dtype=float)
        interests = self._interest_similarities(query, eligible)
        weight = self.colocation_weight
        recommendations = []
        for candidate, probability, interest in zip(eligible, probabilities, interests):
            score = weight * float(probability) + (1.0 - weight) * float(interest)
            recommendations.append(
                Recommendation(
                    uid=candidate.uid,
                    score=score,
                    colocation_probability=float(probability),
                    interest_similarity=float(interest),
                    profile=candidate,
                )
            )
        return recommendations

    def recommend(
        self,
        query: Profile,
        candidates: list[Profile],
        top_k: int = 10,
        min_score: float = 0.0,
    ) -> list[Recommendation]:
        """Top-k recommended users for ``query`` among ``candidates``."""
        if top_k < 1:
            raise ConfigurationError("top_k must be at least 1")
        scored = [r for r in self.score_candidates(query, candidates) if r.score >= min_score]
        scored.sort(key=lambda r: (-r.score, r.uid))
        return scored[:top_k]

    def recommend_for_all(
        self,
        profiles: list[Profile],
        top_k: int = 10,
    ) -> dict[int, list[Recommendation]]:
        """Recommendations for every profile in a batch, keyed by user id.

        When a user appears with several profiles, the most recent one is used
        as their query profile.
        """
        latest: dict[int, Profile] = {}
        for profile in profiles:
            current = latest.get(profile.uid)
            if current is None or profile.ts > current.ts:
                latest[profile.uid] = profile
        results: dict[int, list[Recommendation]] = {}
        for uid, query in latest.items():
            candidates = [p for p in profiles if p.uid != uid]
            results[uid] = self.recommend(query, candidates, top_k=top_k)
        return results


def evaluate_recommender(
    recommender: LocalPeopleRecommender,
    profiles: list[Profile],
    top_k: int = 10,
    ks: tuple[int, ...] = (1, 5, 10),
) -> dict[str, float]:
    """Rank-quality report of a recommender against ground-truth co-location.

    For every labelled profile whose POI is shared by at least one other
    labelled profile inside the Δt window, the relevant set is "the users
    actually at the same POI at the same time" and the ranking is the
    recommender's output.  Returns the :func:`repro.eval.ranking.ranking_report`
    dictionary (MRR plus precision/recall/hit-rate at each ``k``), or an empty
    dictionary when no profile has a relevant co-located partner.
    """
    labelled = [p for p in profiles if p.is_labeled]
    rankings: list[list[int]] = []
    relevants: list[set[int]] = []
    for query in labelled:
        relevant = {
            other.uid
            for other in labelled
            if other.uid != query.uid
            and other.pid == query.pid
            and abs(other.ts - query.ts) < recommender.delta_t
        }
        if not relevant:
            continue
        candidates = [p for p in profiles if p.uid != query.uid]
        ranked = [r.uid for r in recommender.recommend(query, candidates, top_k=top_k)]
        rankings.append(ranked)
        relevants.append(relevant)
    if not rankings:
        return {}
    return ranking_report(rankings, relevants, ks=ks)
