"""The friends-notification application (paper Section 1's motivating service).

"Friends notification ... notifies a user that one of his/her friends is also
present at the same POI in the same time."  Given a
:class:`repro.api.ColocationEngine` and a friendship graph,
:class:`FriendsNotificationService` consumes a tweet stream and emits a
:class:`Notification` whenever a pair of friends is judged co-located with
probability above a threshold.  Candidate enumeration and scoring ride on
:class:`repro.service.stream.StreamScorer`, so friend pairs are filtered
before the engine is invoked and profile features are cached across pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.records import Pair, Profile, Tweet
from repro.errors import ConfigurationError
from repro.geo.poi import POIRegistry
from repro.service._engine import resolve_engine
from repro.service.stream import StreamScorer


@dataclass(frozen=True)
class Notification:
    """One co-location alert for a pair of friends."""

    #: The two users judged co-located (order follows the friendship pair).
    uid_a: int
    uid_b: int
    #: Co-location probability produced by the judge.
    probability: float
    #: Timestamp of the newer of the two profiles.
    ts: float
    #: The candidate pair the judge scored (kept for downstream inspection).
    pair: Pair


class FriendsNotificationService:
    """Stream tweets in, get friend co-location notifications out.

    Parameters
    ----------
    engine:
        A :class:`repro.api.ColocationEngine`, or any fitted judge exposing
        ``predict_proba(pairs)`` (wrapped into an engine automatically).
    registry:
        The POI set used to label geo-tagged tweets and build histories;
        defaults to the engine's registry.
    friendships:
        Iterable of ``(uid, uid)`` friendship edges (undirected).
    delta_t:
        Co-location window in seconds.
    threshold:
        Minimum co-location probability that triggers a notification.
    max_distance_m:
        Optional spatial gate passed to the sliding window.
    judge:
        Deprecated alias for ``engine`` (kept for pre-engine call sites).
    """

    def __init__(
        self,
        engine=None,
        registry: POIRegistry | None = None,
        friendships=(),
        delta_t: float = 3600.0,
        threshold: float = 0.5,
        max_history: int = 64,
        max_distance_m: float | None = None,
        *,
        judge=None,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must lie in [0, 1]")
        self.engine = resolve_engine(engine, judge)
        self.threshold = threshold
        self._friends: set[frozenset[int]] = set()
        for a, b in friendships:
            self.add_friendship(a, b)
        self.scorer = StreamScorer(
            self.engine,
            registry=registry,
            delta_t=delta_t,
            max_history=max_history,
            max_distance_m=max_distance_m,
            pair_filter=lambda pair: self.are_friends(pair.left.uid, pair.right.uid),
        )
        self._notifications_sent = 0

    # ------------------------------------------------------------ compat views
    @property
    def judge(self):
        """The raw judge behind the engine (legacy accessor)."""
        return self.engine.judge

    @property
    def builder(self):
        """The online profile builder feeding the sliding window."""
        return self.scorer.builder

    @property
    def window(self):
        """The sliding Δt window of recent profiles."""
        return self.scorer.window

    # ------------------------------------------------------------ friendships
    def add_friendship(self, uid_a: int, uid_b: int) -> None:
        """Register an undirected friendship edge."""
        if uid_a == uid_b:
            raise ConfigurationError("a user cannot befriend themselves")
        self._friends.add(frozenset((uid_a, uid_b)))

    def are_friends(self, uid_a: int, uid_b: int) -> bool:
        """True when the two users are friends."""
        return frozenset((uid_a, uid_b)) in self._friends

    @property
    def num_friendships(self) -> int:
        """Number of registered friendship edges."""
        return len(self._friends)

    @property
    def notifications_sent(self) -> int:
        """Number of notifications emitted so far."""
        return self._notifications_sent

    # ----------------------------------------------------------------- stream
    def process(self, tweet: Tweet) -> list[Notification]:
        """Consume one tweet and return any triggered notifications."""
        notifications: list[Notification] = []
        for scored in self.scorer.process(tweet):
            if scored.probability < self.threshold:
                continue
            pair = scored.pair
            notifications.append(
                Notification(
                    uid_a=pair.left.uid,
                    uid_b=pair.right.uid,
                    probability=scored.probability,
                    ts=max(pair.left.ts, pair.right.ts),
                    pair=pair,
                )
            )
        self._notifications_sent += len(notifications)
        return notifications

    def process_many(self, tweets: list[Tweet]) -> list[Notification]:
        """Consume tweets in timestamp order and collect every notification."""
        notifications: list[Notification] = []
        for tweet in sorted(tweets, key=lambda t: t.ts):
            notifications.extend(self.process(tweet))
        return notifications

    def co_located_profiles(self, profiles: list[Profile]) -> list[tuple[Profile, Profile, float]]:
        """Score every friend pair among a batch of already-built profiles.

        A convenience for batch (non-streaming) use: returns
        ``(profile_a, profile_b, probability)`` for each friend pair within
        Δt whose probability clears the threshold.
        """
        pairs: list[Pair] = []
        for i, left in enumerate(profiles):
            for right in profiles[i + 1 :]:
                if left.uid == right.uid or not self.are_friends(left.uid, right.uid):
                    continue
                if abs(left.ts - right.ts) >= self.scorer.window.delta_t:
                    continue
                pairs.append(Pair(left=left, right=right, co_label=None))
        if not pairs:
            return []
        probabilities = self.engine.predict_proba(pairs)
        return [
            (pair.left, pair.right, float(probability))
            for pair, probability in zip(pairs, probabilities)
            if probability >= self.threshold
        ]
