"""Structural protocols implemented by every co-location judge.

These are :class:`typing.Protocol` classes, so conformance is structural: the
HisRect judge, the One-phase model, Comp2Loc, the social judge, both
location-inference baselines and the pipeline itself all satisfy
:class:`CoLocationJudge` without inheriting from anything.  The protocols are
``runtime_checkable`` so ``isinstance(judge, CoLocationJudge)`` works as a
capability test in the serving layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.data.dataset import ColocationDataset
    from repro.data.records import Pair, Profile

#: The cache key identifying one profile's frozen HisRect feature vector:
#: ``(uid, ts, content, len(visit_history), revision)``.  ``revision`` is the
#: builder-stamped history revision (``-1`` for unstamped profiles).
ProfileKey = tuple[int, float, str, int, int]

#: Revision component of keys built from profiles without a stamped revision.
UNREVISIONED = -1

#: Profiles featurized per featurizer invocation (bounds autograd graph size).
FEATURIZE_CHUNK = 64


def featurizer_dim(featurizer, default: int = 0) -> int:
    """The feature dimensionality a featurizer-like object reports.

    Every featurizer exposes ``feature_dim``; the history featurizers also
    keep their historical ``dimension`` alias, which older duck-typed stubs
    may be the only thing to offer.  Empty-batch shapes everywhere go through
    this one lookup so ``(0, D)`` is right for all of them.
    """
    dim = getattr(featurizer, "feature_dim", None)
    if dim is None:
        dim = getattr(featurizer, "dimension", default)
    return int(dim)


def featurize_in_chunks(featurizer, profiles: "list[Profile]", chunk: int = FEATURIZE_CHUNK) -> np.ndarray:
    """Run profiles through ``featurizer.featurize`` in bounded chunks.

    The shared implementation behind every judge's ``featurize_profiles``:
    identical chunking everywhere keeps feature rows bit-identical no matter
    which entry point computed them.

    Feature rows are independent of their chunk companions *except* for
    single-profile chunks, where BLAS takes a different (gemv) kernel and
    rows drift by ~1e-16 from their batched values.  A singleton chunk is
    therefore padded with a duplicate of its profile and the extra row
    dropped, so every row comes off the batched kernel and any partition of
    a workload into chunks — including the per-shard miss batches of
    :class:`repro.cluster.ShardedEngine` — yields bit-identical features.
    """
    rows = []
    for start in range(0, len(profiles), chunk):
        piece = profiles[start : start + chunk]
        if len(piece) == 1:
            rows.append(featurizer.featurize([piece[0], piece[0]])[:1])
        else:
            rows.append(featurizer.featurize(piece))
    return np.concatenate(rows) if rows else np.zeros((0, featurizer_dim(featurizer)))


def shared_poi_probability_matrix(poi_proba: np.ndarray) -> np.ndarray:
    """Pairwise shared-POI probability matrix from per-profile POI distributions.

    ``poi_proba`` is the ``(N, |P|)`` matrix of POI score distributions; the
    pair score is ``sum_k p_i[k] * p_j[k]`` (the probability both profiles
    sit at the same POI), i.e. ``P P^T`` with a unit diagonal.  Mirrors the
    judge convention: zeros for fewer than two profiles.
    """
    n = len(poi_proba)
    if n < 2:
        return np.zeros((n, n))
    matrix = poi_proba @ poi_proba.T
    np.fill_diagonal(matrix, 1.0)
    return matrix


def profile_key(profile: "Profile") -> ProfileKey:
    """The feature-cache key: ``(uid, ts, content, len(visit_history), revision)``.

    The history length distinguishes profiles emitted at the same timestamp
    with the same tweet but a grown visit history (duplicate stream delivery
    appends the visit between emissions).  Length alone is not identity,
    though: a full ``maxlen`` deque that drops its oldest visit and appends a
    new one produces a *different* feature vector at an unchanged length, so
    the key also carries the builder-stamped monotonic ``Profile.revision``
    (``UNREVISIONED`` = -1 when the profile was built outside the builders and
    falls back to length-based identity).  Profiles sharing this key
    featurize identically.  ``uid`` stays the first element — shard routing
    (:func:`repro.cluster.shard_index`) keys on ``key[0]``.
    """
    revision = UNREVISIONED if profile.revision is None else int(profile.revision)
    return (profile.uid, profile.ts, profile.content, len(profile.visit_history), revision)


def key_revision(key: ProfileKey) -> int:
    """The revision component of a profile key.

    Legacy 4-tuple keys (snapshots exported before the revision element)
    read as :data:`UNREVISIONED`, so they import and index cleanly — they
    simply carry no ordering to judge staleness by.
    """
    return int(key[4]) if len(key) > 4 else UNREVISIONED


def superseded_keys(keys: "Iterable[ProfileKey]") -> set[ProfileKey]:
    """The stale subset of ``keys``: revisioned keys below their uid's maximum.

    Unrevisioned keys (revision ``UNREVISIONED``) are never considered stale —
    they carry no ordering information.  Shared by every cache that needs an
    ``invalidate_stale`` sweep (engine rows, the worker pool's retained
    snapshot rows).
    """
    latest: dict[int, int] = {}
    materialized = list(keys)
    for key in materialized:
        revision = key_revision(key)
        if revision >= 0 and revision > latest.get(key[0], UNREVISIONED):
            latest[key[0]] = revision
    return {
        key
        for key in materialized
        if 0 <= key_revision(key) < latest.get(key[0], UNREVISIONED)
    }


class RevisionedKeyIndex:
    """Per-uid index over resident :data:`ProfileKey` cache keys.

    Serving caches (:class:`repro.api.ColocationEngine`, the judge-side
    feature cache) keep one of these alongside their LRU so invalidation is
    O(rows dropped), not O(cache): ``keys_of`` answers ``invalidate(uids)``
    and ``stale_keys`` answers ``invalidate_stale()``.  Registration never
    drops anything by itself — with revision-exact keys every resident row
    is correct for its own key, and older generations stay legitimately
    queryable (timeline replay, a sliding window's not-yet-expired
    profiles); reclaiming them is the caller's explicit decision.
    Not thread-safe — callers mutate it under their own cache lock.
    """

    def __init__(self) -> None:
        self._by_uid: dict[int, set[ProfileKey]] = {}
        self._latest: dict[int, int] = {}

    def register(self, key: ProfileKey) -> None:
        """Index a newly inserted key (and advance its uid's revision watermark)."""
        uid, revision = key[0], key_revision(key)
        self._by_uid.setdefault(uid, set()).add(key)
        if revision > self._latest.get(uid, UNREVISIONED):
            self._latest[uid] = revision

    def discard(self, key: ProfileKey) -> None:
        """Drop a key from the index (cache eviction or invalidation)."""
        resident = self._by_uid.get(key[0])
        if resident is not None:
            resident.discard(key)
            if not resident:
                del self._by_uid[key[0]]

    def keys_of(self, uids: "Iterable[int]") -> list[ProfileKey]:
        """All resident keys belonging to the given uids."""
        out: list[ProfileKey] = []
        for uid in uids:
            out.extend(self._by_uid.get(int(uid), ()))
        return out

    def stale_keys(self) -> list[ProfileKey]:
        """Resident revisioned keys superseded by a higher observed revision."""
        out: list[ProfileKey] = []
        for uid, resident in self._by_uid.items():
            latest = self._latest.get(uid, UNREVISIONED)
            out.extend(k for k in resident if 0 <= key_revision(k) < latest)
        return out

    def clear(self) -> None:
        """Forget every resident key (revision watermarks survive)."""
        self._by_uid.clear()


@runtime_checkable
class CoLocationJudge(Protocol):
    """What every judge-like model exposes once fitted."""

    def predict_proba(self, pairs: "list[Pair]") -> np.ndarray:
        """Co-location probability per pair, shape ``(len(pairs),)``."""
        ...

    def predict(self, pairs: "list[Pair]") -> np.ndarray:
        """Binary co-location decisions per pair."""
        ...

    def probability_matrix(self, profiles: "list[Profile]") -> np.ndarray:
        """Pairwise co-location probability matrix, shape ``(N, N)``."""
        ...


@runtime_checkable
class FeatureSpaceJudge(Protocol):
    """A judge that separates featurization from pair scoring.

    The :class:`repro.api.ColocationEngine` uses this interface to memoise
    per-profile features in an LRU cache and score pairs directly from cached
    feature rows, so repeated windows never re-featurize the same profile.
    """

    def featurize_profiles(self, profiles: "list[Profile]") -> np.ndarray:
        """Frozen feature rows for profiles, shape ``(B, D)``; no caching."""
        ...

    def score_feature_pairs(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Co-location probabilities from two aligned feature matrices."""
        ...


@runtime_checkable
class TrainableApproach(Protocol):
    """An unfitted approach that trains itself on a whole dataset.

    This is what ``repro.registry.build("judge", name, config)`` returns:
    calling :meth:`fit` with a :class:`repro.data.dataset.ColocationDataset`
    yields an object satisfying :class:`CoLocationJudge`.
    """

    def fit(self, dataset: "ColocationDataset") -> "TrainableApproach":
        """Train on the dataset's training split; returns self."""
        ...


def upper_triangle_pairs(n: int) -> list[tuple[int, int]]:
    """The ``(i, j)`` index pairs of the strict upper triangle, row-major."""
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def symmetric_probability_matrix(
    n: int, index_pairs: list[tuple[int, int]], probabilities: np.ndarray
) -> np.ndarray:
    """Assemble the judge-convention ``N x N`` matrix from per-pair scores.

    Symmetric, unit diagonal for two or more profiles, zeros otherwise — the
    single implementation behind every ``probability_matrix``.
    """
    matrix = np.zeros((n, n))
    if n < 2:
        return matrix
    for (i, j), probability in zip(index_pairs, probabilities):
        matrix[i, j] = matrix[j, i] = probability
    np.fill_diagonal(matrix, 1.0)
    return matrix


def pairwise_probability_matrix(judge: CoLocationJudge, profiles: "list[Profile]") -> np.ndarray:
    """Generic ``N x N`` probability matrix built from ``predict_proba``.

    Judges without a feature-level shortcut (the social judge, pair-wise
    baselines) fall back to scoring every unordered profile pair.
    """
    from repro.data.records import Pair

    n = len(profiles)
    if n < 2:
        return np.zeros((n, n))
    index_pairs = upper_triangle_pairs(n)
    pairs = [Pair(left=profiles[i], right=profiles[j], co_label=None) for i, j in index_pairs]
    probabilities = np.asarray(judge.predict_proba(pairs), dtype=float)
    return symmetric_probability_matrix(n, index_pairs, probabilities)
