"""Structural protocols implemented by every co-location judge.

These are :class:`typing.Protocol` classes, so conformance is structural: the
HisRect judge, the One-phase model, Comp2Loc, the social judge, both
location-inference baselines and the pipeline itself all satisfy
:class:`CoLocationJudge` without inheriting from anything.  The protocols are
``runtime_checkable`` so ``isinstance(judge, CoLocationJudge)`` works as a
capability test in the serving layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.data.dataset import ColocationDataset
    from repro.data.records import Pair, Profile

#: The cache key identifying one profile's frozen HisRect feature vector.
ProfileKey = tuple[int, float, str, int]

#: Profiles featurized per featurizer invocation (bounds autograd graph size).
FEATURIZE_CHUNK = 64


def featurizer_dim(featurizer, default: int = 0) -> int:
    """The feature dimensionality a featurizer-like object reports.

    Every featurizer exposes ``feature_dim``; the history featurizers also
    keep their historical ``dimension`` alias, which older duck-typed stubs
    may be the only thing to offer.  Empty-batch shapes everywhere go through
    this one lookup so ``(0, D)`` is right for all of them.
    """
    dim = getattr(featurizer, "feature_dim", None)
    if dim is None:
        dim = getattr(featurizer, "dimension", default)
    return int(dim)


def featurize_in_chunks(featurizer, profiles: "list[Profile]", chunk: int = FEATURIZE_CHUNK) -> np.ndarray:
    """Run profiles through ``featurizer.featurize`` in bounded chunks.

    The shared implementation behind every judge's ``featurize_profiles``:
    identical chunking everywhere keeps feature rows bit-identical no matter
    which entry point computed them.

    Feature rows are independent of their chunk companions *except* for
    single-profile chunks, where BLAS takes a different (gemv) kernel and
    rows drift by ~1e-16 from their batched values.  A singleton chunk is
    therefore padded with a duplicate of its profile and the extra row
    dropped, so every row comes off the batched kernel and any partition of
    a workload into chunks — including the per-shard miss batches of
    :class:`repro.cluster.ShardedEngine` — yields bit-identical features.
    """
    rows = []
    for start in range(0, len(profiles), chunk):
        piece = profiles[start : start + chunk]
        if len(piece) == 1:
            rows.append(featurizer.featurize([piece[0], piece[0]])[:1])
        else:
            rows.append(featurizer.featurize(piece))
    return np.concatenate(rows) if rows else np.zeros((0, featurizer_dim(featurizer)))


def shared_poi_probability_matrix(poi_proba: np.ndarray) -> np.ndarray:
    """Pairwise shared-POI probability matrix from per-profile POI distributions.

    ``poi_proba`` is the ``(N, |P|)`` matrix of POI score distributions; the
    pair score is ``sum_k p_i[k] * p_j[k]`` (the probability both profiles
    sit at the same POI), i.e. ``P P^T`` with a unit diagonal.  Mirrors the
    judge convention: zeros for fewer than two profiles.
    """
    n = len(poi_proba)
    if n < 2:
        return np.zeros((n, n))
    matrix = poi_proba @ poi_proba.T
    np.fill_diagonal(matrix, 1.0)
    return matrix


def profile_key(profile: "Profile") -> ProfileKey:
    """The feature-cache key: ``(uid, ts, content, len(visit_history))``.

    The history length distinguishes profiles emitted at the same timestamp
    with the same tweet but a grown visit history (duplicate stream delivery
    appends the visit between emissions), mirroring the featurizer's own
    history-cache key.  Profiles sharing this key featurize identically.
    """
    return (profile.uid, profile.ts, profile.content, len(profile.visit_history))


@runtime_checkable
class CoLocationJudge(Protocol):
    """What every judge-like model exposes once fitted."""

    def predict_proba(self, pairs: "list[Pair]") -> np.ndarray:
        """Co-location probability per pair, shape ``(len(pairs),)``."""
        ...

    def predict(self, pairs: "list[Pair]") -> np.ndarray:
        """Binary co-location decisions per pair."""
        ...

    def probability_matrix(self, profiles: "list[Profile]") -> np.ndarray:
        """Pairwise co-location probability matrix, shape ``(N, N)``."""
        ...


@runtime_checkable
class FeatureSpaceJudge(Protocol):
    """A judge that separates featurization from pair scoring.

    The :class:`repro.api.ColocationEngine` uses this interface to memoise
    per-profile features in an LRU cache and score pairs directly from cached
    feature rows, so repeated windows never re-featurize the same profile.
    """

    def featurize_profiles(self, profiles: "list[Profile]") -> np.ndarray:
        """Frozen feature rows for profiles, shape ``(B, D)``; no caching."""
        ...

    def score_feature_pairs(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Co-location probabilities from two aligned feature matrices."""
        ...


@runtime_checkable
class TrainableApproach(Protocol):
    """An unfitted approach that trains itself on a whole dataset.

    This is what ``repro.registry.build("judge", name, config)`` returns:
    calling :meth:`fit` with a :class:`repro.data.dataset.ColocationDataset`
    yields an object satisfying :class:`CoLocationJudge`.
    """

    def fit(self, dataset: "ColocationDataset") -> "TrainableApproach":
        """Train on the dataset's training split; returns self."""
        ...


def upper_triangle_pairs(n: int) -> list[tuple[int, int]]:
    """The ``(i, j)`` index pairs of the strict upper triangle, row-major."""
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def symmetric_probability_matrix(
    n: int, index_pairs: list[tuple[int, int]], probabilities: np.ndarray
) -> np.ndarray:
    """Assemble the judge-convention ``N x N`` matrix from per-pair scores.

    Symmetric, unit diagonal for two or more profiles, zeros otherwise — the
    single implementation behind every ``probability_matrix``.
    """
    matrix = np.zeros((n, n))
    if n < 2:
        return matrix
    for (i, j), probability in zip(index_pairs, probabilities):
        matrix[i, j] = matrix[j, i] = probability
    np.fill_diagonal(matrix, 1.0)
    return matrix


def pairwise_probability_matrix(judge: CoLocationJudge, profiles: "list[Profile]") -> np.ndarray:
    """Generic ``N x N`` probability matrix built from ``predict_proba``.

    Judges without a feature-level shortcut (the social judge, pair-wise
    baselines) fall back to scoring every unordered profile pair.
    """
    from repro.data.records import Pair

    n = len(profiles)
    if n < 2:
        return np.zeros((n, n))
    index_pairs = upper_triangle_pairs(n)
    pairs = [Pair(left=profiles[i], right=profiles[j], co_label=None) for i, j in index_pairs]
    probabilities = np.asarray(judge.predict_proba(pairs), dtype=float)
    return symmetric_probability_matrix(n, index_pairs, probabilities)
