"""The training-strategy abstraction behind ``CoLocationPipeline.fit``.

The pipeline used to branch on ``config.mode`` with bare ``assert`` guards.
Each mode is now a :class:`TrainingStrategy` registered under the
``"strategy"`` registry kind; the pipeline resolves its strategy by name and
delegates training, judge access and capability checks to it.  Adding a new
training regime means registering a new strategy, not editing the pipeline.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.colocation.pipeline import CoLocationPipeline
    from repro.data.dataset import ColocationDataset

#: Capability names a strategy may advertise.
POI_INFERENCE = "poi-inference"
PROBABILITY_MATRIX = "probability-matrix"
COMP2LOC = "comp2loc"


class TrainingStrategy(abc.ABC):
    """How one pipeline mode trains and which questions it can answer."""

    #: Registry name of the strategy (equals ``PipelineConfig.mode``).
    name: str = ""
    #: Capabilities of a pipeline trained with this strategy.
    capabilities: frozenset[str] = frozenset()

    @abc.abstractmethod
    def fit(self, pipeline: "CoLocationPipeline", dataset: "ColocationDataset") -> None:
        """Train the mode-specific components onto ``pipeline`` in place.

        The pipeline has already built its shared pieces (text stack and
        featurizer); the strategy owns everything after that.
        """

    @abc.abstractmethod
    def fitted_judge(self, pipeline: "CoLocationPipeline"):
        """The pipeline's trained judge-like model, or ``None`` before fit."""

    def supports(self, capability: str) -> bool:
        """True when pipelines trained with this strategy offer ``capability``."""
        return capability in self.capabilities

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
