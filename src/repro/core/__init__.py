"""Core abstractions shared by every co-location judge in the library.

The paper's Section 6.4.4 observation — a fitted judge answers in about a
millisecond, so it "can work in online scenarios" — only pays off if every
judge-like model speaks the same language.  This package defines that
language:

* :class:`repro.core.protocols.CoLocationJudge` — the structural protocol all
  judges implement (``predict_proba`` / ``predict`` / ``probability_matrix``).
* :class:`repro.core.protocols.FeatureSpaceJudge` — the optional feature-level
  interface (``featurize_profiles`` / ``score_feature_pairs``) that lets the
  :class:`repro.api.ColocationEngine` cache per-profile HisRect features and
  score pairs without re-featurizing.
* :class:`repro.core.protocols.TrainableApproach` — anything fittable on a
  :class:`repro.data.dataset.ColocationDataset`; what
  ``repro.registry.build("judge", name, config)`` returns.
* :class:`repro.core.strategy.TrainingStrategy` — the strategy objects that
  :meth:`repro.colocation.CoLocationPipeline.fit` dispatches to instead of
  branching on ``config.mode``.
"""

from repro.core.protocols import (
    FEATURIZE_CHUNK,
    UNREVISIONED,
    CoLocationJudge,
    FeatureSpaceJudge,
    ProfileKey,
    RevisionedKeyIndex,
    TrainableApproach,
    featurize_in_chunks,
    featurizer_dim,
    key_revision,
    pairwise_probability_matrix,
    profile_key,
    shared_poi_probability_matrix,
    superseded_keys,
)
from repro.core.strategy import TrainingStrategy

__all__ = [
    "CoLocationJudge",
    "FeatureSpaceJudge",
    "TrainableApproach",
    "TrainingStrategy",
    "ProfileKey",
    "RevisionedKeyIndex",
    "FEATURIZE_CHUNK",
    "UNREVISIONED",
    "key_revision",
    "profile_key",
    "featurize_in_chunks",
    "featurizer_dim",
    "pairwise_probability_matrix",
    "shared_poi_probability_matrix",
    "superseded_keys",
]
