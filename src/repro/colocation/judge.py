"""The HisRect-based co-location judge (paper Section 5).

Given the frozen HisRect features ``F(r_i)`` and ``F(r_j)`` of the two profiles
in a pair, the judge embeds both with a second embedding network ``E'``, feeds
the element-wise absolute difference ``|E'(F(r_i)) - E'(F(r_j))|`` to a
feed-forward classifier ``C`` topped by a sigmoid, and declares the pair
co-located when the probability exceeds a threshold (0.5 by default).

Because the featurizer is fixed at this stage, profiles are featurised once
into NumPy arrays and the judge trains on plain vectors, which keeps the
second phase fast (this mirrors the paper's observation that judging a pair
takes ~1 ms once the networks are trained).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.protocols import (
    ProfileKey,
    RevisionedKeyIndex,
    profile_key,
    symmetric_probability_matrix,
    upper_triangle_pairs,
)
from repro.data.records import Pair, Profile
from repro.errors import NotFittedError, TrainingError
from repro.features.hisrect import EmbeddingNetwork, HisRectFeaturizer
from repro.nn.autograd import Tensor
from repro.nn.layers import MLP, Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm


@dataclass
class JudgeConfig:
    """Architecture and training hyper-parameters of the co-location judge."""

    #: Embedding dimensionality and depth of ``E'`` (``Q_e'`` layers).
    embedding_dim: int = 16
    num_embedding_layers: int = 2
    #: Width and depth of the classifier ``C`` (``Q_c`` layers).
    classifier_dim: int = 16
    num_classifier_layers: int = 3
    keep_prob: float = 0.8
    #: Gaussian init std; ``None`` uses fan-in (He) scaling.
    init_std: float | None = None
    #: Decision threshold on the co-location probability.
    threshold: float = 0.5
    # Training.
    batch_size: int = 32
    epochs: int = 40
    learning_rate: float = 0.01
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    lr_decay: float = 1e-3
    #: Fraction of negative pairs kept per epoch (paper: 1/10).
    negative_fraction: float = 0.2
    seed: int = 71


class CoLocationJudgeNetwork(Module):
    """``E'`` + ``C`` + sigmoid head operating on pairs of feature vectors."""

    def __init__(self, feature_dim: int, config: JudgeConfig):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.embedding = EmbeddingNetwork(
            feature_dim,
            config.embedding_dim,
            num_layers=config.num_embedding_layers,
            normalize=False,
            init_std=config.init_std,
            keep_prob=config.keep_prob,
            seed=config.seed + 1,
        )
        self.classifier = MLP(
            config.embedding_dim,
            [config.classifier_dim] * max(1, config.num_classifier_layers - 1),
            final_activation=True,
            keep_prob=config.keep_prob,
            init_std=config.init_std,
            rng=rng,
        )
        self.output = Linear(config.classifier_dim, 1, init_std=config.init_std, rng=rng)

    def forward(self, left_features: Tensor, right_features: Tensor) -> Tensor:
        """Raw co-location logits, shape ``(B,)``."""
        left_emb = self.embedding(left_features)
        right_emb = self.embedding(right_features)
        difference = (left_emb - right_emb).abs()
        hidden = self.classifier(difference)
        return self.output(hidden).reshape(difference.shape[0])


@dataclass
class JudgeTrainingHistory:
    """Loss trace of judge training."""

    losses: list[float] = field(default_factory=list)


class HisRectCoLocationJudge:
    """Phase-two model: featurize with a frozen ``F`` and judge co-location."""

    #: Default bound on memoised feature rows.  The judge's direct-call memo
    #: used to be an unbounded dict — fine for a one-shot experiment, a leak
    #: under long-running serving; it now evicts LRU-style like every other
    #: cache in the stack.  :meth:`fit` raises the instance's
    #: ``feature_cache_size`` to the training set's distinct-profile count so
    #: epoch scans never thrash.
    FEATURE_CACHE_SIZE = 8192

    def __init__(self, featurizer: HisRectFeaturizer, config: JudgeConfig | None = None):
        self.featurizer = featurizer
        self.config = config or JudgeConfig()
        self.network = CoLocationJudgeNetwork(featurizer.feature_dim, self.config)
        self._rng = np.random.default_rng(self.config.seed)
        self.feature_cache_size = self.FEATURE_CACHE_SIZE
        self._feature_cache: OrderedDict[ProfileKey, np.ndarray] = OrderedDict()
        self._feature_index = RevisionedKeyIndex()
        self._fitted = False

    # ---------------------------------------------------------------- features
    def _profile_key(self, profile: Profile) -> ProfileKey:
        return profile_key(profile)

    def featurize_profiles(self, profiles: list[Profile]) -> np.ndarray:
        """Frozen HisRect feature rows for profiles (uncached, chunked).

        Delegates to the featurizer's own batch path, so each chunk computes
        its history features in one vectorised pass.
        """
        return self.featurizer.featurize_profiles(profiles)

    def profile_features(self, profiles: list[Profile]) -> np.ndarray:
        """Frozen HisRect features for profiles, memoised across calls.

        The memo is a bounded LRU keyed by the revision-carrying
        :func:`repro.core.profile_key`, so a mutated profile (higher
        revision) can never read a stale row; dead generations are reclaimed
        by :meth:`invalidate`, never as an insert side effect.  Serving-layer
        callers should prefer the engine's cache; this memo backs direct
        judge calls and training epochs.
        """
        keys = [self._profile_key(p) for p in profiles]
        missing: dict[ProfileKey, Profile] = {}
        resolved: dict[ProfileKey, np.ndarray] = {}
        for key, profile in zip(keys, profiles):
            if key in resolved or key in missing:
                continue
            row = self._feature_cache.get(key)
            if row is not None:
                self._feature_cache.move_to_end(key)
                resolved[key] = row
            else:
                missing[key] = profile
        if missing:
            features = self.featurize_profiles(list(missing.values()))
            for key, row in zip(missing, features):
                row = np.array(row, copy=True)
                resolved[key] = row
                self._feature_cache[key] = row
                self._feature_cache.move_to_end(key)
                self._feature_index.register(key)
                while len(self._feature_cache) > self.feature_cache_size:
                    evicted, _ = self._feature_cache.popitem(last=False)
                    self._feature_index.discard(evicted)
        return np.stack([resolved[key] for key in keys])

    def invalidate(self, uids: list[int]) -> int:
        """Drop memoised rows of the given users; returns rows dropped."""
        dropped = 0
        for key in self._feature_index.keys_of(uids):
            if self._feature_cache.pop(key, None) is not None:
                dropped += 1
            self._feature_index.discard(key)
        return dropped

    def clear_cache(self) -> None:
        """Drop memoised features (needed if the featurizer is retrained)."""
        self._feature_cache.clear()
        self._feature_index.clear()

    # ---------------------------------------------------------------- training
    def fit(self, labeled_pairs: list[Pair]) -> JudgeTrainingHistory:
        """Train ``E'`` and ``C`` on labelled pairs with the featurizer frozen."""
        positives = [p for p in labeled_pairs if p.is_positive]
        negatives = [p for p in labeled_pairs if p.is_negative]
        if not positives or not negatives:
            raise TrainingError("judge training needs both positive and negative pairs")

        cfg = self.config
        profiles = []
        for pair in labeled_pairs:
            profiles.append(pair.left)
            profiles.append(pair.right)
        # Warm the feature cache once for all involved profiles, raising the
        # LRU bound to the training set's distinct-profile count first so the
        # epoch batch loop re-reads warm rows instead of thrashing.
        distinct = len({self._profile_key(p) for p in profiles})
        self.feature_cache_size = max(self.feature_cache_size, distinct)
        self.profile_features(profiles)

        optimizer = Adam(self.network.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        history = JudgeTrainingHistory()
        self.network.train()
        for _ in range(cfg.epochs):
            epoch_pairs = list(positives)
            if 0.0 < cfg.negative_fraction < 1.0:
                keep = max(1, int(round(len(negatives) * cfg.negative_fraction)))
                indices = self._rng.choice(len(negatives), size=min(keep, len(negatives)), replace=False)
                epoch_pairs += [negatives[int(i)] for i in indices]
            else:
                epoch_pairs += negatives
            order = self._rng.permutation(len(epoch_pairs))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(epoch_pairs), cfg.batch_size):
                batch = [epoch_pairs[int(i)] for i in order[start : start + cfg.batch_size]]
                left = self.profile_features([p.left for p in batch])
                right = self.profile_features([p.right for p in batch])
                labels = np.array([p.co_label for p in batch], dtype=np.float64)
                logits = self.network(Tensor(left), Tensor(right))
                loss = binary_cross_entropy_with_logits(logits, labels)
                self.network.zero_grad()
                loss.backward()
                clip_grad_norm(optimizer.parameters, cfg.grad_clip)
                optimizer.decay_lr(cfg.lr_decay)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            history.losses.append(epoch_loss / max(1, batches))
        self.network.eval()
        self._fitted = True
        return history

    # --------------------------------------------------------------- inference
    @property
    def decision_threshold(self) -> float:
        """The probability threshold behind :meth:`predict`."""
        return self.config.threshold

    def score_feature_pairs(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Co-location probabilities from two aligned HisRect feature matrices."""
        if not self._fitted:
            raise NotFittedError("the co-location judge has not been fitted")
        if len(left) == 0:
            return np.zeros(0)
        logits = self.network(Tensor(left), Tensor(right)).data
        return 1.0 / (1.0 + np.exp(-logits))

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probability for each pair."""
        if not self._fitted:
            raise NotFittedError("the co-location judge has not been fitted")
        if not pairs:
            return np.zeros(0)
        left = self.profile_features([p.left for p in pairs])
        right = self.profile_features([p.right for p in pairs])
        return self.score_feature_pairs(left, right)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions (1 = co-located)."""
        return (self.predict_proba(pairs) >= self.config.threshold).astype(int)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """The ``N x N`` pairwise co-location probability matrix (clustering input)."""
        if not self._fitted:
            raise NotFittedError("the co-location judge has not been fitted")
        n = len(profiles)
        if n < 2:
            return np.zeros((n, n))
        features = self.profile_features(profiles)
        index_pairs = upper_triangle_pairs(n)
        left = np.stack([features[i] for i, _ in index_pairs])
        right = np.stack([features[j] for _, j in index_pairs])
        probs = self.score_feature_pairs(left, right)
        return symmetric_probability_matrix(n, index_pairs, probs)
