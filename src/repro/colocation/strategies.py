"""Concrete training strategies for the co-location pipeline.

Each pipeline ``mode`` is one :class:`repro.core.TrainingStrategy` registered
under the ``"strategy"`` registry kind:

* ``"two-phase"`` — the paper's HisRect regime: train the featurizer with the
  semi-supervised framework (Section 4.4), then the judge ``E'`` + ``C`` on
  labelled pairs with the featurizer frozen (Section 5).
* ``"one-phase"`` — the end-to-end baseline: featurizer and judge trained
  jointly on the pair loss only.

The strategies own the mode-specific model construction too, so the pipeline
no longer builds a POI classifier it will never train in one-phase mode.
"""

from __future__ import annotations

from repro.colocation.judge import HisRectCoLocationJudge
from repro.colocation.onephase import OnePhaseModel
from repro.core.strategy import COMP2LOC, POI_INFERENCE, PROBABILITY_MATRIX, TrainingStrategy
from repro.errors import NotFittedError
from repro.features.hisrect import EmbeddingNetwork, POIClassifier
from repro.registry import register
from repro.ssl.trainer import SemiSupervisedHisRectTrainer


@register("strategy", "two-phase", description="SSL featurizer training, then a frozen-feature judge (HisRect)")
class TwoPhaseStrategy(TrainingStrategy):
    """Phase one trains ``F`` + ``P`` + ``E``; phase two trains ``E'`` + ``C``."""

    name = "two-phase"
    capabilities = frozenset({POI_INFERENCE, PROBABILITY_MATRIX, COMP2LOC})

    def fit(self, pipeline, dataset) -> None:
        cfg = pipeline.config
        registry = dataset.registry
        pipeline.classifier = POIClassifier(
            feature_dim=cfg.hisrect.feature_dim,
            num_pois=len(registry),
            num_layers=cfg.classifier_layers,
            keep_prob=cfg.hisrect.keep_prob,
            init_std=cfg.hisrect.init_std,
            seed=cfg.seed + 1,
        )
        pipeline.embedding = EmbeddingNetwork(
            input_dim=cfg.hisrect.feature_dim,
            embedding_dim=cfg.hisrect.embedding_dim,
            num_layers=cfg.hisrect.num_embedding_layers,
            normalize=True,
            init_std=cfg.hisrect.init_std,
            seed=cfg.seed + 2,
        )
        train = dataset.train
        trainer = SemiSupervisedHisRectTrainer(
            pipeline.featurizer,
            pipeline.classifier,
            pipeline.embedding,
            registry,
            config=cfg.ssl,
            affinity_config=cfg.affinity,
        )
        pipeline.ssl_history = trainer.train(
            train.labeled_profiles, train.labeled_pairs, train.unlabeled_pairs
        )
        pipeline.judge = HisRectCoLocationJudge(pipeline.featurizer, cfg.judge)
        pipeline.judge.fit(train.labeled_pairs)

    def fitted_judge(self, pipeline):
        if pipeline.judge is None:
            raise NotFittedError("the two-phase pipeline has no trained judge; call fit() first")
        return pipeline.judge


@register("strategy", "one-phase", description="featurizer and judge trained end-to-end on the pair loss")
class OnePhaseStrategy(TrainingStrategy):
    """Joint training of ``F``, ``E'`` and ``C`` on ``L_co`` alone."""

    name = "one-phase"
    capabilities = frozenset()

    def fit(self, pipeline, dataset) -> None:
        pipeline.onephase = OnePhaseModel(pipeline.featurizer, pipeline.config.onephase)
        pipeline.onephase.fit(dataset.train.labeled_pairs)

    def fitted_judge(self, pipeline):
        if pipeline.onephase is None:
            raise NotFittedError("the one-phase pipeline has no trained model; call fit() first")
        return pipeline.onephase
