"""Clustering user profiles with a co-location judge (paper Sections 5 and 6.5).

The paper wraps the pairwise judge into a clustering procedure: build the
``N x N`` co-location probability matrix of a group of profiles, keep edges
whose probability exceeds a threshold (0.5 by default) and report the
connected components as co-located clusters.  The number of clusters never has
to be specified.  The Table 8 case study evaluates this on groups of five
profiles with known ground-truth partitions (patterns 5-0, 4-1, 3-2, 3-1-1,
2-2-1).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.data.records import Profile


@dataclass
class ClusteringResult:
    """Clusters of profile indices plus the probability matrix used."""

    clusters: list[set[int]]
    probability_matrix: np.ndarray

    def as_partition(self) -> list[frozenset[int]]:
        """Canonical partition representation (sorted frozensets)."""
        return sorted((frozenset(c) for c in self.clusters), key=lambda c: (-len(c), min(c)))


class ProfileClusterer:
    """Connected-component clustering over a co-location probability matrix."""

    def __init__(self, judge, threshold: float = 0.5):
        """``judge`` must expose ``probability_matrix(profiles) -> np.ndarray``."""
        self.judge = judge
        self.threshold = threshold

    def cluster_matrix(self, matrix: np.ndarray) -> list[set[int]]:
        """Connected components of the thresholded probability matrix."""
        n = matrix.shape[0]
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if matrix[i, j] > self.threshold:
                    graph.add_edge(i, j)
        return [set(component) for component in nx.connected_components(graph)]

    def cluster(self, profiles: list[Profile]) -> ClusteringResult:
        """Cluster profiles into co-located groups."""
        matrix = self.judge.probability_matrix(profiles)
        return ClusteringResult(clusters=self.cluster_matrix(matrix), probability_matrix=matrix)


def partition_from_labels(labels: list[int]) -> list[frozenset[int]]:
    """Turn per-profile group labels into the canonical partition representation."""
    groups: dict[int, set[int]] = {}
    for index, label in enumerate(labels):
        groups.setdefault(label, set()).add(index)
    return sorted((frozenset(g) for g in groups.values()), key=lambda c: (-len(c), min(c)))


def partitions_equal(left: list[frozenset[int]], right: list[frozenset[int]]) -> bool:
    """True when two partitions contain exactly the same groups."""
    return set(left) == set(right)
