"""One-phase: end-to-end training of featurizer + judge on the pair loss only.

The paper's *One-phase* baseline skips the HisRect feature-training stage: the
featurizer ``F``, the pair embedding ``E'`` and the classifier ``C`` are wired
together and trained jointly on ``L_co`` over the labelled pairs.  Because it
never sees the labelled profiles outside pairs nor any unlabelled data, it
exploits less information than the two-phase HisRect approach — which is the
point of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.colocation.judge import CoLocationJudgeNetwork, JudgeConfig
from repro.core.protocols import pairwise_probability_matrix
from repro.data.records import Pair, Profile
from repro.errors import NotFittedError, TrainingError
from repro.features.hisrect import HisRectFeaturizer
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.optim import Adam, clip_grad_norm


@dataclass
class OnePhaseConfig:
    """Training hyper-parameters of the One-phase model."""

    judge: JudgeConfig = field(default_factory=JudgeConfig)
    batch_size: int = 8
    max_iterations: int = 200
    learning_rate: float = 0.01
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    lr_decay: float = 1e-3
    #: Fraction of negative pairs kept in the sampling pool (paper: 1/10).
    negative_fraction: float = 0.1
    seed: int = 83


class OnePhaseModel:
    """Featurizer + judge trained end-to-end on the co-location loss."""

    def __init__(self, featurizer: HisRectFeaturizer, config: OnePhaseConfig | None = None):
        self.featurizer = featurizer
        self.config = config or OnePhaseConfig()
        self.network = CoLocationJudgeNetwork(featurizer.feature_dim, self.config.judge)
        self._rng = np.random.default_rng(self.config.seed)
        self._fitted = False

    def fit(self, labeled_pairs: list[Pair]) -> list[float]:
        """Jointly train ``F``, ``E'`` and ``C``; returns the per-step loss trace."""
        positives = [p for p in labeled_pairs if p.is_positive]
        negatives = [p for p in labeled_pairs if p.is_negative]
        if not positives or not negatives:
            raise TrainingError("One-phase training needs both positive and negative pairs")
        cfg = self.config
        pool = list(positives)
        if 0.0 < cfg.negative_fraction < 1.0 and negatives:
            keep = max(1, int(round(len(negatives) * cfg.negative_fraction)))
            indices = self._rng.choice(len(negatives), size=min(keep, len(negatives)), replace=False)
            pool += [negatives[int(i)] for i in indices]
        else:
            pool += negatives

        optimizer = Adam(
            self.featurizer.parameters() + self.network.parameters(),
            lr=cfg.learning_rate,
            weight_decay=cfg.weight_decay,
        )
        losses: list[float] = []
        self.featurizer.train()
        self.network.train()
        for _ in range(cfg.max_iterations):
            indices = self._rng.choice(len(pool), size=min(cfg.batch_size, len(pool)), replace=False)
            batch = [pool[int(i)] for i in indices]
            left = self.featurizer([p.left for p in batch])
            right = self.featurizer([p.right for p in batch])
            labels = np.array([p.co_label for p in batch], dtype=np.float64)
            logits = self.network(left, right)
            loss = binary_cross_entropy_with_logits(logits, labels)
            self.featurizer.zero_grad()
            self.network.zero_grad()
            loss.backward()
            clip_grad_norm(optimizer.parameters, cfg.grad_clip)
            optimizer.decay_lr(cfg.lr_decay)
            optimizer.step()
            losses.append(loss.item())
        self.featurizer.eval()
        self.network.eval()
        self._fitted = True
        return losses

    @property
    def decision_threshold(self) -> float:
        """The probability threshold behind :meth:`predict`."""
        return self.config.judge.threshold

    def featurize_profiles(self, profiles: list[Profile]) -> np.ndarray:
        """Feature rows for profiles through the jointly-trained featurizer.

        Delegates to the featurizer's own batch path, so each chunk computes
        its history features in one vectorised pass.
        """
        if not self._fitted:
            raise NotFittedError("the One-phase model has not been fitted")
        return self.featurizer.featurize_profiles(profiles)

    def score_feature_pairs(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Co-location probabilities from two aligned feature matrices."""
        if not self._fitted:
            raise NotFittedError("the One-phase model has not been fitted")
        if len(left) == 0:
            return np.zeros(0)
        from repro.nn.autograd import Tensor

        logits = self.network(Tensor(left), Tensor(right)).data
        return 1.0 / (1.0 + np.exp(-logits))

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probabilities for pairs."""
        if not self._fitted:
            raise NotFittedError("the One-phase model has not been fitted")
        if not pairs:
            return np.zeros(0)
        left = self.featurizer.featurize([p.left for p in pairs])
        right = self.featurizer.featurize([p.right for p in pairs])
        return self.score_feature_pairs(left, right)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions."""
        return (self.predict_proba(pairs) >= self.config.judge.threshold).astype(int)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """Pairwise probability matrix via the generic pair-scoring fallback.

        The :class:`repro.api.ColocationEngine` computes the same matrix from
        cached per-profile features, featurizing each profile exactly once.
        """
        if not self._fitted:
            raise NotFittedError("the One-phase model has not been fitted")
        return pairwise_probability_matrix(self, profiles)
