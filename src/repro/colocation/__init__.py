"""Co-location judgement: the HisRect judge, naive judges, clustering and pipeline.

Every judge-like class in this package satisfies the
:class:`repro.core.CoLocationJudge` protocol, self-registers in
:mod:`repro.registry` (``"judge"`` kind) and can be served through
:class:`repro.api.ColocationEngine`.
"""

from repro.colocation.clustering import (
    ClusteringResult,
    ProfileClusterer,
    partition_from_labels,
    partitions_equal,
)
from repro.colocation.comp2loc import Comp2LocJudge
from repro.colocation.judge import (
    CoLocationJudgeNetwork,
    HisRectCoLocationJudge,
    JudgeConfig,
    JudgeTrainingHistory,
)
from repro.colocation.onephase import OnePhaseConfig, OnePhaseModel
from repro.colocation.pipeline import CoLocationPipeline, PipelineConfig, training_modes
from repro.colocation.strategies import OnePhaseStrategy, TwoPhaseStrategy
from repro.colocation.variants import Comp2LocApproach, variant_pipeline_config

__all__ = [
    "JudgeConfig",
    "CoLocationJudgeNetwork",
    "HisRectCoLocationJudge",
    "JudgeTrainingHistory",
    "Comp2LocJudge",
    "Comp2LocApproach",
    "OnePhaseConfig",
    "OnePhaseModel",
    "ProfileClusterer",
    "ClusteringResult",
    "partition_from_labels",
    "partitions_equal",
    "CoLocationPipeline",
    "PipelineConfig",
    "TwoPhaseStrategy",
    "OnePhaseStrategy",
    "training_modes",
    "variant_pipeline_config",
]


def __getattr__(name: str):
    if name == "MODES":
        from repro.colocation.pipeline import _deprecated_modes

        return _deprecated_modes(__name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
