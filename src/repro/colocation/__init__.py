"""Co-location judgement: the HisRect judge, naive judges, clustering and pipeline."""

from repro.colocation.clustering import (
    ClusteringResult,
    ProfileClusterer,
    partition_from_labels,
    partitions_equal,
)
from repro.colocation.comp2loc import Comp2LocJudge
from repro.colocation.judge import (
    CoLocationJudgeNetwork,
    HisRectCoLocationJudge,
    JudgeConfig,
    JudgeTrainingHistory,
)
from repro.colocation.onephase import OnePhaseConfig, OnePhaseModel
from repro.colocation.pipeline import MODES, CoLocationPipeline, PipelineConfig

__all__ = [
    "JudgeConfig",
    "CoLocationJudgeNetwork",
    "HisRectCoLocationJudge",
    "JudgeTrainingHistory",
    "Comp2LocJudge",
    "OnePhaseConfig",
    "OnePhaseModel",
    "ProfileClusterer",
    "ClusteringResult",
    "partition_from_labels",
    "partitions_equal",
    "CoLocationPipeline",
    "PipelineConfig",
    "MODES",
]
