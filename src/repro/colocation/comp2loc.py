"""Comp2Loc: the naive "infer both POIs and compare" judge (paper Section 5).

Comp2Loc reuses the POI classifier ``P`` trained alongside the HisRect
featurizer: it infers a POI for each profile independently and declares the
pair co-located only when the two inferred POIs coincide.  The paper uses it to
show that a pairwise judge on the feature *difference* beats independent
location inference; we additionally expose a soft score (the probability that
both users are at the same POI, ``sum_k p_i[k] * p_j[k]``) so the approach can
participate in threshold sweeps even though the paper leaves it out of the ROC
comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocols import (
    ProfileKey,
    profile_key,
    shared_poi_probability_matrix,
)
from repro.data.records import Pair, Profile
from repro.errors import NotFittedError
from repro.features.hisrect import HisRectFeaturizer, POIClassifier


class Comp2LocJudge:
    """Judge a pair co-located iff the classifier assigns both profiles the same POI."""

    def __init__(self, featurizer: HisRectFeaturizer, classifier: POIClassifier):
        self.featurizer = featurizer
        self.classifier = classifier
        self._feature_cache: dict[ProfileKey, np.ndarray] = {}

    def featurize_profiles(self, profiles: list[Profile]) -> np.ndarray:
        """Frozen HisRect feature rows for profiles (uncached, chunked).

        Delegates to the featurizer's own batch path, so each chunk computes
        its history features in one vectorised pass.
        """
        return self.featurizer.featurize_profiles(profiles)

    def _features(self, profiles: list[Profile]) -> np.ndarray:
        missing = [p for p in profiles if profile_key(p) not in self._feature_cache]
        if missing:
            rows = self.featurize_profiles(missing)
            for profile, row in zip(missing, rows):
                self._feature_cache[profile_key(profile)] = row
        return np.stack([self._feature_cache[profile_key(p)] for p in profiles])

    def infer_poi_indices(self, profiles: list[Profile]) -> np.ndarray:
        """Dense POI-index predictions for profiles."""
        if not profiles:
            return np.zeros(0, dtype=int)
        return self.classifier.predict(self._features(profiles))

    def infer_poi(self, profiles: list[Profile]) -> list[int]:
        """POI id (pid) predictions for profiles."""
        indices = self.infer_poi_indices(profiles)
        return [self.featurizer.registry.pid_at(int(i)) for i in indices]

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """1 when both profiles are classified into the same POI, else 0."""
        if not pairs:
            return np.zeros(0, dtype=int)
        left = self.infer_poi_indices([p.left for p in pairs])
        right = self.infer_poi_indices([p.right for p in pairs])
        return (left == right).astype(int)

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Soft score: probability the two profiles share a POI under ``P``."""
        if not pairs:
            return np.zeros(0)
        left = self._features([p.left for p in pairs])
        right = self._features([p.right for p in pairs])
        return self.score_feature_pairs(left, right)

    def score_feature_pairs(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Shared-POI probability from two aligned feature matrices."""
        if len(left) == 0:
            return np.zeros(0)
        left_proba = self.classifier.predict_proba(left)
        right_proba = self.classifier.predict_proba(right)
        return np.sum(left_proba * right_proba, axis=1)

    def decide_feature_pairs(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Same-POI decisions (argmax equality) from two aligned feature matrices."""
        if len(left) == 0:
            return np.zeros(0, dtype=int)
        return (self.classifier.predict(left) == self.classifier.predict(right)).astype(int)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """Pairwise shared-POI probability matrix (clustering input).

        With the POI distributions ``p_i`` already computed per profile the
        matrix is just ``P P^T``; each profile is featurized once.
        """
        if len(profiles) < 2:
            return np.zeros((len(profiles), len(profiles)))
        proba = self.classifier.predict_proba(self._features(profiles))
        return shared_poi_probability_matrix(proba)

    def predict_proba_profiles(self, profiles: list[Profile]) -> np.ndarray:
        """POI probability distributions for profiles (POI-inference experiments)."""
        if not profiles:
            raise NotFittedError("no profiles given")
        return self.classifier.predict_proba(self._features(profiles))
