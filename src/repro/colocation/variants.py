"""Registry entries for every pipeline-backed co-location approach.

The paper's Table 3 approaches are mostly configuration variants of one
:class:`repro.colocation.CoLocationPipeline`; this module registers each of
them under the ``"judge"`` registry kind so they can be built from a plain
configuration dictionary::

    import repro.registry as registry

    approach = registry.build("judge", "history-only", config_dict)
    approach.fit(dataset)

The configuration dictionary is a serialised
:class:`repro.colocation.PipelineConfig` (see
:func:`repro.io.configs.config_to_dict`); the variant factory then forces the
fields that define the variant (feature selection, history encoding, content
encoder or training mode).  Feature-level variants delegate to the
``"featurizer"`` registry kind so the two layers cannot drift apart.

``Comp2Loc`` is the odd one out — it is derived from a *trained* two-phase
pipeline — so it gets a small :class:`Comp2LocApproach` wrapper that either
trains its own pipeline or shares an existing one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

import numpy as np

import repro.registry as registry_mod
from repro.colocation.comp2loc import Comp2LocJudge
from repro.colocation.pipeline import CoLocationPipeline, PipelineConfig
from repro.data.dataset import ColocationDataset
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError, NotFittedError
from repro.registry import register

#: Judge variants that are pure pipeline configurations, keyed by registry
#: name: ``(featurizer-variant name or None, pipeline mode)``.
PIPELINE_VARIANTS: dict[str, tuple[str | None, str]] = {
    "hisrect": (None, "two-phase"),
    "hisrect-sl": (None, "two-phase"),
    "history-only": ("history-only", "two-phase"),
    "tweet-only": ("tweet-only", "two-phase"),
    "one-hot": ("one-hot", "two-phase"),
    "blstm": ("blstm", "two-phase"),
    "convlstm": ("convlstm", "two-phase"),
    "one-phase": (None, "one-phase"),
}


def variant_pipeline_config(name: str, base: PipelineConfig) -> PipelineConfig:
    """Adjust a base pipeline configuration to implement a named variant."""
    if name not in PIPELINE_VARIANTS:
        raise ConfigurationError(
            f"{name!r} is not a pipeline-based approach; choose from {sorted(PIPELINE_VARIANTS)}"
        )
    featurizer_variant, mode = PIPELINE_VARIANTS[name]
    config = replace(base, mode=mode)
    if featurizer_variant is not None:
        from repro.io.configs import config_to_dict

        hisrect = registry_mod.build(
            "featurizer", featurizer_variant, config_to_dict(config.hisrect)
        )
        config = replace(config, hisrect=hisrect)
    if name == "hisrect-sl":
        config = replace(config, ssl=replace(config.ssl, use_unlabeled=False))
    return config


def _register_pipeline_variant(name: str, description: str) -> None:
    def factory(config: dict[str, Any] | None = None) -> CoLocationPipeline:
        from repro.io.configs import config_from_dict

        base = config_from_dict(PipelineConfig, config or {})
        return CoLocationPipeline(variant_pipeline_config(name, base))

    register("judge", name, factory=factory, description=description)


_register_pipeline_variant("hisrect", "the paper's full two-phase HisRect approach")
_register_pipeline_variant("hisrect-sl", "HisRect without the unsupervised SSL loss")
_register_pipeline_variant("history-only", "HisRect on the historical-visit feature only")
_register_pipeline_variant("tweet-only", "HisRect on the recent-tweet content feature only")
_register_pipeline_variant("one-hot", "HisRect with one-hot (untimed) history encoding")
_register_pipeline_variant("blstm", "HisRect with the plain BLSTM content encoder")
_register_pipeline_variant("convlstm", "HisRect with the ConvLSTM content encoder")
_register_pipeline_variant("one-phase", "featurizer and judge trained end-to-end on the pair loss")


@register("judge", "comp2loc", description="naive infer-both-POIs-and-compare judge on HisRect features")
class Comp2LocApproach:
    """Trainable wrapper producing a :class:`Comp2LocJudge` from a dataset.

    Comp2Loc reuses the POI classifier trained alongside the HisRect
    featurizer, so fitting either trains a fresh two-phase pipeline or — via
    :meth:`from_pipeline` — shares one that is already trained.
    """

    def __init__(self, config: PipelineConfig | None = None):
        self.config = variant_pipeline_config("hisrect", config or PipelineConfig())
        self.pipeline: CoLocationPipeline | None = None
        self.model: Comp2LocJudge | None = None

    @classmethod
    def from_config(cls, config: dict[str, Any] | None = None) -> "Comp2LocApproach":
        from repro.io.configs import config_from_dict

        return cls(config_from_dict(PipelineConfig, config or {}))

    def to_config(self) -> dict[str, Any]:
        from repro.io.configs import config_to_dict

        return config_to_dict(self.config)

    @classmethod
    def from_pipeline(cls, pipeline: CoLocationPipeline) -> "Comp2LocApproach":
        """Share an already-trained two-phase pipeline instead of refitting."""
        approach = cls(pipeline.config)
        approach.pipeline = pipeline
        approach.model = pipeline.comp2loc()
        return approach

    # ---------------------------------------------------------------- training
    def fit(self, dataset: ColocationDataset) -> "Comp2LocApproach":
        """Train the backing two-phase pipeline and derive the judge."""
        if self.model is None:
            self.pipeline = CoLocationPipeline(self.config).fit(dataset)
            self.model = self.pipeline.comp2loc()
        return self

    def _require_model(self) -> Comp2LocJudge:
        if self.model is None:
            raise NotFittedError("Comp2LocApproach.fit() has not been called")
        return self.model

    # --------------------------------------------------------------- judgement
    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        return self._require_model().predict_proba(pairs)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        return self._require_model().predict(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        return self._require_model().probability_matrix(profiles)

    def featurize_profiles(self, profiles: list[Profile]) -> np.ndarray:
        return self._require_model().featurize_profiles(profiles)

    def score_feature_pairs(self, left, right) -> np.ndarray:
        return self._require_model().score_feature_pairs(left, right)

    def decide_feature_pairs(self, left, right) -> np.ndarray:
        return self._require_model().decide_feature_pairs(left, right)

    # ------------------------------------------------------------ POI inference
    def infer_poi(self, profiles: list[Profile]) -> list[int]:
        return self._require_model().infer_poi(profiles)

    def infer_poi_indices(self, profiles: list[Profile]) -> np.ndarray:
        return self._require_model().infer_poi_indices(profiles)

    def predict_proba_profiles(self, profiles: list[Profile]) -> np.ndarray:
        return self._require_model().predict_proba_profiles(profiles)
