"""The end-to-end co-location pipeline — the library's main public API.

:class:`CoLocationPipeline` wires every stage of the paper together:

1. build a vocabulary from the training tweets and train skip-gram word
   vectors (Section 4.2);
2. build the HisRect featurizer ``F`` with the configured feature variant;
3. train ``F`` together with the POI classifier ``P`` and the embedding ``E``
   using the semi-supervised framework (Section 4.4) — or train everything
   end-to-end on the pair loss for the One-phase variant;
4. train the co-location judge (``E'`` + ``C``) on labelled pairs with the
   featurizer frozen (Section 5).

The fitted pipeline answers every question the evaluation needs: pair
co-location probabilities and decisions, POI inference distributions (Acc@K),
HisRect feature vectors (t-SNE), pairwise probability matrices (clustering) and
a Comp2Loc judge sharing its featurizer and classifier.

Typical use::

    from repro.data import build_dataset, nyc_like_dataset_config
    from repro.colocation import CoLocationPipeline, PipelineConfig

    dataset = build_dataset(nyc_like_dataset_config(scale=0.5))
    pipeline = CoLocationPipeline(PipelineConfig()).fit(dataset)
    probabilities = pipeline.predict_proba(dataset.test.labeled_pairs)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.colocation.comp2loc import Comp2LocJudge
from repro.colocation.judge import HisRectCoLocationJudge, JudgeConfig
from repro.colocation.onephase import OnePhaseConfig, OnePhaseModel
from repro.data.dataset import ColocationDataset
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError, NotFittedError
from repro.features.content import TextVectorizer
from repro.features.hisrect import EmbeddingNetwork, HisRectConfig, HisRectFeaturizer, POIClassifier
from repro.ssl.affinity import AffinityConfig
from repro.ssl.trainer import SSLTrainingConfig, SemiSupervisedHisRectTrainer, TrainingHistory
from repro.text.skipgram import SkipGramConfig, SkipGramModel
from repro.text.tokenize import Tokenizer, Vocabulary

#: Pipeline training modes.
MODES = ("two-phase", "one-phase")


@dataclass
class PipelineConfig:
    """Every stage's configuration in one object."""

    hisrect: HisRectConfig = field(default_factory=HisRectConfig)
    ssl: SSLTrainingConfig = field(default_factory=SSLTrainingConfig)
    judge: JudgeConfig = field(default_factory=JudgeConfig)
    affinity: AffinityConfig = field(default_factory=AffinityConfig)
    skipgram: SkipGramConfig = field(default_factory=SkipGramConfig)
    onephase: OnePhaseConfig = field(default_factory=OnePhaseConfig)
    #: ``"two-phase"`` (HisRect) or ``"one-phase"`` (end-to-end baseline).
    mode: str = "two-phase"
    #: Minimum word frequency for the vocabulary (the paper uses 10 at full scale).
    min_word_count: int = 2
    #: Cap on the number of POI-classifier layers.
    classifier_layers: int = 2
    seed: int = 97

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(f"mode must be one of {MODES}, got {self.mode!r}")


class CoLocationPipeline:
    """Build, train and apply a complete co-location judgement model."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self.vocabulary: Vocabulary | None = None
        self.skipgram: SkipGramModel | None = None
        self.vectorizer: TextVectorizer | None = None
        self.featurizer: HisRectFeaturizer | None = None
        self.classifier: POIClassifier | None = None
        self.embedding: EmbeddingNetwork | None = None
        self.judge: HisRectCoLocationJudge | None = None
        self.onephase: OnePhaseModel | None = None
        self.ssl_history: TrainingHistory | None = None
        self._dataset: ColocationDataset | None = None
        self._fitted = False

    # ------------------------------------------------------------------ stages
    def _build_text_stack(self, dataset: ColocationDataset) -> None:
        tokenizer = Tokenizer()
        corpus = dataset.training_corpus()
        token_sequences = [tokenizer.tokenize(text) for text in corpus]
        self.vocabulary = Vocabulary.build(token_sequences, min_count=self.config.min_word_count)
        self.skipgram = SkipGramModel(self.vocabulary, self.config.skipgram)
        encoded = [self.vocabulary.encode(tokens) for tokens in token_sequences if tokens]
        self.skipgram.train(encoded)
        self.vectorizer = TextVectorizer(
            self.vocabulary,
            self.skipgram,
            tokenizer=tokenizer,
            max_tokens=16,
            min_tokens=4,
        )

    def _build_models(self, dataset: ColocationDataset) -> None:
        cfg = self.config
        registry = dataset.registry
        vectorizer = self.vectorizer if cfg.hisrect.use_content else None
        self.featurizer = HisRectFeaturizer(registry, vectorizer, cfg.hisrect)
        self.classifier = POIClassifier(
            feature_dim=cfg.hisrect.feature_dim,
            num_pois=len(registry),
            num_layers=cfg.classifier_layers,
            keep_prob=cfg.hisrect.keep_prob,
            init_std=cfg.hisrect.init_std,
            seed=cfg.seed + 1,
        )
        self.embedding = EmbeddingNetwork(
            input_dim=cfg.hisrect.feature_dim,
            embedding_dim=cfg.hisrect.embedding_dim,
            num_layers=cfg.hisrect.num_embedding_layers,
            normalize=True,
            init_std=cfg.hisrect.init_std,
            seed=cfg.seed + 2,
        )

    # --------------------------------------------------------------------- fit
    def fit(self, dataset: ColocationDataset) -> "CoLocationPipeline":
        """Train the full pipeline on a dataset's training split."""
        self._dataset = dataset
        if self.config.hisrect.use_content:
            self._build_text_stack(dataset)
        self._build_models(dataset)
        assert self.featurizer is not None

        train = dataset.train
        if self.config.mode == "one-phase":
            self.onephase = OnePhaseModel(self.featurizer, self.config.onephase)
            self.onephase.fit(train.labeled_pairs)
        else:
            assert self.classifier is not None and self.embedding is not None
            trainer = SemiSupervisedHisRectTrainer(
                self.featurizer,
                self.classifier,
                self.embedding,
                dataset.registry,
                config=self.config.ssl,
                affinity_config=self.config.affinity,
            )
            self.ssl_history = trainer.train(
                train.labeled_profiles, train.labeled_pairs, train.unlabeled_pairs
            )
            self.judge = HisRectCoLocationJudge(self.featurizer, self.config.judge)
            self.judge.fit(train.labeled_pairs)
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("CoLocationPipeline.fit() has not been called")

    # ------------------------------------------------------------- co-location
    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probability per pair."""
        self._require_fitted()
        if self.config.mode == "one-phase":
            assert self.onephase is not None
            return self.onephase.predict_proba(pairs)
        assert self.judge is not None
        return self.judge.predict_proba(pairs)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions (1 = same POI within Δt)."""
        self._require_fitted()
        if self.config.mode == "one-phase":
            assert self.onephase is not None
            return self.onephase.predict(pairs)
        assert self.judge is not None
        return self.judge.predict(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """Pairwise co-location probability matrix for a group of profiles."""
        self._require_fitted()
        if self.config.mode == "one-phase":
            raise ConfigurationError("probability_matrix requires the two-phase pipeline")
        assert self.judge is not None
        return self.judge.probability_matrix(profiles)

    # ------------------------------------------------------------ POI inference
    def infer_poi_proba(self, profiles: list[Profile]) -> np.ndarray:
        """POI probability distributions (dense registry order) per profile."""
        self._require_fitted()
        if self.config.mode == "one-phase" or self.classifier is None or self.featurizer is None:
            raise ConfigurationError("POI inference requires the two-phase pipeline")
        features = self.featurizer.featurize(profiles)
        return self.classifier.predict_proba(features)

    def infer_poi(self, profiles: list[Profile]) -> list[int]:
        """Hard POI (pid) predictions per profile."""
        self._require_fitted()
        assert self.featurizer is not None
        proba = self.infer_poi_proba(profiles)
        registry = self.featurizer.registry
        return [registry.pid_at(int(i)) for i in proba.argmax(axis=1)]

    # ----------------------------------------------------------------- features
    def features(self, profiles: list[Profile]) -> np.ndarray:
        """Frozen HisRect feature vectors (e.g. for the t-SNE visualisation)."""
        self._require_fitted()
        assert self.featurizer is not None
        return self.featurizer.featurize(profiles)

    def comp2loc(self) -> Comp2LocJudge:
        """A Comp2Loc judge sharing this pipeline's featurizer and classifier."""
        self._require_fitted()
        if self.config.mode == "one-phase" or self.classifier is None or self.featurizer is None:
            raise ConfigurationError("Comp2Loc requires the two-phase pipeline")
        return Comp2LocJudge(self.featurizer, self.classifier)
