"""The end-to-end co-location pipeline — the library's main public API.

:class:`CoLocationPipeline` wires every stage of the paper together:

1. build a vocabulary from the training tweets and train skip-gram word
   vectors (Section 4.2);
2. build the HisRect featurizer ``F`` with the configured feature variant;
3. dispatch to the configured :class:`repro.core.TrainingStrategy` —
   ``"two-phase"`` trains ``F`` with the semi-supervised framework
   (Section 4.4) and then the judge ``E'`` + ``C`` on labelled pairs
   (Section 5); ``"one-phase"`` trains everything end-to-end on the pair loss.

The fitted pipeline answers every question the evaluation needs: pair
co-location probabilities and decisions, POI inference distributions (Acc@K),
HisRect feature vectors (t-SNE), pairwise probability matrices (clustering) and
a Comp2Loc judge sharing its featurizer and classifier.  It satisfies the
:class:`repro.core.CoLocationJudge` and :class:`repro.core.FeatureSpaceJudge`
protocols, so it can be served directly through
:class:`repro.api.ColocationEngine`.

Typical use::

    from repro.api import ColocationEngine
    from repro.data import build_dataset, nyc_like_dataset_config
    from repro.colocation import CoLocationPipeline, PipelineConfig

    dataset = build_dataset(nyc_like_dataset_config(scale=0.5))
    pipeline = CoLocationPipeline(PipelineConfig()).fit(dataset)
    engine = ColocationEngine(pipeline)
    probabilities = engine.predict_proba(dataset.test.labeled_pairs)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

import repro.registry as registry_mod
from repro.colocation.comp2loc import Comp2LocJudge
from repro.colocation.judge import HisRectCoLocationJudge, JudgeConfig
from repro.colocation.onephase import OnePhaseConfig, OnePhaseModel
from repro.core.strategy import COMP2LOC, POI_INFERENCE, PROBABILITY_MATRIX, TrainingStrategy
from repro.data.dataset import ColocationDataset
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError, NotFittedError
from repro.features.content import TextVectorizer
from repro.features.hisrect import EmbeddingNetwork, HisRectConfig, HisRectFeaturizer, POIClassifier
from repro.ssl.affinity import AffinityConfig
from repro.ssl.trainer import SSLTrainingConfig, TrainingHistory
from repro.text.skipgram import SkipGramConfig, SkipGramModel
from repro.text.tokenize import Tokenizer, Vocabulary

def training_modes() -> tuple[str, ...]:
    """The registered pipeline training modes (``"strategy"`` registry kind)."""
    return registry_mod.names("strategy")


@dataclass
class PipelineConfig:
    """Every stage's configuration in one object."""

    hisrect: HisRectConfig = field(default_factory=HisRectConfig)
    ssl: SSLTrainingConfig = field(default_factory=SSLTrainingConfig)
    judge: JudgeConfig = field(default_factory=JudgeConfig)
    affinity: AffinityConfig = field(default_factory=AffinityConfig)
    skipgram: SkipGramConfig = field(default_factory=SkipGramConfig)
    onephase: OnePhaseConfig = field(default_factory=OnePhaseConfig)
    #: Training strategy name: ``"two-phase"`` (HisRect) or ``"one-phase"``.
    mode: str = "two-phase"
    #: Minimum word frequency for the vocabulary (the paper uses 10 at full scale).
    min_word_count: int = 2
    #: Cap on the number of POI-classifier layers.
    classifier_layers: int = 2
    seed: int = 97

    def __post_init__(self) -> None:
        modes = training_modes()
        if self.mode not in modes:
            raise ConfigurationError(f"mode must be one of {modes}, got {self.mode!r}")


class CoLocationPipeline:
    """Build, train and apply a complete co-location judgement model."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self.vocabulary: Vocabulary | None = None
        self.skipgram: SkipGramModel | None = None
        self.vectorizer: TextVectorizer | None = None
        self.featurizer: HisRectFeaturizer | None = None
        self.classifier: POIClassifier | None = None
        self.embedding: EmbeddingNetwork | None = None
        self.judge: HisRectCoLocationJudge | None = None
        self.onephase: OnePhaseModel | None = None
        self.ssl_history: TrainingHistory | None = None
        self._dataset: ColocationDataset | None = None
        self._strategy: TrainingStrategy | None = None
        self._fitted = False

    # ------------------------------------------------------------------ config
    @classmethod
    def from_config(cls, config: dict[str, Any] | None = None) -> "CoLocationPipeline":
        """Build an unfitted pipeline from a plain configuration dictionary."""
        from repro.io.configs import config_from_dict

        return cls(config_from_dict(PipelineConfig, config or {}))

    def to_config(self) -> dict[str, Any]:
        """This pipeline's configuration as a plain dictionary."""
        from repro.io.configs import config_to_dict

        return config_to_dict(self.config)

    @property
    def strategy(self) -> TrainingStrategy:
        """The training strategy implementing ``config.mode`` (lazily resolved)."""
        if self._strategy is None or self._strategy.name != self.config.mode:
            self._strategy = registry_mod.build("strategy", self.config.mode)
        return self._strategy

    # ------------------------------------------------------------------ stages
    def _build_text_stack(self, dataset: ColocationDataset) -> None:
        tokenizer = Tokenizer()
        corpus = dataset.training_corpus()
        token_sequences = [tokenizer.tokenize(text) for text in corpus]
        self.vocabulary = Vocabulary.build(token_sequences, min_count=self.config.min_word_count)
        self.skipgram = SkipGramModel(self.vocabulary, self.config.skipgram)
        encoded = [self.vocabulary.encode(tokens) for tokens in token_sequences if tokens]
        self.skipgram.train(encoded)
        self.vectorizer = TextVectorizer(
            self.vocabulary,
            self.skipgram,
            tokenizer=tokenizer,
            max_tokens=16,
            min_tokens=4,
            # Epoch scans revisit every training tweet; keep them all resident
            # so the LRU never thrashes during training.
            cache_size=max(4096, 2 * len(corpus)),
        )

    def _build_featurizer(self, dataset: ColocationDataset) -> HisRectFeaturizer:
        cfg = self.config
        vectorizer = self.vectorizer if cfg.hisrect.use_content else None
        self.featurizer = HisRectFeaturizer(dataset.registry, vectorizer, cfg.hisrect)
        # Like the vectorizer cache: keep every training profile's Fv(r) row
        # resident so epoch scans never thrash the LRU.
        num_profiles = len(dataset.train.labeled_profiles) + len(dataset.train.unlabeled_profiles)
        self.featurizer.history_cache_size = max(
            HisRectFeaturizer.HISTORY_CACHE_SIZE, 2 * num_profiles
        )
        return self.featurizer

    # --------------------------------------------------------------------- fit
    def fit(self, dataset: ColocationDataset) -> "CoLocationPipeline":
        """Train the full pipeline on a dataset's training split."""
        self._dataset = dataset
        if self.config.hisrect.use_content:
            self._build_text_stack(dataset)
        self._build_featurizer(dataset)
        self.strategy.fit(self, dataset)
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("CoLocationPipeline.fit() has not been called")

    def _require_featurizer(self) -> HisRectFeaturizer:
        self._require_fitted()
        if self.featurizer is None:
            raise NotFittedError("the pipeline has no trained featurizer")
        return self.featurizer

    def _require_capability(self, capability: str, question: str) -> None:
        if not self.strategy.supports(capability):
            raise ConfigurationError(
                f"{question} requires the two-phase pipeline (mode is {self.config.mode!r})"
            )

    def _judge_model(self):
        """The fitted judge-like model behind this pipeline's strategy."""
        self._require_fitted()
        return self.strategy.fitted_judge(self)

    # ------------------------------------------------------------- co-location
    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probability per pair."""
        return self._judge_model().predict_proba(pairs)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions (1 = same POI within Δt)."""
        return self._judge_model().predict(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """Pairwise co-location probability matrix for a group of profiles."""
        self._require_fitted()
        self._require_capability(PROBABILITY_MATRIX, "probability_matrix")
        return self._judge_model().probability_matrix(profiles)

    # --------------------------------------------------------- feature scoring
    def featurize_profiles(self, profiles: list[Profile]) -> np.ndarray:
        """Frozen HisRect feature rows for profiles (uncached, chunked)."""
        return self._judge_model().featurize_profiles(profiles)

    def score_feature_pairs(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Co-location probabilities from two aligned feature matrices."""
        return self._judge_model().score_feature_pairs(left, right)

    @property
    def decision_threshold(self) -> float:
        """The probability threshold behind :meth:`predict`."""
        model = self._judge_model()
        return float(getattr(model, "decision_threshold", 0.5))

    # ------------------------------------------------------------ POI inference
    def infer_poi_proba(self, profiles: list[Profile]) -> np.ndarray:
        """POI probability distributions (dense registry order) per profile."""
        self._require_fitted()
        self._require_capability(POI_INFERENCE, "POI inference")
        if self.classifier is None:
            raise NotFittedError("the pipeline has no trained POI classifier")
        features = self._require_featurizer().featurize_profiles(profiles)
        return self.classifier.predict_proba(features)

    def infer_poi(self, profiles: list[Profile]) -> list[int]:
        """Hard POI (pid) predictions per profile."""
        proba = self.infer_poi_proba(profiles)
        registry = self._require_featurizer().registry
        return [registry.pid_at(int(i)) for i in proba.argmax(axis=1)]

    # ----------------------------------------------------------------- features
    def features(self, profiles: list[Profile]) -> np.ndarray:
        """Frozen HisRect feature vectors (e.g. for the t-SNE visualisation)."""
        return self._require_featurizer().featurize_profiles(profiles)

    def comp2loc(self) -> Comp2LocJudge:
        """A Comp2Loc judge sharing this pipeline's featurizer and classifier."""
        self._require_fitted()
        self._require_capability(COMP2LOC, "Comp2Loc")
        if self.classifier is None:
            raise NotFittedError("the pipeline has no trained POI classifier")
        return Comp2LocJudge(self._require_featurizer(), self.classifier)


def _deprecated_modes(qualname: str) -> tuple[str, ...]:
    """Shared body of the ``MODES`` deprecation shims (here and the package)."""
    import warnings

    warnings.warn(
        f"{qualname}.MODES is deprecated; use "
        'repro.registry.names("strategy") or repro.colocation.training_modes() instead',
        DeprecationWarning,
        stacklevel=3,
    )
    return training_modes()


def __getattr__(name: str):
    if name == "MODES":
        return _deprecated_modes(__name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
