""":class:`Finding` — one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One invariant violation: which rule, where, what, and how to fix it."""

    #: Stable rule identifier (``decision-path``, ``wire-safety``, ...).
    rule_id: str
    #: Path as given on the command line, normalized to forward slashes.
    path: str
    #: 1-indexed line of the offending node.
    line: int
    #: What is wrong, phrased against the invariant the rule guards.
    message: str
    #: How to fix it (or how to annotate a deliberate exception).
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        """Baseline identity: line numbers shift, so they are excluded."""
        return f"{self.rule_id}::{self.path}::{self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    def format_text(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.rule_id, finding.message)
