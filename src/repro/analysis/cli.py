"""Command-line driver: ``python -m repro.analysis`` / ``repro-hisrect check``.

Exit codes: ``0`` clean (or every finding baselined), ``1`` at least one
non-baselined finding, ``2`` usage error (unknown rule, bad path, corrupt
baseline).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.framework import (
    AnalysisUsageError,
    Analyzer,
    all_rules,
    collect_files,
    load_sources,
    resolve_rules,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro's AST-based invariant checker (see ROADMAP.md "
        "'Enforced invariants' for the rule catalogue)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to check (default: src)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE}; "
        "a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file entirely"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding, then exit 0",
    )
    parser.add_argument(
        "--rules", default="", help="comma-separated subset of rule ids to run"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the registered rules and exit"
    )
    return parser


def run(
    paths: list[str],
    *,
    format: str = "text",
    baseline_path: str = DEFAULT_BASELINE,
    no_baseline: bool = False,
    write_baseline_file: bool = False,
    rules: str = "",
    stdout=None,
) -> int:
    """The reusable driver behind both entry points; returns the exit code."""
    out = stdout if stdout is not None else sys.stdout
    try:
        rule_names = [name.strip() for name in rules.split(",") if name.strip()]
        analyzer = Analyzer(resolve_rules(rule_names or None))
        files = collect_files(paths)
        baseline = set() if no_baseline else load_baseline(baseline_path)
    except (AnalysisUsageError, BaselineError) as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    sources, parse_errors = load_sources(files)
    findings = parse_errors + analyzer.run(sources)

    if write_baseline_file:
        write_baseline(baseline_path, findings)
        print(
            f"repro.analysis: wrote {len(findings)} fingerprint(s) to {baseline_path}",
            file=out,
        )
        return EXIT_CLEAN

    new, suppressed, stale = split_findings(findings, baseline)
    if format == "json":
        _emit_json(out, analyzer, files, new, suppressed, stale)
    else:
        _emit_text(out, analyzer, files, new, suppressed, stale)
    return EXIT_FINDINGS if new else EXIT_CLEAN


def _emit_text(out, analyzer, files, new, suppressed, stale) -> None:
    for finding in new:
        print(finding.format_text(), file=out)
    parts = [
        f"{len(new)} finding(s)",
        f"{len(suppressed)} baselined",
        f"{len(files)} file(s)",
        f"{len(analyzer.rule_ids)} rule(s)",
    ]
    if stale:
        parts.append(f"{len(stale)} stale baseline entr(y/ies) — consider pruning")
    status = "clean" if not new else "FAILED"
    print(f"repro.analysis: {status} — " + ", ".join(parts), file=out)


def _emit_json(out, analyzer, files, new, suppressed, stale) -> None:
    def encode(finding: Finding, baselined: bool) -> dict:
        entry = finding.to_dict()
        entry["baselined"] = baselined
        return entry

    payload = {
        "version": 1,
        "rules": analyzer.rule_ids,
        "files": len(files),
        "findings": [encode(f, False) for f in new] + [encode(f, True) for f in suppressed],
        "summary": {
            "total": len(new) + len(suppressed),
            "new": len(new),
            "baselined": len(suppressed),
            "stale_baseline": sorted(stale),
        },
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id}: {rule_cls.description}")
        return EXIT_CLEAN
    return run(
        args.paths,
        format=args.format,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        write_baseline_file=args.write_baseline,
        rules=args.rules,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
