"""``python -m repro.analysis`` — the CI entry point."""

import sys

from repro.analysis.cli import main

sys.exit(main())
