"""``stage-taxonomy`` — no transport invents a private stage name.

The trace-stage taxonomy is closed: ``repro.obs.trace`` declares the
canonical pipeline stages (``STAGES``) and store-tier events
(``STORE_EVENTS``), and the runtime parity test ``TestTraceParity`` pins
the four transports to it.  This rule is the static twin: every
``tracer.stage(...)`` / ``record_stage(...)`` / ``record_event(...)`` call
must name a canonical member — either the ``STAGE_*`` / ``EVENT_*``
constant (preferred) or a literal that is in the set.  PR 9 had to chase
down an invented stage literal after the fact; this rejects it up front.

The canonical sets are read from :mod:`repro.obs.trace` at rule
construction, so extending the taxonomy there is automatically reflected
here — the rule enforces membership, not a frozen copy.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.framework import Rule, register
from repro.analysis.source import SourceFile
from repro.obs import trace as _trace

#: The definition site is exempt — it *is* the taxonomy.
_EXCLUDED = ("repro/obs/trace.py",)

#: Call names -> which canonical set the first argument must belong to.
_STAGE_CALLS = {"stage": "stage", "record_stage": "stage", "record_event": "event"}


def _canonical_constants() -> dict[str, str]:
    """``STAGE_*``/``EVENT_*`` constant names -> their canonical values."""
    members = frozenset(_trace.STAGES) | frozenset(_trace.STORE_EVENTS)
    constants = {}
    for name in dir(_trace):
        if not name.startswith(("STAGE_", "EVENT_")):
            continue
        value = getattr(_trace, name)
        if isinstance(value, str) and value in members:
            constants[name] = value
    return constants


@register
class StageTaxonomyRule(Rule):
    rule_id = "stage-taxonomy"
    description = (
        "tracer.stage()/record_stage()/record_event() names must be members "
        "of the canonical taxonomy in repro.obs.trace"
    )

    def __init__(self) -> None:
        self._stages = frozenset(_trace.STAGES)
        self._events = frozenset(_trace.STORE_EVENTS)
        self._constants = _canonical_constants()

    def check_file(self, source: SourceFile) -> list[Finding]:
        if source.matches(*_EXCLUDED):
            return []
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            kind = _STAGE_CALLS.get(name)
            if kind is None or not node.args:
                continue
            findings.extend(self._check_arg(source, node, node.args[0], kind))
        return findings

    def _check_arg(
        self, source: SourceFile, call: ast.Call, arg: ast.expr, kind: str
    ) -> list[Finding]:
        expected = self._stages if kind == "stage" else self._events
        label = "stage" if kind == "stage" else "store event"
        hint = (
            "use the STAGE_*/EVENT_* constants from repro.obs; a genuinely new "
            "stage must be added to the taxonomy in repro/obs/trace.py first"
        )
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in expected:
                return [
                    self.finding(
                        source,
                        call,
                        f"'{arg.value}' is not a canonical {label} name "
                        f"(allowed: {', '.join(sorted(expected))})",
                        hint,
                    )
                ]
            return []
        identifier = ""
        if isinstance(arg, ast.Name):
            identifier = arg.id
        elif isinstance(arg, ast.Attribute):
            identifier = arg.attr
        if identifier:
            value = self._constants.get(identifier)
            if value is None:
                return [
                    self.finding(
                        source,
                        call,
                        f"{label} name '{identifier}' is not one of the canonical "
                        "STAGE_*/EVENT_* constants",
                        hint,
                    )
                ]
            if value not in expected:
                return [
                    self.finding(
                        source,
                        call,
                        f"'{identifier}' is a {'store event' if kind == 'stage' else 'stage'} "
                        f"constant passed where a {label} is expected",
                        hint,
                    )
                ]
            return []
        return [
            self.finding(
                source,
                call,
                f"dynamic {label} name — the taxonomy is closed, pass a "
                "STAGE_*/EVENT_* constant",
                hint,
            )
        ]
