"""``lock-discipline`` — annotated shared state stays under its lock.

Two checks, both comment-driven where the AST has no types to lean on:

* a field assigned with a trailing ``# guarded-by: <lock>`` comment (by
  convention in ``__init__``) may only be read or written inside a
  ``with self.<lock>:`` block.  Methods that run with the lock already
  held by their caller declare it with ``# holds: <lock>`` on the ``def``
  line; ``__init__`` itself is exempt (the object is not shared yet).
* ``featurize*`` / ``encode_batch`` calls must not execute inside any
  lock body — the PR 4 hot-path rule: featurization is the expensive
  stage and serializing it behind a cache lock collapses concurrency.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import Finding
from repro.analysis.framework import Rule, call_name, register, self_attr
from repro.analysis.source import SourceFile

_GUARDED_RE = re.compile(r"guarded-by:\s*([A-Za-z_]\w*)")
_HOLDS_RE = re.compile(r"holds:\s*([A-Za-z_]\w*)")
#: Heuristic for "this with-block is a critical section" (featurize check).
_LOCKISH_RE = re.compile(r"lock|cond|mutex", re.IGNORECASE)
_HOT_CALLS_PREFIX = "featurize"
_HOT_CALLS_EXACT = {"encode_batch"}


def _with_lock_names(node: ast.With | ast.AsyncWith) -> set[str]:
    """Attribute names of ``self.<attr>`` context managers in a with-statement."""
    names = set()
    for item in node.items:
        attr = self_attr(item.context_expr)
        if attr:
            names.add(attr)
    return names


def _lockish_with(node: ast.With | ast.AsyncWith) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Subscript):  # e.g. self._gather_locks[shard]
            expr = expr.value
        attr = self_attr(expr)
        if attr and _LOCKISH_RE.search(attr):
            return True
    return False


class _GuardedAccessVisitor(ast.NodeVisitor):
    """Walks one method body tracking which ``self.<lock>`` blocks are open."""

    def __init__(
        self,
        rule: "LockDisciplineRule",
        source: SourceFile,
        class_name: str,
        guarded: dict[str, str],
        held: frozenset[str],
    ):
        self._rule = rule
        self._source = source
        self._class_name = class_name
        self._guarded = guarded
        self._held = set(held)
        self.findings: list[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        added = _with_lock_names(node) - self._held
        self._held |= added
        for stmt in node.body:
            self.visit(stmt)
        self._held -= added

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self_attr(node)
        if attr and attr in self._guarded and self._guarded[attr] not in self._held:
            lock = self._guarded[attr]
            self.findings.append(
                self._rule.finding(
                    self._source,
                    node,
                    f"'{self._class_name}.{attr}' is guarded-by '{lock}' but accessed "
                    f"outside 'with self.{lock}'",
                    f"take the lock, or mark the method '# holds: {lock}' if the "
                    "caller provably holds it",
                )
            )
        self.generic_visit(node)

    # A nested function runs later, when the enclosing lock is long released:
    # whatever is held lexically is NOT held dynamically, so reset.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: ast.AST) -> None:
        outer, self._held = self._held, set()
        self.generic_visit(node)
        self._held = outer


class _HotCallVisitor(ast.NodeVisitor):
    """Flags featurize/encode_batch calls lexically inside a lock body."""

    def __init__(self, rule: "LockDisciplineRule", source: SourceFile):
        self._rule = rule
        self._source = source
        self._depth = 0
        self.findings: list[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        lockish = _lockish_with(node)
        self._depth += 1 if lockish else 0
        self.generic_visit(node)
        self._depth -= 1 if lockish else 0

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if self._depth > 0 and (
            name.startswith(_HOT_CALLS_PREFIX) or name in _HOT_CALLS_EXACT
        ):
            self.findings.append(
                self._rule.finding(
                    self._source,
                    node,
                    f"'{name}' called inside a lock body — featurization must not "
                    "run under a lock",
                    "featurize outside the critical section, then take the lock "
                    "only to install the result (see ColocationEngine._resolve_features)",
                )
            )
        self.generic_visit(node)


@register
class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    description = (
        "# guarded-by: fields are only touched under their lock; "
        "featurize/encode_batch never run inside a lock body"
    )

    def check_file(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                guarded = self._collect_annotations(source, node)
                if guarded:
                    findings.extend(self._check_class(source, node, guarded))
        hot = _HotCallVisitor(self, source)
        hot.visit(source.tree)
        findings.extend(hot.findings)
        return findings

    def _collect_annotations(
        self, source: SourceFile, class_node: ast.ClassDef
    ) -> dict[str, str]:
        """``self.X = ...  # guarded-by: _lock`` assignments -> {X: _lock}."""
        guarded: dict[str, str] = {}
        for node in ast.walk(class_node):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            else:
                continue
            match = _GUARDED_RE.search(source.comment_on(node.lineno))
            if not match:
                continue
            for target in targets:
                attr = self_attr(target)
                if attr:
                    guarded[attr] = match.group(1)
        return guarded

    def _check_class(
        self, source: SourceFile, class_node: ast.ClassDef, guarded: dict[str, str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for item in class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":  # construction precedes sharing
                continue
            held: set[str] = set()
            holds = _HOLDS_RE.search(source.comment_on(item.lineno))
            if holds:
                held.add(holds.group(1))
            visitor = _GuardedAccessVisitor(
                self, source, class_node.name, guarded, frozenset(held)
            )
            for stmt in item.body:
                visitor.visit(stmt)
            findings.extend(visitor.findings)
        return findings
