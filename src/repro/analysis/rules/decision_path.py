"""``decision-path`` — one decision path, owned by :mod:`repro.api.core`.

The four serving transports (colocation engine, sharded engine,
micro-batcher, worker gateway) must *delegate* every judgement to the one
:class:`repro.api.core.JudgementCore`; PR 5 had to un-fork serve logic that
had been re-implemented per transport.  Three checks enforce that here:

* no ordering comparison against a ``threshold`` in a transport module
  (the probability >= threshold cut is the core's job; ``is None`` guards
  and chained range validations like ``0.0 <= t <= 1.0`` are fine);
* no ``decide_*`` helper defined or called in a transport, except as a
  delegation through ``self._core``;
* every class that owns a ``JudgementCore`` must define all five decision
  surfaces (``predict_proba``/``predict``/``probability_matrix``/``serve``/
  ``serve_batch``) and each must actually call through ``self._core`` —
  deleting a delegation is a finding, not a silent API shrink.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.framework import Rule, call_name, register, self_attr
from repro.analysis.source import SourceFile

#: The transport modules the rule is scoped to (path suffixes).
TRANSPORT_MODULES = (
    "repro/api/engine.py",
    "repro/cluster/sharded.py",
    "repro/cluster/batcher.py",
    "repro/cluster/gateway.py",
)

#: Methods every JudgementCore-owning transport must delegate.
DECISION_SURFACES = ("predict_proba", "predict", "probability_matrix", "serve", "serve_batch")

_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _mentions_threshold(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "threshold" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "threshold" in sub.attr.lower():
            return True
    return False


def _owns_core(class_node: ast.ClassDef) -> bool:
    """True when ``__init__`` assigns ``self._core = JudgementCore(...)``."""
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign):
            continue
        if not any(self_attr(target) == "_core" for target in node.targets):
            continue
        if isinstance(node.value, ast.Call) and call_name(node.value) == "JudgementCore":
            return True
    return False


def _delegates_to_core(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if self_attr(node.func.value) == "_core":
                return True
    return False


@register
class DecisionPathRule(Rule):
    rule_id = "decision-path"
    description = (
        "threshold cuts and decide_* logic live in repro.api.core only; "
        "transports delegate every decision surface to JudgementCore"
    )

    _HINT = (
        "delegate to self._core (repro.api.core.JudgementCore) instead of "
        "re-deciding in the transport"
    )

    def check_file(self, source: SourceFile) -> list[Finding]:
        if not source.matches(*TRANSPORT_MODULES):
            return []
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Compare):
                findings.extend(self._check_compare(source, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("decide_"):
                    findings.append(
                        self.finding(
                            source,
                            node,
                            f"decision helper '{node.name}' defined in a transport module",
                            self._HINT,
                        )
                    )
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(source, node))
            elif isinstance(node, ast.ClassDef):
                findings.extend(self._check_delegation(source, node))
        return findings

    def _check_compare(self, source: SourceFile, node: ast.Compare) -> list[Finding]:
        # Chained comparisons are range validation (0.0 <= t <= 1.0), and
        # is/is-not/==/!= are argument guards — only ordering cuts count.
        if len(node.ops) != 1 or not isinstance(node.ops[0], _ORDERING_OPS):
            return []
        if not _mentions_threshold(node):
            return []
        return [
            self.finding(
                source,
                node,
                "ordering comparison against a threshold in a transport module "
                "— the decision cut belongs to JudgementCore",
                self._HINT,
            )
        ]

    def _check_call(self, source: SourceFile, node: ast.Call) -> list[Finding]:
        name = call_name(node)
        if not name.startswith("decide_"):
            return []
        # Delegation through the core is the one sanctioned call shape.
        if isinstance(node.func, ast.Attribute) and self_attr(node.func.value) == "_core":
            return []
        return [
            self.finding(
                source,
                node,
                f"call to decision helper '{name}' outside the JudgementCore delegation",
                self._HINT,
            )
        ]

    def _check_delegation(self, source: SourceFile, node: ast.ClassDef) -> list[Finding]:
        if not _owns_core(node):
            return []
        findings: list[Finding] = []
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for surface in DECISION_SURFACES:
            method = methods.get(surface)
            if method is None:
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"core-owning transport '{node.name}' is missing decision "
                        f"surface '{surface}'",
                        f"restore 'def {surface}(...)' delegating to self._core.{surface}(...)",
                    )
                )
            elif not _delegates_to_core(method):
                findings.append(
                    self.finding(
                        source,
                        method,
                        f"'{node.name}.{surface}' does not call through self._core "
                        "— single decision path violated",
                        self._HINT,
                    )
                )
        return findings
