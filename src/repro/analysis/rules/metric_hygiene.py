"""``metric-hygiene`` — registry metric names stay consistent and greppable.

Every metric declared against a :class:`repro.obs.MetricsRegistry` (via
``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``) must be
``repro_``-prefixed snake_case, and a given name must carry exactly one
(kind, buckets) signature across the whole tree — declare-or-get is
idempotent at runtime, so a second declaration with a different kind or
bucket layout would silently win or lose depending on import order.

Names are resolved from string literals and from module-level string
constants (``STAGE_METRIC = "repro_stage_latency_ms"``); dynamically
computed names are skipped — they cannot be checked statically.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import Finding
from repro.analysis.framework import Rule, register
from repro.analysis.source import SourceFile

_DECLARING_METHODS = {"counter", "gauge", "histogram"}
_NAME_RE = re.compile(r"^repro_[a-z0-9]+(?:_[a-z0-9]+)*$")
#: Signature placeholder when a histogram takes the registry's default buckets.
_DEFAULT_BUCKETS = "<default>"


def _module_string_constants(tree: ast.Module) -> dict[str, str]:
    constants: dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            constants[node.targets[0].id] = node.value.value
    return constants


@register
class MetricHygieneRule(Rule):
    rule_id = "metric-hygiene"
    description = (
        "metric names are repro_-prefixed snake_case and each name has "
        "exactly one (kind, buckets) declaration signature"
    )

    def __init__(self) -> None:
        #: name -> [(kind, buckets signature, path, line)]
        self._declarations: dict[str, list[tuple[str, str, str, int]]] = {}

    def check_file(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        constants = _module_string_constants(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            kind = node.func.attr
            if kind not in _DECLARING_METHODS or not node.args:
                continue
            name = self._resolve_name(node.args[0], constants)
            if name is None:
                continue  # dynamically computed — not statically checkable
            if not _NAME_RE.match(name):
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"metric name '{name}' is not repro_-prefixed snake_case",
                        "name metrics 'repro_<subsystem>_<quantity>[_total]' "
                        "(lowercase, underscores)",
                    )
                )
            buckets = _DEFAULT_BUCKETS
            if kind == "histogram":
                for keyword in node.keywords:
                    if keyword.arg == "buckets":
                        buckets = ast.unparse(keyword.value)
            self._declarations.setdefault(name, []).append(
                (kind, buckets, source.path, node.lineno)
            )
        return findings

    @staticmethod
    def _resolve_name(arg: ast.expr, constants: dict[str, str]) -> str | None:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.Name):
            return constants.get(arg.id)
        return None

    def finalize(self) -> list[Finding]:
        findings: list[Finding] = []
        for name, sites in sorted(self._declarations.items()):
            first_kind, first_buckets, first_path, first_line = sites[0]
            for kind, buckets, path, line in sites[1:]:
                if kind == first_kind and buckets == first_buckets:
                    continue
                detail = f"as {kind}" if kind != first_kind else f"with buckets={buckets}"
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=path,
                        line=line,
                        message=f"metric '{name}' redeclared {detail} — first declared "
                        f"as {first_kind} at {first_path}:{first_line}",
                        hint="a metric keeps one (name, kind, buckets) signature for "
                        "its whole life; declare it in one place and share it",
                    )
                )
        return findings
