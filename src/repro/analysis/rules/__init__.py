"""The default rule set — one module per ROADMAP invariant."""

from repro.analysis.rules.decision_path import DecisionPathRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.metric_hygiene import MetricHygieneRule
from repro.analysis.rules.stage_taxonomy import StageTaxonomyRule
from repro.analysis.rules.wire_safety import WireSafetyRule

DEFAULT_RULES = (
    DecisionPathRule,
    LockDisciplineRule,
    MetricHygieneRule,
    StageTaxonomyRule,
    WireSafetyRule,
)

__all__ = [
    "DEFAULT_RULES",
    "DecisionPathRule",
    "LockDisciplineRule",
    "MetricHygieneRule",
    "StageTaxonomyRule",
    "WireSafetyRule",
]
