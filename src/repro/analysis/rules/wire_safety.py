"""``wire-safety`` — nothing executable crosses the wire.

The cluster protocol (PR 6) deliberately ships JSON headers plus raw
ndarray bytes so a hostile or corrupted peer can never execute code in the
gateway.  This rule keeps that property local to the three wire-path
modules (``wire.py``, ``worker.py``, ``gateway.py``):

* ``pickle``/``marshal`` imports, ``eval``/``exec`` calls, and
  ``__reduce__`` hooks are banned (the worker's on-disk judge bundle is the
  one sanctioned exception, waived inline with ``# repro: allow(wire-safety)``
  because it never touches a socket);
* every ``FRAME_*`` constant is declared exactly once, and only in
  ``repro/cluster/wire.py`` — duplicate or stray frame ids are how two
  peers silently disagree about a protocol;
* a payload-sized read (``readexactly``/``_recv_exactly`` with a computed
  length) must be preceded in the same function by ``_parse_header`` (or an
  explicit ``max_frame_bytes`` bound), so a forged length cannot drive an
  unbounded allocation.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import Finding
from repro.analysis.framework import Rule, call_name, register
from repro.analysis.source import SourceFile

#: The wire-path modules the rule is scoped to (path suffixes).
WIRE_MODULES = (
    "repro/cluster/wire.py",
    "repro/cluster/worker.py",
    "repro/cluster/gateway.py",
)

_BANNED_MODULES = {"pickle", "cPickle", "marshal"}
_BANNED_CALLS = {"eval", "exec"}
_REDUCE_HOOKS = {"__reduce__", "__reduce_ex__"}
_FRAME_NAME = re.compile(r"^FRAME_[A-Z0-9_]+$")
_SIZED_READS = {"readexactly", "_recv_exactly", "recv_exactly"}

_WIRE_HOME = "repro/cluster/wire.py"


@register
class WireSafetyRule(Rule):
    rule_id = "wire-safety"
    description = (
        "no pickle/marshal/eval/exec/__reduce__ in wire-path modules; frame "
        "constants declared once in wire.py; length-checked payload reads"
    )

    def __init__(self) -> None:
        #: FRAME_* name -> [(path, line)] across every scanned wire module.
        self._frames: dict[str, list[tuple[str, int]]] = {}

    def check_file(self, source: SourceFile) -> list[Finding]:
        if not source.matches(*WIRE_MODULES):
            return []
        findings: list[Finding] = []
        self._collect_frames(source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                findings.extend(
                    self._banned_import(source, node, alias.name) for alias in node.names
                    if alias.name.split(".")[0] in _BANNED_MODULES
                )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in _BANNED_MODULES:
                    findings.append(self._banned_import(source, node, node.module))
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in _BANNED_CALLS:
                    findings.append(
                        self.finding(
                            source,
                            node,
                            f"call to '{node.func.id}' in a wire-path module",
                            "wire payloads are data, never code — decode them explicitly",
                        )
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in _BANNED_MODULES
                ):
                    # Each use site needs its own waiver — an allowed import
                    # must not silently bless every call that follows it.
                    findings.append(
                        self.finding(
                            source,
                            node,
                            f"'{node.func.value.id}.{node.func.attr}' call in a "
                            "wire-path module",
                            "object serialization stays off the wire; a documented "
                            "non-wire path may carry '# repro: allow(wire-safety)'",
                        )
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in _REDUCE_HOOKS:
                    findings.append(
                        self.finding(
                            source,
                            node,
                            f"'{node.name}' defined in a wire-path module — objects "
                            "crossing the wire must not customize serialization",
                            "encode explicit fields via repro.cluster.wire instead",
                        )
                    )
                findings.extend(self._check_sized_reads(source, node))
        return findings

    def _banned_import(self, source: SourceFile, node: ast.AST, module: str) -> Finding:
        return self.finding(
            source,
            node,
            f"import of '{module}' in a wire-path module — object serialization "
            "on the wire is banned",
            "frames carry JSON headers + raw ndarray bytes (repro.cluster.wire); "
            "a documented non-wire path may carry '# repro: allow(wire-safety)'",
        )

    def _collect_frames(self, source: SourceFile) -> None:
        for node in source.tree.body:  # module level only: that's where constants live
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and _FRAME_NAME.match(target.id):
                    self._frames.setdefault(target.id, []).append((source.path, node.lineno))

    def _check_sized_reads(
        self, source: SourceFile, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        guard_line: int | None = None
        reads: list[tuple[int, str]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name == "_parse_header":
                    guard_line = node.lineno if guard_line is None else min(guard_line, node.lineno)
                elif name in _SIZED_READS and node.args:
                    size = node.args[-1]
                    if isinstance(size, ast.Name):  # computed length, not a struct .size
                        reads.append((node.lineno, size.id))
            elif isinstance(node, ast.Compare):
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.Name, ast.Attribute)):
                        ident = sub.id if isinstance(sub, ast.Name) else sub.attr
                        if ident == "max_frame_bytes":
                            guard_line = (
                                node.lineno if guard_line is None else min(guard_line, node.lineno)
                            )
        findings = []
        for lineno, size_name in reads:
            if guard_line is None or lineno < guard_line:
                findings.append(
                    self.finding(
                        source,
                        lineno,
                        f"payload-sized read of '{size_name}' bytes without a prior "
                        "header length check",
                        "call _parse_header (which enforces max_frame_bytes) before "
                        "reading a computed number of bytes",
                    )
                )
        return findings

    def finalize(self) -> list[Finding]:
        findings: list[Finding] = []
        for name, sites in sorted(self._frames.items()):
            first_path, first_line = sites[0]
            for path, line in sites[1:]:
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=path,
                        line=line,
                        message=f"frame constant '{name}' redeclared (first declared at "
                        f"{first_path}:{first_line})",
                        hint="frame ids are declared exactly once, in repro/cluster/wire.py",
                    )
                )
            for path, line in sites:
                if not path.endswith(_WIRE_HOME):
                    findings.append(
                        Finding(
                            rule_id=self.rule_id,
                            path=path,
                            line=line,
                            message=f"frame constant '{name}' declared outside "
                            "repro/cluster/wire.py",
                            hint="import frame ids from repro.cluster.wire instead of "
                            "redefining them",
                        )
                    )
        return findings
