""":class:`SourceFile` — a parsed source file plus the comments AST drops.

Two of the analyzer's rules are driven by *comments* (``# guarded-by:
<lock>`` field annotations, ``# holds: <lock>`` method contracts, and the
``# repro: allow(<rule-id>)`` inline waiver), which :mod:`ast` discards.
This wrapper tokenizes the file once and keeps a line-indexed comment map
next to the parse tree so every rule sees both.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

#: Inline waiver: ``# repro: allow(wire-safety) — bundle bootstrap``.
#: Suppresses findings of the named rule(s) on that line (or the line
#: directly below a standalone comment).  ``allow(*)`` waives every rule.
_ALLOW_RE = re.compile(r"repro:\s*allow\(\s*([a-z0-9_*,\s-]+?)\s*\)")


class SourceFile:
    """One file's text, parse tree, and comment-derived annotations."""

    def __init__(self, path: str, text: str):
        self.path = str(path).replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=self.path)
        #: 1-indexed line -> raw comment text (``#`` included).
        self.comments: dict[int, str] = {}
        try:
            for token in tokenize.generate_tokens(io.StringIO(text).readline):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:  # pragma: no cover - ast.parse catches worse
            pass
        #: 1-indexed line -> rule ids waived on that line.
        self.allowed: dict[int, set[str]] = {}
        for lineno, comment in self.comments.items():
            match = _ALLOW_RE.search(comment)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                self.allowed[lineno] = {rule for rule in rules if rule}

    @classmethod
    def from_path(cls, path: str) -> "SourceFile":
        with open(path, encoding="utf-8") as handle:
            return cls(str(path), handle.read())

    @classmethod
    def from_text(cls, text: str, path: str = "<memory>") -> "SourceFile":
        """Parse an in-memory snippet under a pretend path.

        Rules scope themselves by path suffix, so tests aim fixture text at
        the module it impersonates (``src/repro/cluster/wire.py``, ...).
        """
        return cls(path, text)

    def matches(self, *suffixes: str) -> bool:
        """True when this file's path ends with any of the given suffixes."""
        return any(self.path.endswith(suffix) for suffix in suffixes)

    def comment_on(self, lineno: int) -> str:
        return self.comments.get(lineno, "")

    def is_allowed(self, rule_id: str, lineno: int) -> bool:
        """True when an inline waiver covers ``rule_id`` at ``lineno``."""
        for candidate in (lineno, lineno - 1):
            rules = self.allowed.get(candidate)
            if rules and (rule_id in rules or "*" in rules):
                return True
        return False
