"""Shared rule/visitor framework for the invariant checker.

A :class:`Rule` is instantiated once per run and sees every file twice
conceptually: :meth:`Rule.check_file` for per-file findings, then
:meth:`Rule.finalize` for cross-file invariants (duplicate frame constants,
conflicting metric declarations) after the whole tree has been walked.
Rules are registered by the :func:`register` decorator; the default rule
set lives in :mod:`repro.analysis.rules`.

The :class:`Analyzer` applies inline ``# repro: allow(<rule-id>)`` waivers
uniformly — rules never have to know about suppression — and returns the
surviving findings sorted by location.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, sort_key
from repro.analysis.source import SourceFile


class AnalysisUsageError(ValueError):
    """Bad invocation (unknown rule id, nonexistent path): exit code 2."""


class Rule:
    """Base class: one invariant, one stable ``rule_id``."""

    rule_id: str = ""
    description: str = ""

    def check_file(self, source: SourceFile) -> list[Finding]:
        return []

    def finalize(self) -> list[Finding]:
        """Cross-file findings, emitted after every file has been checked."""
        return []

    def finding(
        self, source: SourceFile, node: ast.AST | int, message: str, hint: str = ""
    ) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            rule_id=self.rule_id, path=source.path, line=line, message=message, hint=hint
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Every registered rule, importing the default set on first use."""
    import repro.analysis.rules  # noqa: F401  (populates _REGISTRY)

    return dict(_REGISTRY)


def resolve_rules(names: Sequence[str] | None = None) -> list[type[Rule]]:
    registry = all_rules()
    if not names:
        return [registry[rule_id] for rule_id in sorted(registry)]
    chosen = []
    for name in names:
        if name not in registry:
            known = ", ".join(sorted(registry))
            raise AnalysisUsageError(f"unknown rule '{name}' (known: {known})")
        chosen.append(registry[name])
    return chosen


def collect_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                files.extend(
                    os.path.join(root, name) for name in sorted(names) if name.endswith(".py")
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise AnalysisUsageError(f"no such file or directory: {path}")
    unique: dict[str, None] = {}
    for path in files:
        unique.setdefault(path.replace("\\", "/"), None)
    return list(unique)


def load_sources(files: Iterable[str]) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every file; unparseable files become ``syntax-error`` findings."""
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    for path in files:
        try:
            sources.append(SourceFile.from_path(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule_id="syntax-error",
                    path=str(path).replace("\\", "/"),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return sources, errors


class Analyzer:
    """Runs a rule set over parsed sources and applies inline waivers."""

    def __init__(self, rules: Sequence[type[Rule]] | None = None):
        self._rule_classes = list(rules) if rules is not None else resolve_rules()

    @property
    def rule_ids(self) -> list[str]:
        return [cls.rule_id for cls in self._rule_classes]

    def run(self, sources: Iterable[SourceFile]) -> list[Finding]:
        sources = list(sources)
        by_path = {source.path: source for source in sources}
        rules = [cls() for cls in self._rule_classes]
        findings: list[Finding] = []
        for source in sources:
            for rule in rules:
                findings.extend(rule.check_file(source))
        for rule in rules:
            findings.extend(rule.finalize())
        kept = []
        for finding in findings:
            source = by_path.get(finding.path)
            if source is not None and source.is_allowed(finding.rule_id, finding.line):
                continue
            kept.append(finding)
        return sorted(set(kept), key=sort_key)


def call_name(node: ast.AST) -> str:
    """Terminal identifier of a call target: ``a.b.c(...)`` -> ``c``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def self_attr(node: ast.AST) -> str:
    """``self.<attr>`` -> ``attr``; anything else -> empty string."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""
