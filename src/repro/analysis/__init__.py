"""``repro.analysis`` — the repo's own AST-based invariant checker.

The ROADMAP's correctness contract (one decision path across the four
transports, no pickle on the wire, lock discipline around shared engine
state, a closed trace-stage taxonomy, metric naming hygiene) used to live
only as prose plus after-the-fact parity tests.  This package turns each
clause into a static rule over the source tree, so a violation is rejected
at review time instead of retrofitted after a regression.

Run it as ``python -m repro.analysis src/`` or ``repro-hisrect check``:
every rule walks the parsed AST of each file (stdlib :mod:`ast` only — no
third-party linter framework), emits :class:`Finding` records carrying the
rule id, ``file:line``, a message and a fix hint, and the process exits
non-zero on any finding not grandfathered by the committed baseline file.

Deliberate exceptions are annotated inline (``# repro: allow(<rule-id>)``)
next to the code they excuse; the baseline is for *grandfathered* findings
only and is kept empty — see ROADMAP.md "Enforced invariants".
"""

from repro.analysis.findings import Finding
from repro.analysis.framework import Analyzer, Rule, all_rules
from repro.analysis.source import SourceFile

__all__ = [
    "Analyzer",
    "Finding",
    "Rule",
    "SourceFile",
    "all_rules",
]
