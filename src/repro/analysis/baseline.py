"""Baseline file — grandfathered findings the checker tolerates.

The baseline is a committed JSON file of finding fingerprints (rule id +
path + message; line numbers are excluded so unrelated edits don't churn
it).  A finding whose fingerprint is baselined is reported but does not
fail the run; everything else exits non-zero.  The repo's policy is to keep
the baseline **empty** — it exists so a future emergency can land with an
explicit, reviewable IOU instead of a disabled checker.
"""

from __future__ import annotations

import json
import os

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = "analysis-baseline.json"


class BaselineError(ValueError):
    """The baseline file exists but cannot be understood."""


def load_baseline(path: str) -> set[str]:
    """Fingerprints in the baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or not isinstance(data.get("fingerprints"), list):
        raise BaselineError(f"{path}: expected {{'version', 'fingerprints': [...]}}")
    return {str(entry) for entry in data["fingerprints"]}


def write_baseline(path: str, findings: list[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({finding.fingerprint for finding in findings}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def split_findings(
    findings: list[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding], set[str]]:
    """Partition into (new, baselined) and report stale baseline entries."""
    new: list[Finding] = []
    suppressed: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        if finding.fingerprint in baseline:
            suppressed.append(finding)
            seen.add(finding.fingerprint)
        else:
            new.append(finding)
    return new, suppressed, baseline - seen
