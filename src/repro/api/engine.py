""":class:`ColocationEngine` — a fitted judge behind a batched, cached facade.

The engine exists because every online application asks the same two
questions (score these pairs / score this group) and pays the same hidden
cost: featurizing profiles.  The judges that separate featurization from pair
scoring (:class:`repro.core.FeatureSpaceJudge`) let the engine keep one
bounded LRU cache of per-profile feature rows shared by *all* entry points —
``predict_proba``, ``probability_matrix``, the sliding-window services — so a
profile seen by several services in the same Δt window is featurized once.

Judges without the feature-level interface (the social judge, duck-typed test
stubs) still work: the engine falls back to their ``predict_proba`` and the
generic pairwise matrix.

Decision and serving logic itself lives in :class:`repro.api.JudgementCore`
— shared verbatim with :class:`repro.cluster.ShardedEngine`, so the two
transports cannot diverge.  The engine contributes the feature cache (its
``_resolve_features`` is the core's ``gather``) and the chunk-canonical
``_score_batched`` scorer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.api.core import CallCacheStats, JudgementCore
from repro.api.messages import JudgeRequest, JudgeResponse
from repro.core.protocols import (
    ProfileKey,
    RevisionedKeyIndex,
    featurizer_dim,
    profile_key,
)
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EngineCacheInfo:
    """Snapshot of the engine's feature-cache statistics."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    #: Total profile rows pushed through the featurizer so far.
    featurized: int
    #: Rows dropped by explicit ``invalidate``/``invalidate_stale`` calls.
    invalidated: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of feature lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @classmethod
    def merge(cls, infos: Iterable["EngineCacheInfo"]) -> "EngineCacheInfo":
        """Aggregate shard-level snapshots into one cluster-level snapshot.

        Counters, sizes and capacities sum; ``hit_rate`` derives from the
        summed counters.  An empty iterable merges to the all-zero snapshot
        (whose ``hit_rate`` is 0.0, matching a cache that saw no lookups).
        """
        hits = misses = evictions = size = maxsize = featurized = invalidated = 0
        for info in infos:
            hits += info.hits
            misses += info.misses
            evictions += info.evictions
            size += info.size
            maxsize += info.maxsize
            featurized += info.featurized
            invalidated += info.invalidated
        return cls(
            hits=hits,
            misses=misses,
            evictions=evictions,
            size=size,
            maxsize=maxsize,
            featurized=featurized,
            invalidated=invalidated,
        )


class ColocationEngine:
    """Serve a fitted co-location judge to online applications.

    Parameters
    ----------
    judge:
        Any fitted judge satisfying :class:`repro.core.CoLocationJudge` (or
        at minimum exposing ``predict_proba``): a pipeline, the HisRect
        judge, the One-phase model, Comp2Loc, the social judge, a baseline.
    cache_size:
        Maximum number of per-profile feature rows kept in the LRU cache.
        ``0`` disables caching (every call featurizes from scratch).
    threshold:
        Decision threshold for :meth:`predict` / :meth:`serve`.  ``None``
        adopts the judge's own ``decision_threshold`` (default 0.5).
    batch_size:
        Pairs scored per network invocation, bounding autograd graph size.
    registry:
        Optional explicit POI registry; by default it is taken from the
        judge's featurizer, so services can derive it from the engine.
    """

    def __init__(
        self,
        judge,
        *,
        cache_size: int = 4096,
        threshold: float | None = None,
        batch_size: int = 1024,
        registry=None,
    ):
        if not hasattr(judge, "predict_proba"):
            raise ConfigurationError("judge must expose predict_proba(pairs)")
        if cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.judge = judge
        self.cache_size = cache_size
        self.batch_size = batch_size
        self._registry = registry
        #: The shared decision/serve logic (one path for engine, shards and
        #: batcher), parameterized on this engine's cache-backed gather and
        #: chunk-canonical scorer.  Validates ``threshold``.
        self._core = JudgementCore(
            judge,
            gather=self._resolve_features,
            scorer=self._score_batched,
            explicit_threshold=threshold,
        )
        self._cache: OrderedDict[ProfileKey, np.ndarray] = OrderedDict()
        #: Per-uid index over resident keys: answers ``invalidate(uids)`` /
        #: ``invalidate_stale()`` in O(rows dropped) and detects rows a
        #: fresher revision supersedes.  Mutated only under the lock.
        self._index = RevisionedKeyIndex()
        #: Guards the cache and its counters.  Featurization itself runs
        #: outside the lock so concurrent callers only serialise on the
        #: bookkeeping, not on the network forward.
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._featurized = 0
        self._invalidations = 0
        #: Invalidated-row count not yet reported by a gather call: drained
        #: into the next call's :class:`CallCacheStats`, so typed responses
        #: surface the invalidation traffic that preceded them (the batcher
        #: processes invalidations first in a flush; the flush's serves then
        #: account them).
        self._pending_invalidated = 0

    # --------------------------------------------------------------- plumbing
    @classmethod
    def ensure(cls, judge_or_engine, **kwargs) -> "ColocationEngine":
        """Pass an engine through unchanged; wrap a raw judge."""
        if isinstance(judge_or_engine, ColocationEngine):
            return judge_or_engine
        return cls(judge_or_engine, **kwargs)

    @property
    def threshold(self) -> float:
        """The decision threshold applied by :meth:`predict` and :meth:`serve`."""
        return self._core.threshold

    @property
    def registry(self):
        """The POI registry behind the judge's featurizer (or the explicit one)."""
        if self._registry is not None:
            return self._registry
        featurizer = getattr(self.judge, "featurizer", None)
        registry = getattr(featurizer, "registry", None)
        if registry is None:
            raise ConfigurationError(
                "the wrapped judge exposes no POI registry; pass registry= explicitly"
            )
        return registry

    @property
    def _feature_space(self) -> bool:
        return self._core.feature_space

    # ----------------------------------------------------------- feature cache
    def _features_for(self, profiles: list[Profile]) -> np.ndarray:
        """Feature rows for profiles through the LRU; featurizes misses once.

        Duplicate profiles within one call are deduplicated before touching
        the featurizer, so each distinct profile is featurized exactly once
        even with a disabled cache.

        Thread-safe: cache reads/writes and counter updates hold the engine
        lock; featurization of the misses runs outside it so concurrent
        callers overlap on the expensive part.  Two threads missing the same
        profile simultaneously both featurize it (both misses are counted,
        last insert wins) — wasted work, never corruption of *this* cache.
        The wrapped judge's ``featurize_profiles`` must itself tolerate the
        resulting concurrency; judges with unsynchronised internal caches
        (the HisRect featurizer) should be driven by one thread at a time,
        which is how :class:`repro.cluster.ShardedEngine` schedules them
        (one gather lock per judge replica).
        """
        rows, _ = self._resolve_features(profiles)
        return rows

    def _resolve_features(self, profiles: list[Profile]) -> tuple[np.ndarray, "CallCacheStats"]:
        """:meth:`_features_for` plus this call's own cache statistics.

        The stats are local to the call (its hits, misses and the ``len`` of
        the miss batch it featurized), so concurrent callers never leak into
        each other's accounting the way a before/after read of the global
        counters would.
        """
        keys = [profile_key(p) for p in profiles]
        missing: dict[ProfileKey, Profile] = {}
        resolved: dict[ProfileKey, np.ndarray] = {}
        call_hits = 0
        with self._lock:
            for key, profile in zip(keys, profiles):
                if key in resolved or key in missing:
                    continue
                row = self._cache.get(key)
                if row is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    call_hits += 1
                    resolved[key] = row
                else:
                    self._misses += 1
                    missing[key] = profile
        if missing:
            batch = list(missing.values())
            rows = self.judge.featurize_profiles(batch)
            with self._lock:
                self._featurized += len(batch)
                for profile, row in zip(batch, rows):
                    key = profile_key(profile)
                    resolved[key] = row
                    if self.cache_size > 0:
                        self._insert_row_locked(key, row)
        with self._lock:
            call_invalidated = self._pending_invalidated
            self._pending_invalidated = 0
        stats = CallCacheStats(
            hits=call_hits,
            misses=len(missing),
            featurized=len(missing),
            invalidated=call_invalidated,
        )
        return np.stack([resolved[key] for key in keys]), stats

    def _insert_row_locked(self, key: ProfileKey, row: np.ndarray) -> None:
        """Insert one row under the lock, indexing it and enforcing the bound.

        Insertion never drops other revisions of the same user: with
        revision-exact keys every resident row is correct for its own key,
        and older generations stay legitimately queryable (timeline replay,
        the sliding window's not-yet-expired profiles).  Reclaiming dead
        revisions is the caller's explicit decision — :meth:`invalidate` /
        :meth:`invalidate_stale` — not an insert side effect.
        """
        # Copy: the row is a view into the whole featurized batch, and
        # caching the view would pin that batch in memory.
        self._cache[key] = np.array(row, copy=True)
        self._cache.move_to_end(key)
        self._index.register(key)
        while len(self._cache) > self.cache_size:
            evicted, _ = self._cache.popitem(last=False)
            self._index.discard(evicted)
            self._evictions += 1

    # ------------------------------------------------------------ invalidation
    def invalidate(self, uids: Iterable[int]) -> int:
        """Drop every cached feature row of the given users; returns rows dropped.

        The live-mutation hook: a user whose visit history changed outside
        the revision-stamped path (or whose old rows should be reclaimed
        eagerly) gets all resident rows — any timestamp, any revision —
        removed, so the next lookup re-featurizes.  Revision-exact keys
        already prevent *serving* a stale row; invalidation reclaims the
        memory and keeps ``cache_info`` honest about live users.
        """
        with self._lock:
            dropped = 0
            for key in self._index.keys_of(uids):
                if self._cache.pop(key, None) is not None:
                    dropped += 1
                self._index.discard(key)
            self._invalidations += dropped
            self._pending_invalidated += dropped
            return dropped

    def invalidate_stale(self) -> int:
        """Drop resident rows superseded by a higher observed revision.

        Unrevisioned rows (profiles built outside the builders) are never
        dropped — they carry no ordering to judge staleness by.
        Returns the rows dropped.
        """
        with self._lock:
            dropped = 0
            for key in self._index.stale_keys():
                if self._cache.pop(key, None) is not None:
                    dropped += 1
                self._index.discard(key)
            self._invalidations += dropped
            self._pending_invalidated += dropped
            return dropped

    def warm(self, profiles: list[Profile]) -> int:
        """Pre-featurize profiles into the cache; returns rows featurized.

        The count covers this call only — concurrent callers featurizing at
        the same time do not inflate it.
        """
        if not profiles or not self._feature_space:
            return 0
        _, stats = self._resolve_features(profiles)
        return stats.featurized

    def cache_info(self) -> EngineCacheInfo:
        """Current feature-cache statistics (a consistent snapshot)."""
        with self._lock:
            return EngineCacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._cache),
                maxsize=self.cache_size,
                featurized=self._featurized,
                invalidated=self._invalidations,
            )

    def clear_cache(self) -> None:
        """Drop every cached feature row (keeps the counters)."""
        with self._lock:
            self._cache.clear()
            self._index.clear()

    def export_cache(self) -> dict[ProfileKey, np.ndarray]:
        """Copy the cached feature rows, LRU order preserved (coldest first).

        The snapshot half of shard warm-start: a restarted worker calls
        :meth:`import_cache` with a previous incarnation's export and serves
        its first window from a hot cache instead of refeaturizing it.
        """
        with self._lock:
            return {key: np.array(row, copy=True) for key, row in self._cache.items()}

    def import_cache(self, rows: dict[ProfileKey, np.ndarray]) -> int:
        """Install previously exported feature rows; returns imported rows kept.

        Imported rows count as neither hits nor misses (they were computed by
        another engine); the LRU bound still applies, so importing more rows
        than ``cache_size`` keeps only the hottest (last-iterated) tail of
        the export.  The return value counts imported rows still resident
        after the bound was enforced — evictions of pre-existing rows do not
        subtract from it.
        """
        if self.cache_size == 0:
            return 0
        with self._lock:
            for key, row in rows.items():
                self._insert_row_locked(key, row)
            return sum(1 for key in rows if key in self._cache)

    # -------------------------------------------------------------- judgement
    def _score_batched(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        # A single-pair chunk is padded with a duplicate row and the extra
        # score dropped, for the same reason as featurize_in_chunks: the
        # B=1 BLAS path drifts ~1e-16 from the batched kernel, and scores
        # must not depend on how a workload was chunked or coalesced.
        chunks = []
        for start in range(0, len(left), self.batch_size):
            stop = start + self.batch_size
            chunk_left, chunk_right = left[start:stop], right[start:stop]
            if len(chunk_left) == 1:
                doubled = self.judge.score_feature_pairs(
                    np.concatenate([chunk_left, chunk_left]),
                    np.concatenate([chunk_right, chunk_right]),
                )
                chunks.append(np.asarray(doubled)[:1])
            else:
                chunks.append(self.judge.score_feature_pairs(chunk_left, chunk_right))
        return np.concatenate(chunks) if chunks else np.zeros(0)

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probability per pair (batched, feature-cached).

        Both sides resolve in one gather, so a profile appearing on both
        sides of the batch featurizes once even with ``cache_size=0``.
        """
        return self._core.predict_proba(pairs)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions per pair.

        Follows the judge's own decision rule — including non-threshold
        rules like Comp2Loc's argmax equality — unless the engine was given
        an explicit ``threshold``, which then cuts the probabilities.
        """
        return self._core.predict(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """The ``N x N`` pairwise probability matrix, featurizing each profile once."""
        return self._core.probability_matrix(profiles)

    def features(self, profiles: list[Profile]) -> np.ndarray:
        """Cached frozen feature rows for profiles (t-SNE, diagnostics)."""
        if not self._feature_space:
            raise ConfigurationError(
                "the wrapped judge has no feature-level interface (FeatureSpaceJudge)"
            )
        if not profiles:
            featurizer = getattr(self.judge, "featurizer", None)
            return np.zeros((0, featurizer_dim(featurizer)))
        return self._features_for(profiles)

    # ---------------------------------------------------------- POI inference
    def infer_poi_proba(self, profiles: list[Profile]) -> np.ndarray:
        """POI probability distributions per profile (two-phase judges only)."""
        if not hasattr(self.judge, "infer_poi_proba"):
            raise ConfigurationError("the wrapped judge does not support POI inference")
        return self.judge.infer_poi_proba(profiles)

    def infer_poi(self, profiles: list[Profile]) -> list[int]:
        """Hard POI (pid) predictions per profile (two-phase judges only)."""
        if not hasattr(self.judge, "infer_poi"):
            raise ConfigurationError("the wrapped judge does not support POI inference")
        return self.judge.infer_poi(profiles)

    # ----------------------------------------------------------------- serving
    def serve(self, request: JudgeRequest) -> JudgeResponse:
        """Answer one typed judgement request.

        With no explicit threshold (neither on the request nor on the
        engine), decisions follow the judge's own rule — matching
        :meth:`predict`, including non-threshold rules like Comp2Loc's
        argmax equality.  An explicit threshold cuts the probabilities.
        """
        return self._core.serve(request)

    def serve_batch(self, requests: Iterable[JudgeRequest]) -> list[JudgeResponse]:
        """Answer typed requests together, scoring them as one coalesced batch.

        See :meth:`repro.api.JudgementCore.serve_batch` — this is the entry
        point ``MicroBatcher.submit_serve`` flushes through.
        """
        return self._core.serve_batch(requests)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"ColocationEngine(judge={type(self.judge).__name__}, "
            f"cache={info.size}/{info.maxsize}, hit_rate={info.hit_rate:.2f})"
        )
