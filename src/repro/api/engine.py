""":class:`ColocationEngine` — a fitted judge behind a batched, cached facade.

The engine exists because every online application asks the same two
questions (score these pairs / score this group) and pays the same hidden
cost: featurizing profiles.  The judges that separate featurization from pair
scoring (:class:`repro.core.FeatureSpaceJudge`) let the engine keep one
bounded feature store of per-profile rows shared by *all* entry points —
``predict_proba``, ``probability_matrix``, the sliding-window services — so a
profile seen by several services in the same Δt window is featurized once.
The store itself is pluggable (:class:`repro.store.FeatureStore`): by default
an in-RAM LRU, optionally tiered over a memmap arena (``arena_dir=``) so the
warm set survives restarts and outgrows RAM.

Judges without the feature-level interface (the social judge, duck-typed test
stubs) still work: the engine falls back to their ``predict_proba`` and the
generic pairwise matrix.

Decision and serving logic itself lives in :class:`repro.api.JudgementCore`
— shared verbatim with :class:`repro.cluster.ShardedEngine`, so the two
transports cannot diverge.  The engine contributes the feature cache (its
``_resolve_features`` is the core's ``gather``) and the chunk-canonical
``_score_batched`` scorer.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.api.core import CallCacheStats, JudgementCore
from repro.api.messages import JudgeRequest, JudgeResponse
from repro.core.protocols import ProfileKey, featurizer_dim, profile_key
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError
from repro.obs import STAGE_FEATURIZE, get_tracer
from repro.store import ArenaStore, FeatureStore, HotStore, TieredStore


@dataclass(frozen=True)
class EngineCacheInfo:
    """Snapshot of the engine's feature-cache statistics."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    #: Total profile rows pushed through the featurizer so far.
    featurized: int
    #: Rows dropped by explicit ``invalidate``/``invalidate_stale`` calls.
    invalidated: int = 0
    #: Per-tier traffic (``hits`` = ``hot_hits`` + ``cold_hits``): lookups
    #: answered from RAM vs. the memmap arena, cold rows copied back into
    #: RAM, and hot-tier evictions that stayed reachable in the arena.
    hot_hits: int = 0
    cold_hits: int = 0
    promotions: int = 0
    demotions: int = 0
    #: Live rows in the cold arena tier (0 without one).
    cold_size: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of feature lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @classmethod
    def merge(cls, infos: Iterable["EngineCacheInfo"]) -> "EngineCacheInfo":
        """Aggregate shard-level snapshots into one cluster-level snapshot.

        Counters, sizes and capacities sum; ``hit_rate`` derives from the
        summed counters.  An empty iterable merges to the all-zero snapshot
        (whose ``hit_rate`` is 0.0, matching a cache that saw no lookups).
        """
        hits = misses = evictions = size = maxsize = featurized = invalidated = 0
        hot_hits = cold_hits = promotions = demotions = cold_size = 0
        for info in infos:
            hits += info.hits
            misses += info.misses
            evictions += info.evictions
            size += info.size
            maxsize += info.maxsize
            featurized += info.featurized
            invalidated += info.invalidated
            hot_hits += info.hot_hits
            cold_hits += info.cold_hits
            promotions += info.promotions
            demotions += info.demotions
            cold_size += info.cold_size
        return cls(
            hits=hits,
            misses=misses,
            evictions=evictions,
            size=size,
            maxsize=maxsize,
            featurized=featurized,
            invalidated=invalidated,
            hot_hits=hot_hits,
            cold_hits=cold_hits,
            promotions=promotions,
            demotions=demotions,
            cold_size=cold_size,
        )


class ColocationEngine:
    """Serve a fitted co-location judge to online applications.

    Parameters
    ----------
    judge:
        Any fitted judge satisfying :class:`repro.core.CoLocationJudge` (or
        at minimum exposing ``predict_proba``): a pipeline, the HisRect
        judge, the One-phase model, Comp2Loc, the social judge, a baseline.
    cache_size:
        Maximum number of per-profile feature rows kept in the hot (in-RAM)
        tier of the feature store.  ``0`` disables the hot tier (every call
        featurizes from scratch unless a cold arena answers).
    threshold:
        Decision threshold for :meth:`predict` / :meth:`serve`.  ``None``
        adopts the judge's own ``decision_threshold`` (default 0.5).
    batch_size:
        Pairs scored per network invocation, bounding autograd graph size.
    registry:
        Optional explicit POI registry; by default it is taken from the
        judge's featurizer, so services can derive it from the engine.
    store:
        An explicit :class:`repro.store.FeatureStore` to serve rows from
        (``cache_size`` is then ignored in favour of the store's capacity).
    arena_dir:
        Convenience for the common tiering: build a
        :class:`repro.store.TieredStore` whose cold tier is a memmap
        :class:`repro.store.ArenaStore` in this directory.  Mutually
        exclusive with ``store``.
    """

    def __init__(
        self,
        judge,
        *,
        cache_size: int = 4096,
        threshold: float | None = None,
        batch_size: int = 1024,
        registry=None,
        store: FeatureStore | None = None,
        arena_dir: str | os.PathLike | None = None,
    ):
        if not hasattr(judge, "predict_proba"):
            raise ConfigurationError("judge must expose predict_proba(pairs)")
        if cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if store is not None and arena_dir is not None:
            raise ConfigurationError("pass either store= or arena_dir=, not both")
        if store is None:
            cold = ArenaStore(arena_dir) if arena_dir is not None else None
            store = TieredStore(HotStore(cache_size), cold)
        #: The feature store serving ``_resolve_features`` — by default a
        #: :class:`repro.store.TieredStore` (hot LRU only, plus a memmap
        #: arena cold tier when ``arena_dir`` is given).
        self.store = store
        self.judge = judge
        self.cache_size = store.capacity
        self.batch_size = batch_size
        self._registry = registry
        #: The shared decision/serve logic (one path for engine, shards and
        #: batcher), parameterized on this engine's cache-backed gather and
        #: chunk-canonical scorer.  Validates ``threshold``.
        self._core = JudgementCore(
            judge,
            gather=self._resolve_features,
            scorer=self._score_batched,
            explicit_threshold=threshold,
        )
        #: Guards the engine's own counters.  Row storage is the store's
        #: problem (stores carry their own lock); featurization runs outside
        #: any lock so concurrent callers only serialise on bookkeeping.
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._featurized = 0  # guarded-by: _lock
        self._invalidations = 0  # guarded-by: _lock
        #: Invalidated-row count not yet reported by a gather call: drained
        #: into the next call's :class:`CallCacheStats`, so typed responses
        #: surface the invalidation traffic that preceded them (the batcher
        #: processes invalidations first in a flush; the flush's serves then
        #: account them).
        self._pending_invalidated = 0  # guarded-by: _lock

    # --------------------------------------------------------------- plumbing
    @classmethod
    def ensure(cls, judge_or_engine, **kwargs) -> "ColocationEngine":
        """Pass an engine through unchanged; wrap a raw judge."""
        if isinstance(judge_or_engine, ColocationEngine):
            return judge_or_engine
        return cls(judge_or_engine, **kwargs)

    @property
    def threshold(self) -> float:
        """The decision threshold applied by :meth:`predict` and :meth:`serve`."""
        return self._core.threshold

    @property
    def registry(self):
        """The POI registry behind the judge's featurizer (or the explicit one)."""
        if self._registry is not None:
            return self._registry
        featurizer = getattr(self.judge, "featurizer", None)
        registry = getattr(featurizer, "registry", None)
        if registry is None:
            raise ConfigurationError(
                "the wrapped judge exposes no POI registry; pass registry= explicitly"
            )
        return registry

    @property
    def _feature_space(self) -> bool:
        return self._core.feature_space

    # ----------------------------------------------------------- feature cache
    def _features_for(self, profiles: list[Profile]) -> np.ndarray:
        """Feature rows for profiles through the store; featurizes misses once.

        Duplicate profiles within one call are deduplicated before touching
        the featurizer, so each distinct profile is featurized exactly once
        even with a disabled cache.

        Thread-safe: the store carries its own lock and the engine lock only
        guards counters; featurization of the misses runs outside both so
        concurrent callers overlap on the expensive part.  Two threads missing the same
        profile simultaneously both featurize it (both misses are counted,
        last insert wins) — wasted work, never corruption of *this* cache.
        The wrapped judge's ``featurize_profiles`` must itself tolerate the
        resulting concurrency; judges with unsynchronised internal caches
        (the HisRect featurizer) should be driven by one thread at a time,
        which is how :class:`repro.cluster.ShardedEngine` schedules them
        (one gather lock per judge replica).
        """
        rows, _ = self._resolve_features(profiles)
        return rows

    def _resolve_features(self, profiles: list[Profile]) -> tuple[np.ndarray, "CallCacheStats"]:
        """:meth:`_features_for` plus this call's own cache statistics.

        The stats are local to the call (its hits, misses and the ``len`` of
        the miss batch it featurized), so concurrent callers never leak into
        each other's accounting the way a before/after read of the global
        counters would.
        """
        keys = [profile_key(p) for p in profiles]
        missing: dict[ProfileKey, Profile] = {}
        resolved: dict[ProfileKey, np.ndarray] = {}
        call_hits = 0
        for key, profile in zip(keys, profiles):
            if key in resolved or key in missing:
                continue
            row = self.store.get(key)
            if row is not None:
                call_hits += 1
                resolved[key] = row
            else:
                missing[key] = profile
        with self._lock:
            self._hits += call_hits
            self._misses += len(missing)
        if missing:
            batch = list(missing.values())
            with get_tracer().stage(STAGE_FEATURIZE):
                rows = self.judge.featurize_profiles(batch)
            with self._lock:
                self._featurized += len(batch)
            for profile, row in zip(batch, rows):
                key = profile_key(profile)
                resolved[key] = row
                # Each row is a view into the featurized (B, D) batch; the
                # hot tier copies views on insert so one resident row never
                # pins the whole batch in RAM.
                self.store.put(key, row)
        with self._lock:
            call_invalidated = self._pending_invalidated
            self._pending_invalidated = 0
        stats = CallCacheStats(
            hits=call_hits,
            misses=len(missing),
            featurized=len(missing),
            invalidated=call_invalidated,
        )
        return np.stack([resolved[key] for key in keys]), stats

    # ------------------------------------------------------------ invalidation
    def invalidate(self, uids: Iterable[int]) -> int:
        """Drop every cached feature row of the given users; returns rows dropped.

        The live-mutation hook: a user whose visit history changed outside
        the revision-stamped path (or whose old rows should be reclaimed
        eagerly) gets all resident rows — any timestamp, any revision, any
        tier — removed, so the next lookup re-featurizes.  Revision-exact
        keys already prevent *serving* a stale row; invalidation reclaims
        the space and keeps ``cache_info`` honest about live users.
        """
        dropped = self.store.invalidate(uids)
        with self._lock:
            self._invalidations += dropped
            self._pending_invalidated += dropped
        return dropped

    def invalidate_stale(self) -> int:
        """Drop resident rows superseded by a higher observed revision.

        Unrevisioned rows (profiles built outside the builders) are never
        dropped — they carry no ordering to judge staleness by.
        Returns the rows dropped.
        """
        dropped = self.store.invalidate_stale()
        with self._lock:
            self._invalidations += dropped
            self._pending_invalidated += dropped
        return dropped

    def warm(self, profiles: list[Profile]) -> int:
        """Pre-featurize profiles into the cache; returns rows featurized.

        The count covers this call only — concurrent callers featurizing at
        the same time do not inflate it.
        """
        if not profiles or not self._feature_space:
            return 0
        _, stats = self._resolve_features(profiles)
        return stats.featurized

    def cache_info(self) -> EngineCacheInfo:
        """Current feature-store statistics (a consistent snapshot)."""
        stats = self.store.stats()
        with self._lock:
            return EngineCacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=stats.evictions,
                size=stats.size,
                maxsize=stats.maxsize,
                featurized=self._featurized,
                invalidated=self._invalidations,
                hot_hits=stats.hot_hits,
                cold_hits=stats.cold_hits,
                promotions=stats.promotions,
                demotions=stats.demotions,
                cold_size=stats.cold_size,
            )

    def clear_cache(self) -> None:
        """Drop every cached feature row, all tiers (keeps the counters)."""
        self.store.clear()

    def close(self) -> None:
        """Flush and release the store's cold tier, if any (idempotent)."""
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    def export_cache(self) -> dict[ProfileKey, np.ndarray]:
        """Deprecated: use ``engine.store.export()``.

        The snapshot half of wire warm-start, kept as a shim over the store
        so existing callers survive the extraction.
        """
        warnings.warn(
            "ColocationEngine.export_cache() is deprecated; use engine.store.export()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.store.export()

    def import_cache(self, rows: dict[ProfileKey, np.ndarray]) -> int:
        """Deprecated: use ``engine.store.import_rows()``.

        Imported rows count as neither hits nor misses (they were computed
        by another engine); the hot-tier bound still applies, so importing
        more rows than ``cache_size`` keeps only the hottest (last-iterated)
        tail of the export.  Returns imported rows still resident.
        """
        warnings.warn(
            "ColocationEngine.import_cache() is deprecated; use engine.store.import_rows()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.store.import_rows(rows)

    # -------------------------------------------------------------- judgement
    def _score_batched(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        # A single-pair chunk is padded with a duplicate row and the extra
        # score dropped, for the same reason as featurize_in_chunks: the
        # B=1 BLAS path drifts ~1e-16 from the batched kernel, and scores
        # must not depend on how a workload was chunked or coalesced.
        chunks = []
        for start in range(0, len(left), self.batch_size):
            stop = start + self.batch_size
            chunk_left, chunk_right = left[start:stop], right[start:stop]
            if len(chunk_left) == 1:
                doubled = self.judge.score_feature_pairs(
                    np.concatenate([chunk_left, chunk_left]),
                    np.concatenate([chunk_right, chunk_right]),
                )
                chunks.append(np.asarray(doubled)[:1])
            else:
                chunks.append(self.judge.score_feature_pairs(chunk_left, chunk_right))
        return np.concatenate(chunks) if chunks else np.zeros(0)

    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probability per pair (batched, feature-cached).

        Both sides resolve in one gather, so a profile appearing on both
        sides of the batch featurizes once even with ``cache_size=0``.
        """
        return self._core.predict_proba(pairs)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions per pair.

        Follows the judge's own decision rule — including non-threshold
        rules like Comp2Loc's argmax equality — unless the engine was given
        an explicit ``threshold``, which then cuts the probabilities.
        """
        return self._core.predict(pairs)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """The ``N x N`` pairwise probability matrix, featurizing each profile once."""
        return self._core.probability_matrix(profiles)

    def features(self, profiles: list[Profile]) -> np.ndarray:
        """Cached frozen feature rows for profiles (t-SNE, diagnostics)."""
        if not self._feature_space:
            raise ConfigurationError(
                "the wrapped judge has no feature-level interface (FeatureSpaceJudge)"
            )
        if not profiles:
            featurizer = getattr(self.judge, "featurizer", None)
            return np.zeros((0, featurizer_dim(featurizer)))
        return self._features_for(profiles)

    # ---------------------------------------------------------- POI inference
    def infer_poi_proba(self, profiles: list[Profile]) -> np.ndarray:
        """POI probability distributions per profile (two-phase judges only)."""
        if not hasattr(self.judge, "infer_poi_proba"):
            raise ConfigurationError("the wrapped judge does not support POI inference")
        return self.judge.infer_poi_proba(profiles)

    def infer_poi(self, profiles: list[Profile]) -> list[int]:
        """Hard POI (pid) predictions per profile (two-phase judges only)."""
        if not hasattr(self.judge, "infer_poi"):
            raise ConfigurationError("the wrapped judge does not support POI inference")
        return self.judge.infer_poi(profiles)

    # ----------------------------------------------------------------- serving
    def serve(self, request: JudgeRequest) -> JudgeResponse:
        """Answer one typed judgement request.

        With no explicit threshold (neither on the request nor on the
        engine), decisions follow the judge's own rule — matching
        :meth:`predict`, including non-threshold rules like Comp2Loc's
        argmax equality.  An explicit threshold cuts the probabilities.
        """
        return self._core.serve(request)

    def serve_batch(self, requests: Iterable[JudgeRequest]) -> list[JudgeResponse]:
        """Answer typed requests together, scoring them as one coalesced batch.

        See :meth:`repro.api.JudgementCore.serve_batch` — this is the entry
        point ``MicroBatcher.submit_serve`` flushes through.
        """
        return self._core.serve_batch(requests)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"ColocationEngine(judge={type(self.judge).__name__}, "
            f"cache={info.size}/{info.maxsize}, hit_rate={info.hit_rate:.2f})"
        )
