"""The serving facade: one entry point for online co-location judgement.

The paper's Section 6.4.4 argues the fitted judge "can work in online
scenarios" (~1 ms per pair).  :class:`ColocationEngine` is the production face
of that claim: it wraps any fitted judge — a
:class:`repro.colocation.CoLocationPipeline`, a raw HisRect judge, the
One-phase model, Comp2Loc, the social judge or a baseline — behind one batched,
cached API that every :mod:`repro.service` application consumes.

* :class:`ColocationEngine` — batched ``predict_proba`` / ``predict``, an LRU
  cache over per-profile HisRect features, a ``probability_matrix`` that
  featurizes each profile exactly once, and cache telemetry.
* :class:`JudgementCore` — the one decision/serve path shared by the engine,
  :class:`repro.cluster.ShardedEngine` and
  :class:`repro.cluster.MicroBatcher`, parameterized on a feature-gather
  callable and a pair scorer.
* :class:`JudgeRequest` / :class:`JudgeResponse` — typed request/response
  dataclasses for the serving boundary.
* :class:`EngineCacheInfo` — snapshot of the feature cache's hit statistics.
"""

from repro.api.core import CallCacheStats, JudgementCore
from repro.api.engine import ColocationEngine, EngineCacheInfo
from repro.api.messages import JudgeRequest, JudgeResponse

__all__ = [
    "CallCacheStats",
    "ColocationEngine",
    "EngineCacheInfo",
    "JudgementCore",
    "JudgeRequest",
    "JudgeResponse",
]
