""":class:`JudgementCore` — the one decision/serve path behind every transport.

The library serves judgement through three transports — the single
:class:`repro.api.ColocationEngine`, the hash-partitioned
:class:`repro.cluster.ShardedEngine`, and the request-coalescing
:class:`repro.cluster.MicroBatcher` — and all three must agree bit-for-bit.
Historically each transport hand-copied the decision logic (threshold rules,
``decide_feature_pairs`` fallbacks, non-feature-space fallbacks, per-call
cache accounting), and the copies diverged in exactly the ways copies do:
one path featurized a shared profile twice, another dropped the judge's own
decision rule.

The core removes the structure that bred those bugs.  It owns the judgement
logic *once* and is parameterized on the only two things that differ between
transports:

* ``gather`` — a feature-gather callable ``profiles -> (rows, stats)``.  The
  single engine passes its LRU-backed ``_resolve_features``; the sharded
  engine passes its thread-pool fan-out across shards.
* ``scorer`` — a pair-scoring callable ``(left, right) -> probabilities``
  over aligned feature matrices (the engine's chunk-canonical
  ``_score_batched``).

Everything downstream of those two callables — probability computation,
decision rules, typed :class:`JudgeRequest` serving, per-request cache
accounting — lives here and nowhere else.

Pairs resolve both sides in **one** ``gather`` call (lefts then rights,
concatenated), so a profile appearing on both sides of a batch is featurized
once even with caching disabled — the single-gather behavior the sharded
engine always had, now shared by every path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.api.messages import JudgeRequest, JudgeResponse
from repro.core.protocols import (
    pairwise_probability_matrix,
    symmetric_probability_matrix,
    upper_triangle_pairs,
)
from repro.data.records import Pair, Profile
from repro.errors import ConfigurationError
from repro.obs import STAGE_GATHER, STAGE_SCORE, get_tracer


@dataclass(frozen=True)
class CallCacheStats:
    """One call's own cache traffic (never contaminated by concurrent callers).

    ``invalidated`` counts the cache rows dropped by explicit
    ``invalidate``/``invalidate_stale`` calls that this gather observed —
    each engine drains its not-yet-reported invalidation count into the next
    gather's stats, so a request served right after a profile mutation
    carries the invalidation traffic that preceded it (the micro-batcher
    processes invalidations first in a flush; the flush's requests then
    account them).
    """

    hits: int
    misses: int
    featurized: int
    invalidated: int = 0

    def __add__(self, other: "CallCacheStats") -> "CallCacheStats":
        return CallCacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            featurized=self.featurized + other.featurized,
            invalidated=self.invalidated + other.invalidated,
        )


#: The zero-traffic stats of a call that never touched the feature cache.
NO_CACHE_TRAFFIC = CallCacheStats(hits=0, misses=0, featurized=0)

#: ``gather`` contract: feature rows for profiles plus the call's own cache
#: traffic, row ``i`` aligned with profile ``i``.
FeatureGather = Callable[[list], tuple[np.ndarray, CallCacheStats]]

#: ``scorer`` contract: co-location probabilities from two aligned feature
#: matrices, independent of how the workload was chunked or coalesced.
PairScorer = Callable[[np.ndarray, np.ndarray], np.ndarray]


class JudgementCore:
    """The shared decision/serve logic of every serving transport.

    Parameters
    ----------
    judge:
        The judge instance that scores and decides on the feature-space path
        (for the sharded engine this is shard 0's replica — the same instance
        whose ``score_feature_pairs`` the scorer drives).
    gather:
        Feature-gather callable ``profiles -> (rows, CallCacheStats)``.
    scorer:
        Pair-scoring callable ``(left, right) -> probabilities``.
    explicit_threshold:
        The transport's explicit decision threshold; ``None`` follows the
        judge's own rule (``decide_feature_pairs`` / ``predict`` when
        available, else a 0.5 probability cut).
    fallback_judge:
        The judge used on non-feature-space fallback paths (``predict_proba``
        / ``predict`` / ``probability_matrix``).  Defaults to ``judge``; the
        sharded engine passes the caller's original judge so fallbacks never
        route through a replica.
    """

    def __init__(
        self,
        judge,
        *,
        gather: FeatureGather,
        scorer: PairScorer,
        explicit_threshold: float | None = None,
        fallback_judge=None,
    ):
        if explicit_threshold is not None and not 0.0 <= explicit_threshold <= 1.0:
            raise ConfigurationError("threshold must lie in [0, 1]")
        self.judge = judge
        self.fallback_judge = fallback_judge if fallback_judge is not None else judge
        self.explicit_threshold = explicit_threshold
        self._gather = gather
        self._scorer = scorer

    # --------------------------------------------------------------- plumbing
    @property
    def feature_space(self) -> bool:
        """Whether the judge separates featurization from pair scoring."""
        return hasattr(self.judge, "featurize_profiles") and hasattr(
            self.judge, "score_feature_pairs"
        )

    @property
    def threshold(self) -> float:
        """The effective decision threshold for probability cuts."""
        if self.explicit_threshold is not None:
            return self.explicit_threshold
        return float(getattr(self.judge, "decision_threshold", 0.5))

    def resolve_pair_features(
        self, pairs: Sequence[Pair]
    ) -> tuple[np.ndarray, np.ndarray, CallCacheStats]:
        """Both sides' feature rows from **one** gather call.

        Lefts and rights resolve together, so a profile shared between the
        two sides (or between pairs) reaches the featurizer once even with
        caching disabled — and the stats count it once.
        """
        profiles = [p.left for p in pairs] + [p.right for p in pairs]
        rows, stats = self._gather(profiles)
        return rows[: len(pairs)], rows[len(pairs) :], stats

    # -------------------------------------------------------------- judgement
    def predict_proba(self, pairs: list[Pair]) -> np.ndarray:
        """Co-location probability per pair (batched, feature-cached)."""
        if not pairs:
            return np.zeros(0)
        if self.feature_space:
            tracer = get_tracer()
            with tracer.stage(STAGE_GATHER):
                left, right, _ = self.resolve_pair_features(pairs)
            with tracer.stage(STAGE_SCORE):
                return self._scorer(left, right)
        return np.asarray(self.fallback_judge.predict_proba(list(pairs)), dtype=float)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        """Binary co-location decisions per pair.

        Follows the judge's own decision rule — including non-threshold
        rules like Comp2Loc's argmax equality — unless the transport was
        given an explicit threshold, which then cuts the probabilities.
        """
        if not pairs:
            return np.zeros(0, dtype=int)
        if self.explicit_threshold is None:
            if self.feature_space and hasattr(self.judge, "decide_feature_pairs"):
                # Non-threshold decisions still benefit from the feature cache.
                left, right, _ = self.resolve_pair_features(pairs)
                return np.asarray(self.judge.decide_feature_pairs(left, right), dtype=int)
            if not self.feature_space and hasattr(self.fallback_judge, "predict"):
                # Keep the wrapped judge's own rule (e.g. a baseline's argmax
                # equality); there is no cache to route through anyway.
                return np.asarray(self.fallback_judge.predict(list(pairs)), dtype=int)
        return (self.predict_proba(pairs) >= self.threshold).astype(int)

    def probability_matrix(self, profiles: list[Profile]) -> np.ndarray:
        """The ``N x N`` pairwise probability matrix, featurizing each profile once."""
        n = len(profiles)
        if self.feature_space:
            if n < 2:
                return np.zeros((n, n))
            tracer = get_tracer()
            with tracer.stage(STAGE_GATHER):
                features, _ = self._gather(list(profiles))
            index_pairs = upper_triangle_pairs(n)
            left = features[[i for i, _ in index_pairs]]
            right = features[[j for _, j in index_pairs]]
            with tracer.stage(STAGE_SCORE):
                probabilities = self._scorer(left, right)
            return symmetric_probability_matrix(n, index_pairs, probabilities)
        if hasattr(self.fallback_judge, "probability_matrix"):
            return np.asarray(
                self.fallback_judge.probability_matrix(list(profiles)), dtype=float
            )
        return pairwise_probability_matrix(self.fallback_judge, list(profiles))

    # ----------------------------------------------------------------- serving
    def serve(self, request: JudgeRequest) -> JudgeResponse:
        """Answer one typed judgement request.

        With no explicit threshold (neither on the request nor on the
        transport), decisions follow the judge's own rule — matching
        :meth:`predict`, including non-threshold rules like Comp2Loc's
        argmax equality.  An explicit threshold cuts the probabilities.
        """
        return self.serve_batch([request])[0]

    def serve_batch(self, requests: Iterable[JudgeRequest]) -> list[JudgeResponse]:
        """Answer typed requests together, scoring them as **one** batch.

        The coalescing entry point behind ``MicroBatcher.submit_serve``:
        every feature-space request gathers its own features (one gather per
        request — a deliberate trade-off: cache accounting stays exactly
        attributable per response, and overlap between requests deduplicates
        through the cache rather than within the call, mirroring how warm
        and matrix requests behave in a flush), then all their pairs score
        in a single scorer call — the same shape-dependent BLAS coalescing
        the batcher applies to plain score requests.

        Decisions and thresholds remain per request, so mixed explicit /
        default-rule requests coalesce safely.  Default-rule decisions
        (``decide_feature_pairs``) are computed from the gathered rows and
        are bit-for-bit the uncoalesced ones; explicit-threshold decisions
        cut the *coalesced* probabilities, so a pair whose probability sits
        within the coalescing drift (~1e-16) of the threshold may decide
        differently than an uncoalesced serve would — the only way to avoid
        that would be to score every request twice.

        A single-request batch is exactly :meth:`serve`: one gather, one
        scorer call over that request's pairs.  ``elapsed_ms`` on every
        response measures the whole batch (the requests were served by one
        call).

        With tracing enabled (:func:`repro.obs.tracing`), every feature-space
        request gets its own :class:`repro.obs.Trace`: ``gather`` is timed
        per request, the single coalesced ``score`` measurement is attributed
        to every participating trace, and the report rides back on
        ``JudgeResponse.trace``.  Slow-request hooks fire against the batch's
        ``elapsed_ms`` (the requests were served by one call).
        """
        requests = list(requests)
        for request in requests:
            if request.threshold is not None and not 0.0 <= request.threshold <= 1.0:
                raise ConfigurationError("request threshold must lie in [0, 1]")
        tracer = get_tracer()
        traced = tracer.enabled
        traces = [None] * len(requests)
        started = time.perf_counter()
        thresholds = [
            self.threshold if request.threshold is None else float(request.threshold)
            for request in requests
        ]
        default_rule = [
            request.threshold is None and self.explicit_threshold is None
            for request in requests
        ]
        probabilities: list[np.ndarray] = [np.zeros(0)] * len(requests)
        decisions: list[np.ndarray] = [np.zeros(0, dtype=int)] * len(requests)
        stats: list[CallCacheStats] = [NO_CACHE_TRAFFIC] * len(requests)
        feature_segments: list[tuple[int, list[Pair], np.ndarray, np.ndarray]] = []
        for index, request in enumerate(requests):
            pairs = list(request.pairs)
            if pairs and self.feature_space:
                # Gather features once per request; probabilities and
                # decisions share them, and the per-call stats keep the
                # response's cache traffic attributable to this request even
                # with concurrent callers on the transport.
                if traced:
                    traces[index] = tracer.start_trace()
                    with tracer.activate(traces[index]), tracer.stage(STAGE_GATHER):
                        left, right, request_stats = self.resolve_pair_features(pairs)
                else:
                    left, right, request_stats = self.resolve_pair_features(pairs)
                stats[index] = request_stats
                feature_segments.append((index, pairs, left, right))
            else:
                probabilities[index] = self.predict_proba(pairs)
                if pairs and default_rule[index] and hasattr(self.fallback_judge, "predict"):
                    decisions[index] = np.asarray(
                        self.fallback_judge.predict(pairs), dtype=int
                    )
                else:
                    decisions[index] = (probabilities[index] >= thresholds[index]).astype(int)
        if feature_segments:
            score_started = tracer.clock() if traced else 0.0
            scored = self._scorer(
                np.concatenate([left for _, _, left, _ in feature_segments]),
                np.concatenate([right for _, _, _, right in feature_segments]),
            )
            if traced:
                # One scorer call covers every segment: the measurement goes
                # to the registry once and to each participating trace.
                tracer.record_stage(
                    STAGE_SCORE,
                    (tracer.clock() - score_started) * 1e3,
                    traces=[traces[index] for index, _, _, _ in feature_segments],
                )
            offset = 0
            for index, pairs, left, right in feature_segments:
                stop = offset + len(pairs)
                probabilities[index] = scored[offset:stop]
                offset = stop
                if default_rule[index] and hasattr(self.judge, "decide_feature_pairs"):
                    decisions[index] = np.asarray(
                        self.judge.decide_feature_pairs(left, right), dtype=int
                    )
                else:
                    decisions[index] = (probabilities[index] >= thresholds[index]).astype(int)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        if traced:
            for trace in traces:
                if trace is not None:
                    tracer.finish(trace, total_ms=elapsed_ms)
        return [
            JudgeResponse(
                probabilities=tuple(float(p) for p in probabilities[index]),
                decisions=tuple(int(d) for d in decisions[index]),
                threshold=thresholds[index],
                cache_hits=stats[index].hits,
                cache_misses=stats[index].misses,
                cache_invalidated=stats[index].invalidated,
                elapsed_ms=elapsed_ms,
                trace=traces[index].report() if traces[index] is not None else None,
            )
            for index in range(len(requests))
        ]
