"""Typed request/response messages of the serving boundary.

The engine's programmatic methods (``predict_proba`` and friends) stay
array-in/array-out for library use; services and RPC-style callers go through
:class:`JudgeRequest` / :class:`JudgeResponse`, which carry the decision
threshold actually applied and the cache statistics of the call — the numbers
an operator needs to reason about latency.

Both messages round-trip through plain dicts (``to_dict`` / ``from_dict``,
built on the :mod:`repro.io.records_json` codecs) so the cluster wire
protocol — and any external RPC layer — can carry them without pickling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.data.records import Pair, Profile


@dataclass(frozen=True)
class JudgeRequest:
    """One batch of candidate pairs to judge.

    ``threshold`` overrides the engine's decision threshold for this request
    only; ``None`` keeps the engine default.
    """

    pairs: tuple[Pair, ...]
    threshold: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.pairs, tuple):
            object.__setattr__(self, "pairs", tuple(self.pairs))

    @classmethod
    def for_profiles(cls, query: Profile, candidates: list[Profile], threshold: float | None = None) -> "JudgeRequest":
        """Pair one query profile against every candidate of a different user."""
        pairs = tuple(
            Pair(left=query, right=candidate, co_label=None)
            for candidate in candidates
            if candidate.uid != query.uid
        )
        return cls(pairs=pairs, threshold=threshold)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (the wire-protocol request body)."""
        from repro.io.records_json import pair_to_dict

        return {
            "pairs": [pair_to_dict(pair) for pair in self.pairs],
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JudgeRequest":
        """Rebuild a request from :meth:`to_dict` output (extra keys ignored)."""
        from repro.io.records_json import pair_from_dict

        return cls(
            pairs=tuple(pair_from_dict(pair) for pair in data.get("pairs", [])),
            threshold=None if data.get("threshold") is None else float(data["threshold"]),
        )

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class JudgeResponse:
    """The engine's answer for one :class:`JudgeRequest`."""

    #: Co-location probability per requested pair.
    probabilities: tuple[float, ...]
    #: Binary decisions.  Cut from the probabilities at ``threshold``, except
    #: for judges with a non-threshold decision rule (Comp2Loc's argmax
    #: equality) when no explicit request threshold was given.
    decisions: tuple[int, ...]
    #: The engine's decision threshold in effect for this request.
    threshold: float
    #: Feature-cache hits/misses incurred by this request (0/0 for judges
    #: without a feature-level interface).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Cache rows dropped by ``invalidate``/``invalidate_stale`` calls this
    #: request's gather observed (invalidation traffic preceding it).
    cache_invalidated: int = 0
    #: Wall-clock time spent inside the engine, in milliseconds.
    elapsed_ms: float = 0.0
    #: Per-stage timing report (``{"trace_id", "stages": [[name, ms], ...]}``)
    #: when the request was served under :func:`repro.obs.tracing`; ``None``
    #: otherwise — tracing is off by default and costs nothing here.
    trace: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (the wire-protocol response body)."""
        payload = {
            "probabilities": [float(p) for p in self.probabilities],
            "decisions": [int(d) for d in self.decisions],
            "threshold": self.threshold,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_invalidated": self.cache_invalidated,
            "elapsed_ms": self.elapsed_ms,
        }
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JudgeResponse":
        """Rebuild a response from :meth:`to_dict` output (extra keys ignored)."""
        return cls(
            probabilities=tuple(float(p) for p in data.get("probabilities", [])),
            decisions=tuple(int(d) for d in data.get("decisions", [])),
            threshold=float(data.get("threshold", 0.5)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            cache_invalidated=int(data.get("cache_invalidated", 0)),
            elapsed_ms=float(data.get("elapsed_ms", 0.0)),
            trace=data.get("trace"),
        )

    def __len__(self) -> int:
        return len(self.probabilities)

    @property
    def num_positive(self) -> int:
        """How many pairs were judged co-located."""
        return int(sum(self.decisions))
