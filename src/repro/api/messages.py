"""Typed request/response messages of the serving boundary.

The engine's programmatic methods (``predict_proba`` and friends) stay
array-in/array-out for library use; services and RPC-style callers go through
:class:`JudgeRequest` / :class:`JudgeResponse`, which carry the decision
threshold actually applied and the cache statistics of the call — the numbers
an operator needs to reason about latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.records import Pair, Profile


@dataclass(frozen=True)
class JudgeRequest:
    """One batch of candidate pairs to judge.

    ``threshold`` overrides the engine's decision threshold for this request
    only; ``None`` keeps the engine default.
    """

    pairs: tuple[Pair, ...]
    threshold: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.pairs, tuple):
            object.__setattr__(self, "pairs", tuple(self.pairs))

    @classmethod
    def for_profiles(cls, query: Profile, candidates: list[Profile], threshold: float | None = None) -> "JudgeRequest":
        """Pair one query profile against every candidate of a different user."""
        pairs = tuple(
            Pair(left=query, right=candidate, co_label=None)
            for candidate in candidates
            if candidate.uid != query.uid
        )
        return cls(pairs=pairs, threshold=threshold)

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class JudgeResponse:
    """The engine's answer for one :class:`JudgeRequest`."""

    #: Co-location probability per requested pair.
    probabilities: tuple[float, ...]
    #: Binary decisions.  Cut from the probabilities at ``threshold``, except
    #: for judges with a non-threshold decision rule (Comp2Loc's argmax
    #: equality) when no explicit request threshold was given.
    decisions: tuple[int, ...]
    #: The engine's decision threshold in effect for this request.
    threshold: float
    #: Feature-cache hits/misses incurred by this request (0/0 for judges
    #: without a feature-level interface).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall-clock time spent inside the engine, in milliseconds.
    elapsed_ms: float = 0.0

    def __len__(self) -> int:
        return len(self.probabilities)

    @property
    def num_positive(self) -> int:
        """How many pairs were judged co-located."""
        return int(sum(self.decisions))
