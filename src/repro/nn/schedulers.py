"""Learning-rate schedules.

The paper trains with Adam whose learning rate "decreases with the number of
training iterations increasing"; the optimisers in :mod:`repro.nn.optim`
implement that inverse-time decay directly (:meth:`Optimizer.decay_lr`).
These scheduler objects offer the other common decay shapes so ablations and
downstream users are not locked into one policy.  A scheduler wraps an
optimiser and overwrites ``optimizer.lr`` on every :meth:`step`.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: call :meth:`step` once per optimisation step."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.base_lr
        self.step_count = 0

    def compute_lr(self, step: int) -> float:
        """Learning rate to apply at a given step (subclasses override)."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step, update the optimiser and return the new rate."""
        self.step_count += 1
        lr = self.compute_lr(self.step_count)
        if lr <= 0:
            raise ConfigurationError(f"scheduler produced non-positive learning rate {lr}")
        self.optimizer.lr = lr
        return lr

    @property
    def current_lr(self) -> float:
        """The learning rate currently applied to the optimiser."""
        return self.optimizer.lr


class InverseTimeDecay(LRScheduler):
    """``lr = base / (1 + decay * step)`` — the paper's policy."""

    def __init__(self, optimizer: Optimizer, decay: float = 1e-3):
        super().__init__(optimizer)
        if decay < 0:
            raise ConfigurationError("decay must be non-negative")
        self.decay = decay

    def compute_lr(self, step: int) -> float:
        return self.base_lr / (1.0 + self.decay * step)


class ExponentialDecay(LRScheduler):
    """``lr = base * gamma ** step`` for ``gamma`` slightly below 1."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.999):
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError("gamma must lie in (0, 1]")
        self.gamma = gamma

    def compute_lr(self, step: int) -> float:
        return self.base_lr * self.gamma**step


class StepDecay(LRScheduler):
    """Multiply the rate by ``factor`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int = 100, factor: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ConfigurationError("step_size must be positive")
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError("factor must lie in (0, 1]")
        self.step_size = step_size
        self.factor = factor

    def compute_lr(self, step: int) -> float:
        return self.base_lr * self.factor ** (step // self.step_size)


class CosineAnnealing(LRScheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 1e-4):
        super().__init__(optimizer)
        if total_steps < 1:
            raise ConfigurationError("total_steps must be positive")
        if min_lr <= 0:
            raise ConfigurationError("min_lr must be positive")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def compute_lr(self, step: int) -> float:
        progress = min(1.0, step / self.total_steps)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


class WarmupWrapper(LRScheduler):
    """Linear warm-up for ``warmup_steps`` steps, then delegate to another scheduler."""

    def __init__(self, scheduler: LRScheduler, warmup_steps: int = 10):
        super().__init__(scheduler.optimizer)
        if warmup_steps < 0:
            raise ConfigurationError("warmup_steps must be non-negative")
        self.scheduler = scheduler
        self.warmup_steps = warmup_steps

    def compute_lr(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        return self.scheduler.compute_lr(step - self.warmup_steps)
