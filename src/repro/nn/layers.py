"""Feed-forward building blocks: Linear, activations, Dropout, Sequential, MLP.

The paper initialises every fully-connected layer with Gaussian noise of
standard deviation 0.01 and stacks ``Linear -> ReLU`` blocks (``Qf``, ``Qe``,
``Qe'`` and ``Qc`` layers deep in the featurizer, embeddings and judge); these
classes provide exactly those pieces.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.module import Module, Parameter


class Linear(Module):
    """A dense layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    init_std:
        Standard deviation of the Gaussian initialiser.  ``None`` (default)
        uses the fan-in-scaled He value ``sqrt(2 / in_features)``; the paper's
        fixed 0.01 remains available by passing it explicitly.
    rng:
        Source of randomness; pass a seeded generator for reproducibility.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        if init_std is None:
            init_std = float(np.sqrt(2.0 / in_features))
        self.weight = Parameter(rng.normal(0.0, init_std, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    The paper keeps units with probability 0.8 at the LSTM layer and before
    every fully-connected layer during training, and disables dropout at test
    time.
    """

    def __init__(self, keep_prob: float = 0.8, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 < keep_prob <= 1.0:
            raise ValueError("keep_prob must be in (0, 1]")
        self.keep_prob = keep_prob
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.keep_prob >= 1.0:
            return x
        mask = (self._rng.random(x.shape) < self.keep_prob).astype(np.float64) / self.keep_prob
        return x * Tensor(mask)


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """A stack of ``Linear -> ReLU`` blocks with optional dropout.

    ``hidden_sizes`` lists the output size of every layer; ReLU follows each
    layer except (optionally) the last — the paper's classifier heads end in a
    linear layer feeding a softmax/sigmoid, while its embedding stacks apply
    ReLU throughout.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        final_activation: bool = True,
        keep_prob: float = 1.0,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if not hidden_sizes:
            raise ValueError("MLP needs at least one layer size")
        rng = rng or np.random.default_rng()
        layers: list[Module] = []
        previous = in_features
        for i, size in enumerate(hidden_sizes):
            if keep_prob < 1.0:
                layers.append(Dropout(keep_prob, rng=rng))
            layers.append(Linear(previous, size, init_std=init_std, rng=rng))
            is_last = i == len(hidden_sizes) - 1
            if final_activation or not is_last:
                layers.append(ReLU())
            previous = size
        self.net = Sequential(*layers)
        self.out_features = hidden_sizes[-1]

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Differentiable L2 normalisation along ``axis`` (the paper's ``normalize``)."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps) ** 0.5
    return x / norm
