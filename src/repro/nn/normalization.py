"""Normalisation layers: LayerNorm, RMSNorm and BatchNorm1d.

The paper's architecture does not use normalisation layers, but the deeper
configurations explored in its Table 7 (stacking more fully-connected and
recurrent layers) are exactly where normalisation helps; the reproduction
ships these layers so the depth ablation can also be run with normalised
stacks.  All layers follow the reproduction's convention of operating on
``(batch, features)`` or ``(T, features)`` shaped tensors.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.module import Module, Parameter


class LayerNorm(Module):
    """Normalise each row to zero mean and unit variance, then scale and shift."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        if num_features <= 0:
            raise ValueError("LayerNorm feature count must be positive")
        self.num_features = num_features
        self.eps = eps
        self.gain = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / ((variance + self.eps) ** 0.5)
        return normalised * self.gain + self.bias


class RMSNorm(Module):
    """Root-mean-square normalisation (no mean subtraction, no bias)."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        if num_features <= 0:
            raise ValueError("RMSNorm feature count must be positive")
        self.num_features = num_features
        self.eps = eps
        self.gain = Parameter(np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        mean_square = (x * x).mean(axis=-1, keepdims=True)
        return x / ((mean_square + self.eps) ** 0.5) * self.gain


class BatchNorm1d(Module):
    """Batch normalisation over the leading (batch) axis.

    Keeps running estimates of the batch statistics for use at evaluation
    time, following the usual exponential-moving-average recipe.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features <= 0:
            raise ValueError("BatchNorm1d feature count must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gain = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        # Running statistics are buffers, not parameters: they are updated in
        # the forward pass and never receive gradients.
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError("BatchNorm1d expects a (batch, features) tensor")
        if self.training:
            batch_mean = x.mean(axis=0, keepdims=True)
            centered = x - batch_mean
            batch_var = (centered * centered).mean(axis=0, keepdims=True)
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean
                + self.momentum * batch_mean.data.reshape(-1)
            )
            self.running_var = (
                (1.0 - self.momentum) * self.running_var
                + self.momentum * batch_var.data.reshape(-1)
            )
            normalised = centered / ((batch_var + self.eps) ** 0.5)
        else:
            centered = x - Tensor(self.running_mean.reshape(1, -1))
            normalised = centered / Tensor(np.sqrt(self.running_var.reshape(1, -1) + self.eps))
        return normalised * self.gain + self.bias
