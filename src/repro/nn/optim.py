"""Optimisers: SGD and mini-batch Adam with gradient clipping and decay.

The paper trains its three objectives (``L_poi``, ``L_u``, ``L_co``) with three
separate Adam optimisers, a learning rate starting at 0.01 that decays with the
iteration count, L2 regularisation, and a hard constraint on the gradient norm
(rescaled when it exceeds 5).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float = 5.0) -> float:
    """Rescale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, which training loops can log.
    """
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float(np.sum(param.grad**2))
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


class Optimizer:
    """Base optimiser holding a parameter list and shared bookkeeping."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.base_lr = lr
        self.lr = lr
        self.weight_decay = weight_decay
        self.step_count = 0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def decay_lr(self, decay: float = 1e-4) -> None:
        """Inverse-time learning-rate decay, as in the paper's training setup."""
        self.lr = self.base_lr / (1.0 + decay * self.step_count)

    def step(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity -= self.lr * grad
            param.data = param.data + velocity


class Adam(Optimizer):
    """Mini-batch Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSprop(Optimizer):
    """RMSprop: scale steps by a running average of squared gradients."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self.eps = eps
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for param, square_avg in zip(self.parameters, self._square_avg):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * grad**2
            param.data = param.data - self.lr * grad / (np.sqrt(square_avg) + self.eps)


class Adagrad(Optimizer):
    """Adagrad: per-parameter learning rates from accumulated squared gradients."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        self.eps = eps
        self._accumulated = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for param, accumulated in zip(self.parameters, self._accumulated):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            accumulated += grad**2
            param.data = param.data - self.lr * grad / (np.sqrt(accumulated) + self.eps)


class AdamW(Optimizer):
    """Adam with decoupled weight decay (the decay acts on the weights directly)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ):
        super().__init__(parameters, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param.data = param.data - self.lr * self.weight_decay * param.data
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
