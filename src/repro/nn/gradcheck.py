"""Numerical gradient checking for the autodiff substrate.

The reproduction's correctness rests on the hand-written reverse-mode engine
in :mod:`repro.nn.autograd`; these helpers compare its gradients against
central finite differences.  They are used by the test suite but are also
handy when extending the engine with new operations.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.module import Module, Parameter


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    value: np.ndarray,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of a scalar function of one array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = fn(value)
        flat[i] = original - epsilon
        lower = fn(value)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * epsilon)
    return grad


def check_tensor_gradient(
    fn: Callable[[Tensor], Tensor],
    value: np.ndarray,
    epsilon: float = 1e-5,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(analytic, numerical)`` gradients of a scalar-valued tensor function."""
    tensor = Tensor(np.asarray(value, dtype=np.float64).copy(), requires_grad=True)
    output = fn(tensor)
    if output.size != 1:
        output = output.sum()
    output.backward()
    analytic = tensor.grad.copy()

    def scalar(x: np.ndarray) -> float:
        out = fn(Tensor(x.copy()))
        return float(np.sum(out.data))

    numerical = numerical_gradient(scalar, np.asarray(value, dtype=np.float64), epsilon=epsilon)
    return analytic, numerical


def max_gradient_error(
    fn: Callable[[Tensor], Tensor],
    value: np.ndarray,
    epsilon: float = 1e-5,
) -> float:
    """Largest absolute difference between analytic and numerical gradients."""
    analytic, numerical = check_tensor_gradient(fn, value, epsilon=epsilon)
    return float(np.max(np.abs(analytic - numerical)))


def check_module_gradients(
    module: Module,
    loss_fn: Callable[[Module], Tensor],
    parameters: Sequence[Parameter] | None = None,
    epsilon: float = 1e-5,
) -> dict[str, float]:
    """Compare analytic vs numerical gradients of a module's parameters.

    ``loss_fn`` computes a scalar loss from the module (it may capture inputs
    in a closure).  Returns the maximum absolute error per parameter name.
    """
    named = list(module.named_parameters())
    if parameters is not None:
        wanted = {id(p) for p in parameters}
        named = [(name, p) for name, p in named if id(p) in wanted]

    module.zero_grad()
    loss = loss_fn(module)
    loss.backward()
    analytic = {name: (p.grad.copy() if p.grad is not None else np.zeros_like(p.data)) for name, p in named}

    errors: dict[str, float] = {}
    for name, parameter in named:

        def scalar(values: np.ndarray, parameter=parameter) -> float:
            original = parameter.data
            parameter.data = values
            try:
                return float(loss_fn(module).data)
            finally:
                parameter.data = original

        numerical = numerical_gradient(scalar, parameter.data.copy(), epsilon=epsilon)
        errors[name] = float(np.max(np.abs(analytic[name] - numerical)))
    return errors
