"""Loss functions used by the HisRect training objectives.

* ``softmax_cross_entropy`` — the supervised POI-classification loss ``L_poi``.
* ``binary_cross_entropy_with_logits`` — the co-location judge loss ``L_co``.
* ``cosine_similarity`` / ``cosine_embedding_loss`` — the unsupervised SSL loss
  ``L_u`` (the paper penalises ``a_ij * (1 - <E(F(r_i)), E(F(r_j))>)`` on
  normalised embeddings).
* ``l2_embedding_loss`` — the alternative unsupervised loss from §6.4.3 (the
  Weston-style squared distance), kept for the SSL-alternatives ablation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""
    return log_softmax(logits, axis=axis).exp()


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of ``(B, C)`` logits against integer labels ``(B,)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (batch, classes)")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError("labels must be 1-D and aligned with the logits batch")
    log_probs = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), labels]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy of raw scores against {0, 1} targets.

    Uses the stable formulation ``max(z, 0) - z*y + log(1 + exp(-|z|))``.
    """
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    zeros = logits * 0.0
    loss = logits.relu() - logits * targets_t + ((zeros - logits.abs()).exp() + 1.0).log()
    return loss.mean()


def sigmoid_probabilities(logits: Tensor) -> np.ndarray:
    """Convenience: sigmoid of detached logits as a NumPy array."""
    return 1.0 / (1.0 + np.exp(-logits.data))


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Cosine similarity along ``axis``; safe for zero vectors."""
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps) ** 0.5
    norm_b = ((b * b).sum(axis=axis) + eps) ** 0.5
    return dot / (norm_a * norm_b)


def cosine_embedding_loss(
    emb_a: Tensor, emb_b: Tensor, affinities: np.ndarray, axis: int = -1
) -> Tensor:
    """The paper's unsupervised loss ``L_u = mean_ij a_ij (1 - cos(e_i, e_j))``.

    Positive affinities pull embeddings together; negative affinities (negative
    pairs) push them apart because the ``(1 - cos)`` term then rewards
    dissimilarity.
    """
    affinities_t = Tensor(np.asarray(affinities, dtype=np.float64))
    similarity = cosine_similarity(emb_a, emb_b, axis=axis)
    return (affinities_t * (1.0 - similarity)).mean()


def l2_embedding_loss(emb_a: Tensor, emb_b: Tensor, affinities: np.ndarray) -> Tensor:
    """The §6.4.3 alternative: ``mean_ij a_ij ||e_i - e_j||^2``."""
    affinities_t = Tensor(np.asarray(affinities, dtype=np.float64))
    diff = emb_a - emb_b
    sq = (diff * diff).sum(axis=-1)
    return (affinities_t * sq).mean()


def l2_regularization(parameters, coefficient: float) -> Tensor:
    """Sum of squared parameter values times ``coefficient``."""
    total: Tensor | None = None
    for param in parameters:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * coefficient
