"""Neural-network substrate: autodiff, layers, recurrent nets, losses, optimisers."""

from repro.nn.autograd import Tensor, as_tensor, concatenate, stack, zeros
from repro.nn.conv import Conv2D, TemporalConv
from repro.nn.embedding import Embedding
from repro.nn.gradcheck import check_module_gradients, check_tensor_gradient, max_gradient_error, numerical_gradient
from repro.nn.gru import GRU, BiGRU, GRUCell
from repro.nn.layers import MLP, Dropout, Linear, ReLU, Sequential, Sigmoid, Tanh, l2_normalize
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    cosine_embedding_loss,
    cosine_similarity,
    l2_embedding_loss,
    l2_regularization,
    log_softmax,
    sigmoid_probabilities,
    softmax,
    softmax_cross_entropy,
)
from repro.nn.module import Module, Parameter
from repro.nn.normalization import BatchNorm1d, LayerNorm, RMSNorm
from repro.nn.optim import SGD, Adagrad, Adam, AdamW, Optimizer, RMSprop, clip_grad_norm
from repro.nn.pooling import (
    AttentionPooling,
    LastState,
    MaxOverTime,
    MeanOverTime,
    make_pooling,
    masked_mean_over_time,
    masked_softmax_over_time,
    softmax_over_time,
)
from repro.nn.recurrent import LSTM, BiLSTM, ConvLSTM, ConvLSTMCell, LSTMCell, time_mask
from repro.nn.schedulers import (
    CosineAnnealing,
    ExponentialDecay,
    InverseTimeDecay,
    LRScheduler,
    StepDecay,
    WarmupWrapper,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "zeros",
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Sequential",
    "MLP",
    "l2_normalize",
    "LSTMCell",
    "LSTM",
    "BiLSTM",
    "ConvLSTM",
    "ConvLSTMCell",
    "Conv2D",
    "TemporalConv",
    "softmax",
    "log_softmax",
    "softmax_cross_entropy",
    "binary_cross_entropy_with_logits",
    "sigmoid_probabilities",
    "cosine_similarity",
    "cosine_embedding_loss",
    "l2_embedding_loss",
    "l2_regularization",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSprop",
    "Adagrad",
    "clip_grad_norm",
    "GRUCell",
    "GRU",
    "BiGRU",
    "Embedding",
    "LayerNorm",
    "RMSNorm",
    "BatchNorm1d",
    "MeanOverTime",
    "MaxOverTime",
    "AttentionPooling",
    "LastState",
    "make_pooling",
    "softmax_over_time",
    "masked_mean_over_time",
    "masked_softmax_over_time",
    "time_mask",
    "LRScheduler",
    "InverseTimeDecay",
    "ExponentialDecay",
    "StepDecay",
    "CosineAnnealing",
    "WarmupWrapper",
    "numerical_gradient",
    "check_tensor_gradient",
    "max_gradient_error",
    "check_module_gradients",
]
