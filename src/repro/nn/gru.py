"""Gated recurrent units: GRU cell, GRU and bidirectional GRU.

The paper's content encoder is a bidirectional LSTM (plus convolution —
``BiLSTM-C``); a GRU encoder is a natural lighter-weight alternative that the
reproduction ships as an extension approach (``BGRU`` in
:mod:`repro.features.content`).  Interfaces mirror :mod:`repro.nn.recurrent`:
``forward`` is the scalar ``(T, input_size)`` reference path and
``forward_batch`` steps a right-padded ``(B, T, input_size)`` batch with a
length vector, fusing the gate matmuls into ``(B, ...)`` calls and freezing
finished rows' states so valid positions match the scalar path.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, concatenate, stack
from repro.nn.module import Module, Parameter
from repro.nn.recurrent import masked_state, time_mask


class GRUCell(Module):
    """A single GRU step with the standard update/reset/candidate gates."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("GRU dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        std_x = init_std if init_std is not None else float(np.sqrt(1.0 / input_size))
        std_h = init_std if init_std is not None else float(np.sqrt(1.0 / hidden_size))
        # Fused weights for the update (z) and reset (r) gates.
        self.weight_x_zr = Parameter(rng.normal(0.0, std_x, size=(input_size, 2 * hidden_size)))
        self.weight_h_zr = Parameter(rng.normal(0.0, std_h, size=(hidden_size, 2 * hidden_size)))
        self.bias_zr = Parameter(np.zeros(2 * hidden_size))
        # Candidate state weights.
        self.weight_x_n = Parameter(rng.normal(0.0, std_x, size=(input_size, hidden_size)))
        self.weight_h_n = Parameter(rng.normal(0.0, std_h, size=(hidden_size, hidden_size)))
        self.bias_n = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One step: ``x`` is ``(1, input_size)``, ``h`` is ``(1, hidden_size)``."""
        gates = (x @ self.weight_x_zr + h @ self.weight_h_zr + self.bias_zr).sigmoid()
        n = self.hidden_size
        z_gate = gates[..., 0:n]
        r_gate = gates[..., n : 2 * n]
        candidate = (x @ self.weight_x_n + (r_gate * h) @ self.weight_h_n + self.bias_n).tanh()
        return z_gate * h + (1.0 - z_gate) * candidate


class GRU(Module):
    """Unidirectional GRU over a ``(T, input_size)`` sequence.

    Returns the ``(T, hidden_size)`` sequence of hidden states, starting from
    a zero initial state.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, init_std=init_std, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor, reverse: bool = False) -> Tensor:
        steps = sequence.shape[0]
        h = Tensor(np.zeros((1, self.hidden_size)))
        order = range(steps - 1, -1, -1) if reverse else range(steps)
        outputs: list[Tensor] = [None] * steps  # type: ignore[list-item]
        for t in order:
            x_t = sequence[t : t + 1, :]
            h = self.cell(x_t, h)
            outputs[t] = h
        return concatenate(outputs, axis=0)

    def forward_batch(self, sequence: Tensor, lengths: np.ndarray, reverse: bool = False) -> Tensor:
        """Run the GRU over a right-padded ``(B, T, input_size)`` batch.

        Returns ``(B, T, hidden_size)`` states; see
        :meth:`repro.nn.recurrent.LSTM.forward_batch` for the masking contract.
        """
        batch, steps = sequence.shape[0], sequence.shape[1]
        h = Tensor(np.zeros((batch, self.hidden_size)))
        mask = time_mask(lengths, steps)
        order = range(steps - 1, -1, -1) if reverse else range(steps)
        outputs: list[Tensor] = [None] * steps  # type: ignore[list-item]
        for t in order:
            h = masked_state(self.cell(sequence[:, t, :], h), h, mask[:, t])
            outputs[t] = h
        return stack(outputs, axis=1)


class BiGRU(Module):
    """Bidirectional GRU; concatenates forward and backward hidden states.

    Output shape is ``(T, 2 * hidden_size)``, matching what the plain
    ``BLSTM`` baseline produces so the two encoders are drop-in replacements
    for each other.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.forward_gru = GRU(input_size, hidden_size, init_std=init_std, rng=rng)
        self.backward_gru = GRU(input_size, hidden_size, init_std=init_std, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor) -> Tensor:
        forward_states = self.forward_gru(sequence)
        backward_states = self.backward_gru(sequence, reverse=True)
        return concatenate([forward_states, backward_states], axis=-1)

    def forward_batch(self, sequence: Tensor, lengths: np.ndarray) -> Tensor:
        """Batched bidirectional pass; ``(B, T, 2 * hidden_size)`` states."""
        forward_states = self.forward_gru.forward_batch(sequence, lengths)
        backward_states = self.backward_gru.forward_batch(sequence, lengths, reverse=True)
        return concatenate([forward_states, backward_states], axis=-1)
