"""A small reverse-mode automatic differentiation engine on NumPy.

The paper's architecture (BiLSTM-C content encoder, fully-connected HisRect
combiner, embedding layers, POI classifier and co-location judge) is built in
this package from scratch since no deep-learning framework is available
offline.  :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations
applied to it; ``Tensor.backward()`` runs reverse-mode differentiation over the
recorded graph.

Only the operations the HisRect models need are implemented, but each supports
full NumPy broadcasting where it makes sense, and every op is covered by
gradient-check tests in ``tests/nn``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

Array = np.ndarray


def _as_array(value) -> Array:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` — the adjoint of NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autodiff graph.

    Parameters
    ----------
    data:
        Anything convertible to a float64 ``numpy.ndarray``.
    requires_grad:
        Whether gradients should flow into this tensor.  Parameters and any
        tensor produced from a gradient-requiring tensor have this set.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data: Array = _as_array(data)
        self.grad: Array | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward_fn: Callable[[Array], tuple[Array, ...]] | None = None
        self.name = name

    # ------------------------------------------------------------------ util
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> Array:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_tag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_tag}, name={self.name!r})"

    # -------------------------------------------------------------- graph ops
    @staticmethod
    def _make(
        data: Array,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[Array], tuple[Array, ...]],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    def backward(self, grad: Array | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to 1.0 and is only optional for scalar outputs.
        """
        if not self.requires_grad:
            raise ValueError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, Array] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy()
            else:
                node.grad = node.grad + node_grad
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def backward(g: Array):
            return (_unbroadcast(g, self.data.shape), _unbroadcast(g, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: Array):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data

        def backward(g: Array):
            return (
                _unbroadcast(g * other.data, self.data.shape),
                _unbroadcast(g * self.data, other.data.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data

        def backward(g: Array):
            return (
                _unbroadcast(g / other.data, self.data.shape),
                _unbroadcast(-g * self.data / (other.data**2), other.data.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(g: Array):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data @ other.data

        def backward(g: Array):
            grad_a = g @ np.swapaxes(other.data, -1, -2)
            grad_b = np.swapaxes(self.data, -1, -2) @ g
            return (
                _unbroadcast(grad_a, self.data.shape),
                _unbroadcast(grad_b, other.data.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(g: Array):
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)
            return (full,)

        return Tensor._make(data, (self,), backward)

    # ----------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g: Array):
            return (g * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(g: Array):
            return (g / self.data,)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g: Array):
            return (g * (1.0 - data**2),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: Array):
            return (g * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(g: Array):
            return (g * mask,)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(g: Array):
            return (g * sign,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------ reductions
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: Array):
            if axis is None:
                return (np.broadcast_to(g, self.data.shape).copy(),)
            g_expanded = g
            if not keepdims:
                g_expanded = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g_expanded, self.data.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: Array):
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                return (mask * g,)
            expanded = data if keepdims else np.expand_dims(data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(g, axis=axis)
            return (mask * g_expanded,)

        return Tensor._make(data, (self,), backward)

    # --------------------------------------------------------------- reshape
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(g: Array):
            return (g.reshape(self.data.shape),)

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(g: Array):
            return (g.transpose(inverse),)

        return Tensor._make(data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce NumPy arrays and Python scalars into (non-grad) tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an axis, differentiably."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: Array):
        grads = []
        for i in range(len(tensors)):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiably."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: Array):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tensors, backward)


def zeros(shape: tuple[int, ...] | int, requires_grad: bool = False) -> Tensor:
    """A tensor of zeros."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def no_grad_params(tensors: Iterable[Tensor]) -> None:
    """Clear gradients on an iterable of tensors."""
    for tensor in tensors:
        tensor.zero_grad()
