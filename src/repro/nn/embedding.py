"""A trainable embedding lookup layer.

The paper trains word vectors offline with skip-gram and keeps them frozen
while the featurizer trains.  The reproduction also supports fine-tuning those
vectors end-to-end: :class:`Embedding` is a plain lookup table whose rows are
parameters, and :meth:`Embedding.from_pretrained` seeds it with skip-gram
vectors (optionally frozen to reproduce the paper's exact setup).
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Maps integer token ids to dense vectors.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size (number of rows).
    embedding_dim:
        Dimensionality of each vector.
    init_std:
        Standard deviation of the Gaussian initialiser.
    rng:
        Source of randomness for reproducible initialisation.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        init_std: float = 0.01,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, init_std, size=(num_embeddings, embedding_dim)))
        self._frozen = False

    @classmethod
    def from_pretrained(cls, vectors: np.ndarray, freeze: bool = True) -> "Embedding":
        """Build a layer whose rows are ``vectors`` (e.g. skip-gram output)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError("pretrained vectors must be a 2-D (vocab, dim) array")
        layer = cls(vectors.shape[0], vectors.shape[1])
        layer.weight.data = vectors.copy()
        layer._frozen = freeze
        return layer

    @property
    def frozen(self) -> bool:
        """True when lookups bypass the autograd graph (vectors never update)."""
        return self._frozen

    def freeze(self) -> "Embedding":
        """Stop gradient flow into the embedding table."""
        self._frozen = True
        return self

    def unfreeze(self) -> "Embedding":
        """Allow gradients to update the embedding table again."""
        self._frozen = False
        return self

    def forward(self, token_ids) -> Tensor:
        """Look up a sequence of token ids; returns a ``(T, dim)`` tensor."""
        ids = np.asarray(token_ids, dtype=np.intp)
        if ids.ndim != 1:
            raise ValueError("Embedding expects a 1-D sequence of token ids")
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise ValueError("token id outside the embedding table")
        if self._frozen:
            return Tensor(self.weight.data[ids].copy())
        return self.weight[ids]

    def vector(self, token_id: int) -> np.ndarray:
        """The current vector for one token id (a copy, never a view)."""
        if not 0 <= token_id < self.num_embeddings:
            raise ValueError("token id outside the embedding table")
        return self.weight.data[token_id].copy()
