"""Convolution layers used by the BiLSTM-C content encoder.

The paper stacks a convolution on top of the bidirectional LSTM: the forward
and backward hidden-state sequences form a ``T x N x 2`` tensor viewed as a
2-channel image, a ``3 x N`` filter (spanning both channels) plus a ReLU
produce a ``(T-2) x N`` feature map, and the mean over the first dimension is
the fixed ``N``-dimensional content feature ``Fc(r)``.

:class:`Conv2D` is a general valid-mode 2-D convolution over ``(H, W, C_in)``
inputs; :class:`TemporalConv` is the specific "3-row filter bank over time"
instantiation the featurizer uses.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, concatenate, stack
from repro.nn.module import Module, Parameter


class Conv2D(Module):
    """Valid-mode 2-D convolution for channels-last inputs ``(H, W, C_in)``.

    The output has shape ``(H - kh + 1, W - kw + 1, out_channels)``.  The
    implementation loops over output positions, which is appropriate for the
    small feature maps of this reproduction (tweets are tens of tokens).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_height: int,
        kernel_width: int,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if min(in_channels, out_channels, kernel_height, kernel_width) <= 0:
            raise ValueError("convolution dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_height = kernel_height
        self.kernel_width = kernel_width
        fan_in = kernel_height * kernel_width * in_channels
        if init_std is None:
            init_std = float(np.sqrt(2.0 / fan_in))
        self.weight = Parameter(rng.normal(0.0, init_std, size=(fan_in, out_channels)))
        self.bias = Parameter(np.zeros(out_channels))

    def forward(self, image: Tensor) -> Tensor:
        height, width, channels = image.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        out_h = height - self.kernel_height + 1
        out_w = width - self.kernel_width + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(
                "input is smaller than the kernel: "
                f"({height}, {width}) vs ({self.kernel_height}, {self.kernel_width})"
            )
        rows = []
        for i in range(out_h):
            cols = []
            for j in range(out_w):
                patch = image[i : i + self.kernel_height, j : j + self.kernel_width, :]
                flat = patch.reshape(1, self.kernel_height * self.kernel_width * channels)
                cols.append(flat @ self.weight + self.bias)
            row = concatenate(cols, axis=0).reshape(1, out_w, self.out_channels)
            rows.append(row)
        return concatenate(rows, axis=0)

    def forward_batch(self, images: Tensor) -> Tensor:
        """Convolve a ``(B, H, W, C_in)`` batch into ``(B, H', W', C_out)``.

        Each output position is one ``(B, fan_in) @ (fan_in, C_out)`` matmul
        covering the whole batch, so the per-position Python loop is paid once
        per batch instead of once per image; each row matches :meth:`forward`.
        """
        batch, height, width, channels = images.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        out_h = height - self.kernel_height + 1
        out_w = width - self.kernel_width + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(
                "input is smaller than the kernel: "
                f"({height}, {width}) vs ({self.kernel_height}, {self.kernel_width})"
            )
        positions = []
        for i in range(out_h):
            for j in range(out_w):
                patch = images[:, i : i + self.kernel_height, j : j + self.kernel_width, :]
                flat = patch.reshape(batch, self.kernel_height * self.kernel_width * channels)
                positions.append(flat @ self.weight + self.bias)
        grid = stack(positions, axis=1)  # (B, out_h * out_w, C_out)
        return grid.reshape(batch, out_h, out_w, self.out_channels)


class TemporalConv(Module):
    """The BiLSTM-C convolution: a full-width, height-3 filter bank over time.

    Consumes the ``(T, N, 2)`` stacked hidden states, applies ``N`` filters of
    shape ``3 x N x 2`` in valid mode and returns the ``(T-2, N)`` feature map
    (before the ReLU + mean pooling done by the content encoder).
    """

    def __init__(
        self,
        width: int,
        kernel_height: int = 3,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.width = width
        self.kernel_height = kernel_height
        self.conv = Conv2D(
            in_channels=2,
            out_channels=width,
            kernel_height=kernel_height,
            kernel_width=width,
            init_std=init_std,
            rng=rng,
        )

    def forward(self, stacked_states: Tensor) -> Tensor:
        steps, width, channels = stacked_states.shape
        if width != self.width or channels != 2:
            raise ValueError(f"expected (T, {self.width}, 2) input, got {stacked_states.shape}")
        feature_map = self.conv(stacked_states)  # (T - kh + 1, 1, width)
        out_h = steps - self.kernel_height + 1
        return feature_map.reshape(out_h, self.width)

    def forward_batch(self, stacked_states: Tensor) -> Tensor:
        """Convolve a ``(B, T, N, 2)`` batch of stacked states into ``(B, T - kh + 1, N)``."""
        batch, steps, width, channels = stacked_states.shape
        if width != self.width or channels != 2:
            raise ValueError(f"expected (B, T, {self.width}, 2) input, got {stacked_states.shape}")
        feature_map = self.conv.forward_batch(stacked_states)  # (B, T - kh + 1, 1, width)
        return feature_map.reshape(batch, steps - self.kernel_height + 1, self.width)
