"""Module and parameter abstractions on top of the autodiff engine.

Mirrors the familiar ``torch.nn.Module`` contract at a much smaller scale:
modules own named :class:`Parameter` tensors (and sub-modules), expose
``parameters()`` for optimisers, and switch between training and evaluation
mode (the paper uses dropout at train time only).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.autograd import Tensor


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for every neural component in the reproduction."""

    def __init__(self) -> None:
        self.training = True

    # -------------------------------------------------------------- traversal
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, recursively."""
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full_name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{i}.")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules."""
        yield self
        for value in vars(self).items():
            _, attr = value
            if isinstance(attr, Module):
                yield from attr.modules()
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------ state
    def train(self) -> "Module":
        """Put this module and all children into training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put this module and all children into evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.data.size for p in self.parameters())

    # -------------------------------------------------------------- state I/O
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter value keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, values in state.items():
            if own[name].data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {own[name].data.shape} vs {values.shape}"
                )
            own[name].data = values.astype(np.float64).copy()

    # ------------------------------------------------------------------ call
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
