"""Pooling over the time axis of recurrent-state sequences.

``BiLSTM-C`` reduces its convolutional feature map with a mean over the time
axis (paper Eq. 3).  The reproduction also offers max pooling and a learned
attention pooling so the content-encoder ablation can compare reduction
strategies, not just recurrent architectures.  All modules take a ``(T, N)``
tensor and return a ``(N,)``-shaped (or ``(1, N)``) summary.

The batched content encoders pool right-padded ``(B, T, N)`` sequences
instead; :func:`masked_mean_over_time`, :func:`masked_softmax_over_time` and
:meth:`AttentionPooling.forward_batch` take the ``(B, T)`` validity mask of
:func:`repro.nn.recurrent.time_mask` and reduce each row over its valid
positions only, matching the scalar reductions within 1e-9.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import Linear
from repro.nn.module import Module


class MeanOverTime(Module):
    """Mean of the hidden states across the time axis (the paper's reduction)."""

    def forward(self, sequence: Tensor) -> Tensor:
        return sequence.mean(axis=0)


class MaxOverTime(Module):
    """Element-wise maximum of the hidden states across the time axis."""

    def forward(self, sequence: Tensor) -> Tensor:
        return sequence.max(axis=0)


def softmax_over_time(scores: Tensor) -> Tensor:
    """Differentiable softmax of a ``(T, 1)`` (or ``(T,)``) score tensor."""
    shifted = scores - Tensor(np.max(scores.data))
    exponentials = shifted.exp()
    return exponentials / exponentials.sum()


def masked_mean_over_time(sequence: Tensor, mask: np.ndarray) -> Tensor:
    """Per-row mean over the valid positions of a ``(B, T, N)`` sequence.

    ``mask`` is the ``(B, T)`` validity mask; every row must have at least one
    valid position.  Padded positions contribute exact zeros to the sum, so
    each row equals the scalar ``states.mean(axis=0)`` of its valid prefix.
    """
    counts = mask.sum(axis=1)
    weighted = sequence * Tensor(mask[:, :, None])
    return weighted.sum(axis=1) * Tensor((1.0 / counts)[:, None])


def masked_softmax_over_time(scores: Tensor, mask: np.ndarray) -> Tensor:
    """Softmax over axis 1 of ``(B, T, 1)`` scores, restricted to valid positions.

    Matches :func:`softmax_over_time` on each row's valid prefix: the per-row
    peak is taken over valid positions only and padded positions get exactly
    zero weight.
    """
    column_mask = mask[:, :, None]
    finite = np.where(column_mask > 0.0, scores.data, -np.inf)
    peaks = finite.max(axis=1, keepdims=True)  # (B, 1, 1)
    # Zero the shifted scores at padded positions *before* exp: a filler-state
    # score far above the row's valid peak would otherwise overflow exp() to
    # inf, and inf * 0 would poison the row with NaN.
    mask_tensor = Tensor(column_mask)
    exponentials = ((scores - Tensor(peaks)) * mask_tensor).exp() * mask_tensor
    return exponentials / exponentials.sum(axis=1, keepdims=True)


class AttentionPooling(Module):
    """Additive (Bahdanau-style) attention pooling over the time axis.

    Each hidden state is scored with a small feed-forward scorer; the summary
    is the attention-weighted sum of the states.  This gives the content
    encoder a way to focus on location-bearing words ("liberty", "strip")
    instead of averaging them together with stop-word noise.
    """

    def __init__(
        self,
        num_features: int,
        attention_dim: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_features <= 0:
            raise ValueError("AttentionPooling feature count must be positive")
        rng = rng or np.random.default_rng()
        attention_dim = attention_dim or max(num_features // 2, 1)
        self.projection = Linear(num_features, attention_dim, rng=rng)
        self.score = Linear(attention_dim, 1, rng=rng)
        self.num_features = num_features

    def attention_weights(self, sequence: Tensor) -> np.ndarray:
        """The ``(T,)`` attention distribution for inspection/visualisation."""
        scores = self.score(self.projection(sequence).tanh())
        return softmax_over_time(scores).numpy().reshape(-1)

    def forward(self, sequence: Tensor) -> Tensor:
        scores = self.score(self.projection(sequence).tanh())  # (T, 1)
        weights = softmax_over_time(scores)  # (T, 1)
        weighted = sequence * weights  # broadcast over features
        return weighted.sum(axis=0)

    def forward_batch(self, sequence: Tensor, mask: np.ndarray) -> Tensor:
        """Attention-pool a right-padded ``(B, T, N)`` batch into ``(B, N)``.

        ``mask`` is the ``(B, T)`` validity mask; padded positions receive
        zero attention so each row matches :meth:`forward` on its valid prefix.
        """
        scores = self.score(self.projection(sequence).tanh())  # (B, T, 1)
        weights = masked_softmax_over_time(scores, mask)  # (B, T, 1)
        return (sequence * weights).sum(axis=1)


class LastState(Module):
    """Take the final hidden state as the sequence summary."""

    def forward(self, sequence: Tensor) -> Tensor:
        steps = sequence.shape[0]
        return sequence[steps - 1 : steps, :].reshape(-1)


def make_pooling(name: str, num_features: int, rng: np.random.Generator | None = None) -> Module:
    """Factory mapping a pooling name to a module.

    Recognised names: ``mean``, ``max``, ``attention``, ``last``.
    """
    normalised = name.strip().lower()
    if normalised == "mean":
        return MeanOverTime()
    if normalised == "max":
        return MaxOverTime()
    if normalised == "attention":
        return AttentionPooling(num_features, rng=rng)
    if normalised == "last":
        return LastState()
    raise ValueError(f"unknown pooling {name!r}; expected mean, max, attention or last")
