"""Recurrent layers: LSTM cell, LSTM, bidirectional LSTM and a 1-D ConvLSTM.

The paper encodes the word-vector sequence of a recent tweet with a
bidirectional LSTM (plus a convolution layer on top — ``BiLSTM-C``, see
:mod:`repro.nn.conv`), and compares against a plain ``BLSTM`` variant and a
``ConvLSTM`` variant whose input-to-state and state-to-state transitions are
convolutions.

Every layer offers two forwards:

* ``forward`` — the scalar reference path over one ``(T, M)`` sequence,
  kept as the documented ground truth for the equivalence tests.
* ``forward_batch`` — the serving/training hot path over a right-padded
  ``(B, T, M)`` batch with a per-row length vector.  Each time step runs one
  fused gate matmul of shape ``(B, 4N)`` instead of ``B`` separate ``(1, 4N)``
  calls, and rows whose sequence has ended keep (forward direction) or have
  not yet started (backward direction) a frozen state, so per-row outputs at
  valid positions match the scalar path within 1e-9
  (``tests/nn/test_recurrent_batch.py`` and
  ``tests/features/test_content_batch.py`` pin the contract).

Positions at or beyond a row's length carry frozen/zero filler states; callers
must mask them out when pooling (see :mod:`repro.nn.pooling`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, concatenate, stack
from repro.nn.module import Module, Parameter


def time_mask(lengths: np.ndarray, steps: int) -> np.ndarray:
    """The ``(B, steps)`` validity mask of right-padded sequences.

    ``mask[b, t]`` is 1.0 iff ``t < lengths[b]``; lengths clip at zero so a
    shortened length vector (e.g. conv-output lengths ``L - kh + 1``) is safe.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    return (np.arange(steps)[None, :] < lengths[:, None]).astype(np.float64)


def masked_state(new: Tensor, old: Tensor, column: np.ndarray) -> Tensor:
    """Blend one recurrent-state update by a ``(B,)`` validity column.

    Rows with column 1.0 advance to ``new``; rows with 0.0 keep ``old`` — the
    state freeze that makes right-padded batches match the scalar recurrence
    at every valid position.  An all-valid column skips the blend graph.
    """
    if column.all():
        return new
    keep = Tensor(column[:, None])
    return new * keep + old * Tensor(1.0 - column[:, None])


class LSTMCell(Module):
    """A single LSTM step with the standard gate formulation."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        std_x = init_std if init_std is not None else float(np.sqrt(1.0 / input_size))
        std_h = init_std if init_std is not None else float(np.sqrt(1.0 / hidden_size))
        # One fused weight matrix for the four gates: input, forget, cell, output.
        self.weight_x = Parameter(rng.normal(0.0, std_x, size=(input_size, 4 * hidden_size)))
        self.weight_h = Parameter(rng.normal(0.0, std_h, size=(hidden_size, 4 * hidden_size)))
        self.bias = Parameter(np.zeros(4 * hidden_size))

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(input_size,)`` (or ``(1, input_size)``) shaped."""
        gates = x @ self.weight_x + h @ self.weight_h + self.bias
        n = self.hidden_size
        i_gate = gates[..., 0:n].sigmoid()
        f_gate = gates[..., n : 2 * n].sigmoid()
        g_gate = gates[..., 2 * n : 3 * n].tanh()
        o_gate = gates[..., 3 * n : 4 * n].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Unidirectional LSTM over a ``(T, input_size)`` sequence.

    Returns the ``(T, hidden_size)`` sequence of hidden states.  The initial
    state is zero, matching the paper's initialisation.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, init_std=init_std, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor, reverse: bool = False) -> Tensor:
        steps = sequence.shape[0]
        h = Tensor(np.zeros((1, self.hidden_size)))
        c = Tensor(np.zeros((1, self.hidden_size)))
        order = range(steps - 1, -1, -1) if reverse else range(steps)
        outputs: list[Tensor] = [None] * steps  # type: ignore[list-item]
        for t in order:
            x_t = sequence[t : t + 1, :]
            h, c = self.cell(x_t, h, c)
            outputs[t] = h
        return concatenate(outputs, axis=0)

    def forward_batch(self, sequence: Tensor, lengths: np.ndarray, reverse: bool = False) -> Tensor:
        """Run the recurrence over a right-padded ``(B, T, input_size)`` batch.

        Returns the ``(B, T, hidden_size)`` hidden states.  Rows shorter than
        ``T`` freeze their state once past ``lengths[b]`` (forward) or stay at
        the zero initial state until entering the valid region (backward), so
        outputs at valid positions match :meth:`forward` row by row; outputs
        at padded positions are filler the caller must mask out.
        """
        batch, steps = sequence.shape[0], sequence.shape[1]
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        mask = time_mask(lengths, steps)
        order = range(steps - 1, -1, -1) if reverse else range(steps)
        outputs: list[Tensor] = [None] * steps  # type: ignore[list-item]
        for t in order:
            h_next, c_next = self.cell(sequence[:, t, :], h, c)
            column = mask[:, t]
            h = masked_state(h_next, h, column)
            c = masked_state(c_next, c, column)
            outputs[t] = h
        return stack(outputs, axis=1)


class BiLSTM(Module):
    """Bidirectional LSTM; concatenates forward and backward hidden states.

    Output shape is ``(T, 2 * hidden_size)`` when ``stacked_channels`` is False
    (the plain ``BLSTM`` baseline) and ``(T, hidden_size, 2)`` when True (the
    2-channel "image" the BiLSTM-C convolution consumes).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.forward_layers = []
        self.backward_layers = []
        current = input_size
        for _ in range(num_layers):
            self.forward_layers.append(LSTM(current, hidden_size, init_std=init_std, rng=rng))
            self.backward_layers.append(LSTM(current, hidden_size, init_std=init_std, rng=rng))
            current = 2 * hidden_size

    def forward(self, sequence: Tensor, stacked_channels: bool = False) -> Tensor:
        current = sequence
        fwd = bwd = None
        for fwd_layer, bwd_layer in zip(self.forward_layers, self.backward_layers):
            fwd = fwd_layer(current)
            bwd = bwd_layer(current, reverse=True)
            current = concatenate([fwd, bwd], axis=1)
        assert fwd is not None and bwd is not None
        if stacked_channels:
            return stack([fwd, bwd], axis=2)
        return current

    def forward_batch(
        self, sequence: Tensor, lengths: np.ndarray, stacked_channels: bool = False
    ) -> Tensor:
        """Batched bidirectional pass over a right-padded ``(B, T, M)`` batch.

        Output shape is ``(B, T, 2 * hidden_size)`` (or ``(B, T, hidden_size,
        2)`` with ``stacked_channels``); valid positions match :meth:`forward`.
        """
        current = sequence
        fwd = bwd = None
        for fwd_layer, bwd_layer in zip(self.forward_layers, self.backward_layers):
            fwd = fwd_layer.forward_batch(current, lengths)
            bwd = bwd_layer.forward_batch(current, lengths, reverse=True)
            current = concatenate([fwd, bwd], axis=2)
        assert fwd is not None and bwd is not None
        if stacked_channels:
            return stack([fwd, bwd], axis=3)
        return current


class ConvLSTMCell(Module):
    """A 1-D ConvLSTM cell (Shi et al., 2015) over the feature dimension.

    Input-to-state and state-to-state transitions are 1-D convolutions along
    the word-vector dimension, so each position of the hidden state only mixes
    nearby embedding dimensions.  This is the ``ConvLSTM`` baseline of Table 3.
    """

    def __init__(
        self,
        width: int,
        kernel_size: int = 3,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd so padding keeps the width")
        rng = rng or np.random.default_rng()
        self.width = width
        self.kernel_size = kernel_size
        if init_std is None:
            init_std = float(np.sqrt(1.0 / kernel_size))
        self.weight_x = Parameter(rng.normal(0.0, init_std, size=(4, kernel_size)))
        self.weight_h = Parameter(rng.normal(0.0, init_std, size=(4, kernel_size)))
        self.bias = Parameter(np.zeros((4, width)))

    def _conv1d(self, signal: Tensor, kernel_row: Tensor) -> Tensor:
        """Same-padded 1-D convolution of a ``(width,)`` signal with a small kernel."""
        pad = self.kernel_size // 2
        padded = concatenate(
            [Tensor(np.zeros(pad)), signal, Tensor(np.zeros(pad))], axis=0
        )
        taps = []
        for k in range(self.kernel_size):
            taps.append(padded[k : k + self.width] * kernel_row[k])
        out = taps[0]
        for tap in taps[1:]:
            out = out + tap
        return out

    def _conv1d_batch(self, signal: Tensor, kernel_row: Tensor) -> Tensor:
        """Same-padded 1-D convolution of every row of a ``(B, width)`` signal.

        Tap order and per-element arithmetic mirror :meth:`_conv1d`, so each
        row equals the scalar convolution of that row exactly.
        """
        pad = self.kernel_size // 2
        zeros = Tensor(np.zeros((signal.shape[0], pad)))
        padded = concatenate([zeros, signal, zeros], axis=1)
        taps = []
        for k in range(self.kernel_size):
            taps.append(padded[:, k : k + self.width] * kernel_row[k])
        out = taps[0]
        for tap in taps[1:]:
            out = out + tap
        return out

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One step over a ``(width,)`` input."""
        i_gate = (self._conv1d(x, self.weight_x[0]) + self._conv1d(h, self.weight_h[0]) + self.bias[0]).sigmoid()
        f_gate = (self._conv1d(x, self.weight_x[1]) + self._conv1d(h, self.weight_h[1]) + self.bias[1]).sigmoid()
        g_gate = (self._conv1d(x, self.weight_x[2]) + self._conv1d(h, self.weight_h[2]) + self.bias[2]).tanh()
        o_gate = (self._conv1d(x, self.weight_x[3]) + self._conv1d(h, self.weight_h[3]) + self.bias[3]).sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def forward_batch(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One step over a ``(B, width)`` input with ``(B, width)`` states."""
        conv = self._conv1d_batch
        i_gate = (conv(x, self.weight_x[0]) + conv(h, self.weight_h[0]) + self.bias[0]).sigmoid()
        f_gate = (conv(x, self.weight_x[1]) + conv(h, self.weight_h[1]) + self.bias[1]).sigmoid()
        g_gate = (conv(x, self.weight_x[2]) + conv(h, self.weight_h[2]) + self.bias[2]).tanh()
        o_gate = (conv(x, self.weight_x[3]) + conv(h, self.weight_h[3]) + self.bias[3]).sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class ConvLSTM(Module):
    """Runs a :class:`ConvLSTMCell` over a ``(T, width)`` sequence."""

    def __init__(
        self,
        width: int,
        kernel_size: int = 3,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.cell = ConvLSTMCell(width, kernel_size=kernel_size, init_std=init_std, rng=rng)
        self.width = width

    def forward(self, sequence: Tensor) -> Tensor:
        steps = sequence.shape[0]
        h = Tensor(np.zeros(self.width))
        c = Tensor(np.zeros(self.width))
        outputs = []
        for t in range(steps):
            h, c = self.cell(sequence[t], h, c)
            outputs.append(h.reshape(1, self.width))
        return concatenate(outputs, axis=0)

    def forward_batch(self, sequence: Tensor, lengths: np.ndarray) -> Tensor:
        """Run the ConvLSTM over a right-padded ``(B, T, width)`` batch.

        Returns ``(B, T, width)`` states; rows freeze once past ``lengths[b]``
        so valid positions match :meth:`forward` and padded positions are
        filler the caller must mask out.
        """
        batch, steps = sequence.shape[0], sequence.shape[1]
        h = Tensor(np.zeros((batch, self.width)))
        c = Tensor(np.zeros((batch, self.width)))
        mask = time_mask(lengths, steps)
        outputs = []
        for t in range(steps):
            h_next, c_next = self.cell.forward_batch(sequence[:, t, :], h, c)
            column = mask[:, t]
            h = masked_state(h_next, h, column)
            c = masked_state(c_next, c, column)
            outputs.append(h)
        return stack(outputs, axis=1)
