"""Recurrent layers: LSTM cell, LSTM, bidirectional LSTM and a 1-D ConvLSTM.

The paper encodes the word-vector sequence of a recent tweet with a
bidirectional LSTM (plus a convolution layer on top — ``BiLSTM-C``, see
:mod:`repro.nn.conv`), and compares against a plain ``BLSTM`` variant and a
``ConvLSTM`` variant whose input-to-state and state-to-state transitions are
convolutions.  Sequences are processed one profile at a time (shape ``(T, M)``)
which keeps the implementation simple and is fast enough at the reproduction's
laptop scale.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, concatenate, stack
from repro.nn.module import Module, Parameter


class LSTMCell(Module):
    """A single LSTM step with the standard gate formulation."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        std_x = init_std if init_std is not None else float(np.sqrt(1.0 / input_size))
        std_h = init_std if init_std is not None else float(np.sqrt(1.0 / hidden_size))
        # One fused weight matrix for the four gates: input, forget, cell, output.
        self.weight_x = Parameter(rng.normal(0.0, std_x, size=(input_size, 4 * hidden_size)))
        self.weight_h = Parameter(rng.normal(0.0, std_h, size=(hidden_size, 4 * hidden_size)))
        self.bias = Parameter(np.zeros(4 * hidden_size))

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(input_size,)`` (or ``(1, input_size)``) shaped."""
        gates = x @ self.weight_x + h @ self.weight_h + self.bias
        n = self.hidden_size
        i_gate = gates[..., 0:n].sigmoid()
        f_gate = gates[..., n : 2 * n].sigmoid()
        g_gate = gates[..., 2 * n : 3 * n].tanh()
        o_gate = gates[..., 3 * n : 4 * n].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Unidirectional LSTM over a ``(T, input_size)`` sequence.

    Returns the ``(T, hidden_size)`` sequence of hidden states.  The initial
    state is zero, matching the paper's initialisation.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, init_std=init_std, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor, reverse: bool = False) -> Tensor:
        steps = sequence.shape[0]
        h = Tensor(np.zeros((1, self.hidden_size)))
        c = Tensor(np.zeros((1, self.hidden_size)))
        order = range(steps - 1, -1, -1) if reverse else range(steps)
        outputs: list[Tensor] = [None] * steps  # type: ignore[list-item]
        for t in order:
            x_t = sequence[t : t + 1, :]
            h, c = self.cell(x_t, h, c)
            outputs[t] = h
        return concatenate(outputs, axis=0)


class BiLSTM(Module):
    """Bidirectional LSTM; concatenates forward and backward hidden states.

    Output shape is ``(T, 2 * hidden_size)`` when ``stacked_channels`` is False
    (the plain ``BLSTM`` baseline) and ``(T, hidden_size, 2)`` when True (the
    2-channel "image" the BiLSTM-C convolution consumes).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.forward_layers = []
        self.backward_layers = []
        current = input_size
        for _ in range(num_layers):
            self.forward_layers.append(LSTM(current, hidden_size, init_std=init_std, rng=rng))
            self.backward_layers.append(LSTM(current, hidden_size, init_std=init_std, rng=rng))
            current = 2 * hidden_size

    def forward(self, sequence: Tensor, stacked_channels: bool = False) -> Tensor:
        current = sequence
        fwd = bwd = None
        for fwd_layer, bwd_layer in zip(self.forward_layers, self.backward_layers):
            fwd = fwd_layer(current)
            bwd = bwd_layer(current, reverse=True)
            current = concatenate([fwd, bwd], axis=1)
        assert fwd is not None and bwd is not None
        if stacked_channels:
            return stack([fwd, bwd], axis=2)
        return current


class ConvLSTMCell(Module):
    """A 1-D ConvLSTM cell (Shi et al., 2015) over the feature dimension.

    Input-to-state and state-to-state transitions are 1-D convolutions along
    the word-vector dimension, so each position of the hidden state only mixes
    nearby embedding dimensions.  This is the ``ConvLSTM`` baseline of Table 3.
    """

    def __init__(
        self,
        width: int,
        kernel_size: int = 3,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd so padding keeps the width")
        rng = rng or np.random.default_rng()
        self.width = width
        self.kernel_size = kernel_size
        if init_std is None:
            init_std = float(np.sqrt(1.0 / kernel_size))
        self.weight_x = Parameter(rng.normal(0.0, init_std, size=(4, kernel_size)))
        self.weight_h = Parameter(rng.normal(0.0, init_std, size=(4, kernel_size)))
        self.bias = Parameter(np.zeros((4, width)))

    def _conv1d(self, signal: Tensor, kernel_row: Tensor) -> Tensor:
        """Same-padded 1-D convolution of a ``(width,)`` signal with a small kernel."""
        pad = self.kernel_size // 2
        padded = concatenate(
            [Tensor(np.zeros(pad)), signal, Tensor(np.zeros(pad))], axis=0
        )
        taps = []
        for k in range(self.kernel_size):
            taps.append(padded[k : k + self.width] * kernel_row[k])
        out = taps[0]
        for tap in taps[1:]:
            out = out + tap
        return out

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One step over a ``(width,)`` input."""
        i_gate = (self._conv1d(x, self.weight_x[0]) + self._conv1d(h, self.weight_h[0]) + self.bias[0]).sigmoid()
        f_gate = (self._conv1d(x, self.weight_x[1]) + self._conv1d(h, self.weight_h[1]) + self.bias[1]).sigmoid()
        g_gate = (self._conv1d(x, self.weight_x[2]) + self._conv1d(h, self.weight_h[2]) + self.bias[2]).tanh()
        o_gate = (self._conv1d(x, self.weight_x[3]) + self._conv1d(h, self.weight_h[3]) + self.bias[3]).sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class ConvLSTM(Module):
    """Runs a :class:`ConvLSTMCell` over a ``(T, width)`` sequence."""

    def __init__(
        self,
        width: int,
        kernel_size: int = 3,
        init_std: float | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.cell = ConvLSTMCell(width, kernel_size=kernel_size, init_std=init_std, rng=rng)
        self.width = width

    def forward(self, sequence: Tensor) -> Tensor:
        steps = sequence.shape[0]
        h = Tensor(np.zeros(self.width))
        c = Tensor(np.zeros(self.width))
        outputs = []
        for t in range(steps):
            h, c = self.cell(sequence[t], h, c)
            outputs.append(h.reshape(1, self.width))
        return concatenate(outputs, axis=0)
