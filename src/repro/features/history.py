"""Historical-visit features (paper Section 4.1).

``HistoricalVisitFeaturizer`` implements Eq. (1)-(2): each visit ``v`` in a
profile's history contributes a spatial-relevance vector
``w(v)_i = eps_d / (eps_d + d(v, p_i))`` over all POIs, weighted by the
temporal-decay coefficient ``eps_t / (eps_t + r.ts - v.ts)``; the weighted sum
is L2-normalised.  Profiles with no history get the uniform vector, so the
model copes with timelines that contain no POI tweet.

``OneHotHistoryFeaturizer`` is the alternative the paper compares against
(the *One-hot* approach): a normalised visit-count vector over POI identities
that ignores visit recency and discards visits falling outside every POI.

Batch featurization contract
----------------------------
Each featurizer exposes two entry points with one semantics:

* ``featurize(profile)`` — the per-profile **reference implementation**, a
  plain Python loop over the visit history.  It defines what the feature *is*.
* ``featurize_batch(profiles)`` — the vectorised fast path used by every
  serving/training layer.  It flattens all visits of the batch into coordinate
  and timestamp arrays, runs one broadcast distance (or containment) pass over
  the whole batch, and segment-sums per profile.

``featurize_batch`` must agree with stacking ``featurize`` per profile
bitwise-or-epsilon (within a few float64 ulps; the equivalence tests in
``tests/features/test_history_batch.py`` pin this to ``1e-9``).  Any change to
one path must be mirrored in the other — the scalar loop is the spec, the
batch path is the optimisation.

Delta featurization contract
----------------------------
Live serving mutates one visit at a time, and recomputing a whole capped
history per mutation wastes exactly the work the mutation did *not* change.
The delta path splits Eq. (1)-(2) at the only seam the temporal decay allows:
the **spatial** relevance row of a visit (``eps_d / (eps_d + d(v, p_i))``, or
the one-hot indicator row) never changes once the visit exists, while the
**temporal** weight ``eps_t / (eps_t + r.ts - v.ts)`` changes with every new
reference timestamp.  The incremental state is therefore the per-visit
relevance matrix, not the summed feature row:

* ``visit_rows(visits)`` — the spatial relevance rows of a list of visits,
  one kernel call, independent of any reference timestamp;
* ``update_delta(prev, added, removed)`` — append the ``added`` visits' rows
  and drop the ``removed`` oldest (a capped history evicting), touching only
  the changed visits;
* ``delta_row(state, ref_ts)`` — re-weight the retained rows by temporal
  decay at ``ref_ts``, segment-sum and L2-normalise: O(|history|) cheap ops,
  no distance/containment kernel;
* ``featurize_delta(prev, added, removed, ref_ts=...)`` — the two above in
  one call, returning ``(feature_row, new_state)``.

Because ``visit_rows`` runs the *same* elementwise kernels as
``featurize_batch`` (each visit's row is independent of its batch companions)
and ``delta_row`` sums with the same ``np.add.reduceat``, the delta row is
**bit-identical** to the scratch batch row for the same history — the tests
pin ``<= 1e-9`` but the paths agree exactly, which is what lets
:class:`repro.service.stream.StreamScorer` seed serving caches with delta
rows without breaking the four-transport bit-for-bit parity contract.
The **batched** read path (``delta_rows``, ``HistoryDeltaTracker.rows_for``)
is the one deliberate exception: equal-length batches sum via one batched
matmul instead of ``reduceat`` — an order of magnitude faster per tick — so
batch rows may differ from scratch in summation order only (``<= 1e-9``
pinned, ~1e-16 observed); callers that need bit-identity read per row.
``HistoryDeltaTracker`` maintains the per-user states mirroring an
:class:`repro.service.stream.OnlineProfileBuilder`'s capped deques.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.records import Profile, Visit
from repro.geo.poi import POIRegistry


@dataclass
class HistoryFeatureConfig:
    """Smoothing factors of Eq. (1)-(2).

    ``eps_d`` is in metres (paper: 1000 m); ``eps_t`` is in seconds (the paper
    does not report its value; one day keeps same-day visits influential while
    discounting older ones).
    """

    eps_d: float = 1000.0
    eps_t: float = 86_400.0


def _uniform_row(dimension: int) -> np.ndarray:
    """The unit-norm uniform fallback row shared by both featurizers."""
    uniform = np.ones(dimension)
    return uniform / np.linalg.norm(uniform)


def _flatten_histories(
    profiles: list[Profile],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten the visit histories of a batch into aligned coordinate arrays.

    Returns ``(counts, lats, lons, ts, ref_ts)`` where ``counts[b]`` is the
    number of visits of profile ``b`` and the other arrays hold one entry per
    visit, in batch order (all visits of profile 0, then profile 1, ...).
    ``ref_ts`` repeats each profile's own timestamp per visit, ready for the
    temporal-decay computation.
    """
    counts = np.array([len(p.visit_history) for p in profiles], dtype=np.int64)
    visits = [visit for profile in profiles for visit in profile.visit_history]
    ts = np.array([v.ts for v in visits], dtype=np.float64)
    lats = np.array([v.lat for v in visits], dtype=np.float64)
    lons = np.array([v.lon for v in visits], dtype=np.float64)
    ref_ts = np.repeat(np.array([p.ts for p in profiles], dtype=np.float64), counts)
    return counts, lats, lons, ts, ref_ts


def _normalize_rows(rows: np.ndarray, uniform: np.ndarray) -> np.ndarray:
    """L2-normalise each row in place; zero-norm rows become the uniform vector."""
    norms = np.linalg.norm(rows, axis=1)
    zero = norms == 0.0
    norms[zero] = 1.0
    rows /= norms[:, None]
    rows[zero] = uniform
    return rows


@dataclass
class HistoryDeltaState:
    """The incremental Eq. (1)-(2) state of one visit history.

    ``ts[i]`` and ``rows[i]`` are the timestamp and spatial relevance row of
    the ``i``-th retained visit, oldest first — exactly the order the batch
    path sums in.  The state is reference-timestamp-free: temporal decay is
    applied by :meth:`delta_row` at query time, which is what makes the state
    reusable as the profile's recent tweet advances.
    """

    ts: np.ndarray
    rows: np.ndarray

    def __len__(self) -> int:
        return len(self.ts)


def _delta_update(
    prev: HistoryDeltaState | None,
    added_ts: np.ndarray,
    added_rows: np.ndarray,
    removed: int,
    dimension: int,
) -> HistoryDeltaState:
    """Shared ``update_delta`` body: drop the ``removed`` oldest, append the new."""
    if removed < 0:
        raise ValueError("removed must be non-negative")
    if prev is None:
        ts = np.empty(0, dtype=np.float64)
        rows = np.empty((0, dimension))
    else:
        ts, rows = prev.ts, prev.rows
    if removed > len(ts):
        raise ValueError(f"cannot remove {removed} visits from a history of {len(ts)}")
    if removed:
        ts, rows = ts[removed:], rows[removed:]
    if len(added_ts):
        ts = np.concatenate([ts, added_ts])
        rows = np.concatenate([rows, added_rows])
    # Slices/concatenations may share memory with ``prev`` — states are never
    # mutated in place, so views are safe and keep eviction O(1) in copies.
    return HistoryDeltaState(ts=ts, rows=rows)


class HistoricalVisitFeaturizer:
    """The paper's temporal-spatial history feature ``Fv(r)`` (Eq. 1-2)."""

    def __init__(self, registry: POIRegistry, config: HistoryFeatureConfig | None = None):
        self.registry = registry
        self.config = config or HistoryFeatureConfig()
        if self.config.eps_d <= 0 or self.config.eps_t <= 0:
            raise ValueError("smoothing factors must be positive")

    @property
    def feature_dim(self) -> int:
        """Feature dimensionality — one entry per POI."""
        return len(self.registry)

    @property
    def dimension(self) -> int:
        """Alias of :attr:`feature_dim` (kept for backwards compatibility)."""
        return self.feature_dim

    def visit_relevance(self, lat: float, lon: float) -> np.ndarray:
        """The spatial-relevance vector ``w(v)`` of Eq. (1) for one visit."""
        distances = self.registry.distances_from(lat, lon)
        return self.config.eps_d / (self.config.eps_d + distances)

    def featurize(self, profile: Profile) -> np.ndarray:
        """``Fv(r)`` for one profile — the batch path's reference semantics."""
        if not profile.visit_history:
            return _uniform_row(self.feature_dim)
        accumulated = np.zeros(self.feature_dim)
        for visit in profile.visit_history:
            age = max(0.0, profile.ts - visit.ts)
            temporal_weight = self.config.eps_t / (self.config.eps_t + age)
            accumulated += temporal_weight * self.visit_relevance(visit.lat, visit.lon)
        norm = np.linalg.norm(accumulated)
        if norm == 0.0:
            return _uniform_row(self.feature_dim)
        return accumulated / norm

    def featurize_batch(self, profiles: list[Profile]) -> np.ndarray:
        """``Fv`` for a batch of profiles as one broadcast computation, ``(B, |P|)``.

        All visits of the batch are scored against every POI in a single
        ``(total_visits, |P|)`` relevance matrix, temporal-decay weights are
        applied vectorially and per-profile rows come out of one segment sum
        (``np.add.reduceat`` over the profile offsets) — no per-visit Python
        round-trips.  Matches the scalar :meth:`featurize` loop per the module
        contract.
        """
        out = np.empty((len(profiles), self.feature_dim))
        if not profiles:
            return out
        uniform = _uniform_row(self.feature_dim)
        counts, lats, lons, ts, ref_ts = _flatten_histories(profiles)
        if len(lats) == 0:
            out[:] = uniform
            return out
        ages = np.maximum(0.0, ref_ts - ts)
        temporal_weights = self.config.eps_t / (self.config.eps_t + ages)
        # In-place on the big (total_visits, |P|) buffer: relevance
        # eps_d / (eps_d + d), then the temporal weight per visit row.
        weighted = self.registry.distances_from_many(lats, lons)
        weighted += self.config.eps_d
        np.divide(self.config.eps_d, weighted, out=weighted)
        weighted *= temporal_weights[:, None]
        # reduceat cannot express zero-length segments (it would return the
        # next row instead of zero), so sum only the non-empty profiles and
        # give the empty ones the uniform fallback directly.
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        nonempty = counts > 0
        sums = np.add.reduceat(weighted, offsets[nonempty], axis=0)
        out[nonempty] = _normalize_rows(sums, uniform)
        out[~nonempty] = uniform
        return out

    # ------------------------------------------------------------- delta path
    def visit_rows(self, visits: "list[Visit]") -> np.ndarray:
        """Spatial relevance rows ``w(v)`` for a list of visits, ``(V, |P|)``.

        Runs the same elementwise kernel as :meth:`featurize_batch` before its
        temporal re-weighting, so each row is bit-identical to the one the
        scratch batch would compute for the same visit.
        """
        if not visits:
            return np.empty((0, self.feature_dim))
        lats = np.array([v.lat for v in visits], dtype=np.float64)
        lons = np.array([v.lon for v in visits], dtype=np.float64)
        rows = self.registry.distances_from_many(lats, lons)
        rows += self.config.eps_d
        np.divide(self.config.eps_d, rows, out=rows)
        return rows

    def empty_delta(self) -> HistoryDeltaState:
        """The delta state of an empty visit history."""
        return HistoryDeltaState(
            ts=np.empty(0, dtype=np.float64), rows=np.empty((0, self.feature_dim))
        )

    def update_delta(
        self,
        prev: HistoryDeltaState | None,
        added: "list[Visit]" = (),
        removed: int = 0,
    ) -> HistoryDeltaState:
        """Apply a history mutation to the delta state, touching only the delta.

        ``added`` visits are appended (one :meth:`visit_rows` kernel call for
        just those visits); the ``removed`` oldest retained visits are dropped
        (a capped history evicting).  ``prev=None`` starts from an empty
        history.
        """
        added = list(added)
        added_ts = np.array([v.ts for v in added], dtype=np.float64)
        return _delta_update(prev, added_ts, self.visit_rows(added), removed, self.feature_dim)

    def delta_row(self, state: HistoryDeltaState, ref_ts: float) -> np.ndarray:
        """``Fv`` at reference timestamp ``ref_ts`` from the delta state.

        Temporal decay, segment sum and normalisation only — no distance
        kernel.  Bit-identical to :meth:`featurize_batch` on the equivalent
        profile (same elementwise weighting, same ``np.add.reduceat`` sum).
        """
        uniform = _uniform_row(self.feature_dim)
        if len(state) == 0:
            return uniform
        ages = np.maximum(0.0, ref_ts - state.ts)
        temporal_weights = self.config.eps_t / (self.config.eps_t + ages)
        weighted = state.rows * temporal_weights[:, None]
        sums = np.add.reduceat(weighted, np.array([0]), axis=0)
        return _normalize_rows(sums, uniform)[0]

    def featurize_delta(
        self,
        prev: HistoryDeltaState | None,
        added: "list[Visit]" = (),
        removed: int = 0,
        *,
        ref_ts: float = 0.0,
    ) -> tuple[np.ndarray, HistoryDeltaState]:
        """Incrementally updated ``(feature_row, new_state)`` after a mutation.

        Equivalent to rebuilding the profile and calling :meth:`featurize` /
        :meth:`featurize_batch` from scratch (the scalar loop remains the
        pinned reference), at the cost of the mutation instead of the history.
        """
        state = self.update_delta(prev, added, removed)
        return self.delta_row(state, ref_ts), state

    def delta_rows(
        self, states: "list[HistoryDeltaState]", ref_ts: np.ndarray
    ) -> np.ndarray:
        """``Fv`` rows for a batch of delta states at per-state timestamps.

        The batched :meth:`delta_row`: all retained relevance rows concatenate
        into one matrix, temporal weights apply vectorially and the per-state
        rows come out of one segment sum — the same shape of computation as
        :meth:`featurize_batch` minus the distance kernel.  When every state
        holds the same number of visits (the steady state of a capped live
        workload) the segment sum becomes one batched matmul, an order of
        magnitude faster than ``np.add.reduceat``; the matmul reassociates
        the additions, so batch rows may differ from scratch in summation
        order only — well inside the ``1e-9`` row tolerance the live-profile
        bench pins (``delta_row`` / ``featurize_delta`` remain bit-identical).
        """
        out = np.empty((len(states), self.feature_dim))
        if not states:
            return out
        uniform = _uniform_row(self.feature_dim)
        counts = np.array([len(state) for state in states], dtype=np.int64)
        if counts.sum() == 0:
            out[:] = uniform
            return out
        ts = np.concatenate([state.ts for state in states])
        rows = np.concatenate([state.rows for state in states])
        ages = np.maximum(0.0, np.repeat(np.asarray(ref_ts, dtype=np.float64), counts) - ts)
        temporal_weights = self.config.eps_t / (self.config.eps_t + ages)
        if counts.min() == counts.max():
            length = int(counts[0])
            stacked = rows.reshape(len(states), length, self.feature_dim)
            weights = temporal_weights.reshape(len(states), 1, length)
            sums = (weights @ stacked)[:, 0, :]
            return _normalize_rows(sums, uniform)
        weighted = rows * temporal_weights[:, None]
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        nonempty = counts > 0
        sums = np.add.reduceat(weighted, offsets[nonempty], axis=0)
        out[nonempty] = _normalize_rows(sums, uniform)
        out[~nonempty] = uniform
        return out


class OneHotHistoryFeaturizer:
    """One-hot (visit-count) history encoding — the *One-hot* baseline feature."""

    def __init__(self, registry: POIRegistry):
        self.registry = registry

    @property
    def feature_dim(self) -> int:
        """Feature dimensionality — one entry per POI."""
        return len(self.registry)

    @property
    def dimension(self) -> int:
        """Alias of :attr:`feature_dim` (kept for backwards compatibility)."""
        return self.feature_dim

    def featurize(self, profile: Profile) -> np.ndarray:
        """Normalised visit counts for one profile — the batch path's reference."""
        counts = np.zeros(self.feature_dim)
        for visit in profile.visit_history:
            poi = self.registry.locate(visit.lat, visit.lon)
            if poi is not None:
                counts[self.registry.index_of(poi.pid)] += 1.0
        norm = np.linalg.norm(counts)
        if norm == 0.0:
            return _uniform_row(self.feature_dim)
        return counts / norm

    def featurize_batch(self, profiles: list[Profile]) -> np.ndarray:
        """Visit-count rows for a batch via one ``locate_batch`` pass, ``(B, |P|)``.

        Every visit of the batch is resolved to its containing POI with the
        grid-indexed :meth:`repro.geo.poi.POIRegistry.locate_batch`, then the
        count matrix is built with one scatter-add.  Matches the scalar
        :meth:`featurize` loop per the module contract.
        """
        if not profiles:
            return np.empty((0, self.feature_dim))
        uniform = _uniform_row(self.feature_dim)
        counts, lats, lons, _, _ = _flatten_histories(profiles)
        rows = np.zeros((len(profiles), self.feature_dim))
        if len(lats) > 0:
            located = self.registry.locate_batch(lats, lons)
            hit = located >= 0
            profile_of_visit = np.repeat(np.arange(len(profiles)), counts)
            np.add.at(rows, (profile_of_visit[hit], located[hit]), 1.0)
        return _normalize_rows(rows, uniform)

    # ------------------------------------------------------------- delta path
    def visit_rows(self, visits: list[Visit]) -> np.ndarray:
        """One-hot POI indicator rows for a list of visits, ``(V, |P|)``.

        A visit outside every POI polygon contributes an all-zero row, exactly
        as it contributes nothing to the batch path's scatter-add.
        """
        rows = np.zeros((len(visits), self.feature_dim))
        if visits:
            lats = np.array([v.lat for v in visits], dtype=np.float64)
            lons = np.array([v.lon for v in visits], dtype=np.float64)
            located = self.registry.locate_batch(lats, lons)
            hit = located >= 0
            rows[np.nonzero(hit)[0], located[hit]] = 1.0
        return rows

    def empty_delta(self) -> HistoryDeltaState:
        """The delta state of an empty visit history."""
        return HistoryDeltaState(
            ts=np.empty(0, dtype=np.float64), rows=np.empty((0, self.feature_dim))
        )

    def update_delta(
        self,
        prev: HistoryDeltaState | None,
        added: list[Visit] = (),
        removed: int = 0,
    ) -> HistoryDeltaState:
        """Apply a history mutation to the delta state (see the module contract)."""
        added = list(added)
        added_ts = np.array([v.ts for v in added], dtype=np.float64)
        return _delta_update(prev, added_ts, self.visit_rows(added), removed, self.feature_dim)

    def delta_row(self, state: HistoryDeltaState, ref_ts: float = 0.0) -> np.ndarray:
        """Normalised visit counts from the delta state (``ref_ts`` is unused —
        one-hot counts carry no temporal decay, the signature just mirrors the
        temporal featurizer's)."""
        uniform = _uniform_row(self.feature_dim)
        if len(state) == 0:
            return uniform
        sums = np.add.reduceat(state.rows, np.array([0]), axis=0)
        return _normalize_rows(sums, uniform)[0]

    def featurize_delta(
        self,
        prev: HistoryDeltaState | None,
        added: list[Visit] = (),
        removed: int = 0,
        *,
        ref_ts: float = 0.0,
    ) -> tuple[np.ndarray, HistoryDeltaState]:
        """Incrementally updated ``(feature_row, new_state)`` after a mutation."""
        state = self.update_delta(prev, added, removed)
        return self.delta_row(state, ref_ts), state

    def delta_rows(
        self, states: "list[HistoryDeltaState]", ref_ts: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched :meth:`delta_row` (``ref_ts`` is accepted for signature
        parity with the temporal featurizer and ignored — counts don't decay)."""
        out = np.empty((len(states), self.feature_dim))
        if not states:
            return out
        uniform = _uniform_row(self.feature_dim)
        counts = np.array([len(state) for state in states], dtype=np.int64)
        if counts.sum() == 0:
            out[:] = uniform
            return out
        rows = np.concatenate([state.rows for state in states])
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        nonempty = counts > 0
        sums = np.add.reduceat(rows, offsets[nonempty], axis=0)
        out[nonempty] = _normalize_rows(sums, uniform)
        out[~nonempty] = uniform
        return out


class HistoryDeltaTracker:
    """Per-user delta states mirroring an online builder's capped histories.

    The tracker holds one :class:`HistoryDeltaState` per user and applies the
    same ``maxlen`` eviction rule as
    :class:`repro.service.stream.OnlineProfileBuilder`'s deques, so the state
    for a user always mirrors the visit history their next emitted profile
    will carry.  :meth:`row_for` returns the profile's Eq. (1)-(2) row from
    the state (rebuilding it transparently if the tracker was never shown the
    profile's history — e.g. a tracker attached mid-stream).

    ``append_batch`` exists because live workloads mutate many users per
    tick: it featurizes *all* appended visits in one :meth:`visit_rows`
    kernel call and then distributes the rows, which is where the
    incremental-over-scratch speedup pinned by ``bench_live_profiles.py``
    comes from.
    """

    def __init__(self, featurizer, max_history: int | None = 64):
        if max_history is not None and max_history < 0:
            raise ValueError("max_history must be non-negative")
        self.featurizer = featurizer
        self.max_history = max_history
        self._states: dict[int, HistoryDeltaState] = {}

    def __len__(self) -> int:
        return len(self._states)

    def state_of(self, uid: int) -> HistoryDeltaState | None:
        """The tracked state of a user (None when never seen)."""
        return self._states.get(uid)

    def append(self, uid: int, visit: Visit) -> None:
        """Record one visit for one user, evicting the oldest when capped."""
        self.append_batch([uid], [visit])

    def append_batch(self, uids: "list[int]", visits: list[Visit]) -> None:
        """Record aligned ``(uid, visit)`` entries with one featurizer kernel call."""
        if len(uids) != len(visits):
            raise ValueError("uids and visits must be aligned")
        if not uids or self.max_history == 0:
            return
        rows = self.featurizer.visit_rows(list(visits))
        ts = np.array([v.ts for v in visits], dtype=np.float64)
        for index, uid in enumerate(uids):
            prev = self._states.get(uid)
            length = 0 if prev is None else len(prev)
            removed = 0
            if self.max_history is not None and length + 1 > self.max_history:
                removed = length + 1 - self.max_history
            self._states[int(uid)] = _delta_update(
                prev, ts[index : index + 1], rows[index : index + 1], removed,
                self.featurizer.feature_dim,
            )

    def row_for(self, profile: Profile) -> np.ndarray:
        """The profile's history feature row from the tracked state.

        If the tracked state does not mirror ``profile.visit_history`` (the
        tracker joined mid-stream, or the profile came from elsewhere), the
        state is rebuilt from the profile's history first — a one-off scratch
        cost, after which updates are incremental again.
        """
        state = self._states.get(profile.uid)
        if state is None or not self._mirrors(state, profile.visit_history):
            state = self.featurizer.update_delta(None, list(profile.visit_history))
            if self.max_history != 0:
                self._states[profile.uid] = state
        return self.featurizer.delta_row(state, profile.ts)

    def rows_for(self, profiles: "list[Profile]") -> np.ndarray:
        """Batched :meth:`row_for`: one re-weight + segment sum for the batch.

        This is the live read path at scale — after an ``append_batch`` tick,
        every mutated user's current row comes out of a single
        :meth:`delta_rows` call instead of per-profile numpy round-trips.
        Batch rows agree with per-profile :meth:`row_for` within float64
        summation tolerance (``<= 1e-9``; the equal-length fast path sums by
        matmul) — serving caches that need bit-identity seed via
        :meth:`row_for`.
        """
        states = []
        for profile in profiles:
            state = self._states.get(profile.uid)
            if state is None or not self._mirrors(state, profile.visit_history):
                state = self.featurizer.update_delta(None, list(profile.visit_history))
                if self.max_history != 0:
                    self._states[profile.uid] = state
            states.append(state)
        ref_ts = np.array([profile.ts for profile in profiles], dtype=np.float64)
        return self.featurizer.delta_rows(states, ref_ts)

    @staticmethod
    def _mirrors(state: HistoryDeltaState, history: tuple[Visit, ...]) -> bool:
        if len(state) != len(history):
            return False
        if not history:
            return True
        return bool(state.ts[0] == history[0].ts and state.ts[-1] == history[-1].ts)

    def reset(self, uid: int) -> None:
        """Forget one user's state."""
        self._states.pop(uid, None)

    def clear(self) -> None:
        """Forget every user's state."""
        self._states.clear()
