"""Historical-visit features (paper Section 4.1).

``HistoricalVisitFeaturizer`` implements Eq. (1)-(2): each visit ``v`` in a
profile's history contributes a spatial-relevance vector
``w(v)_i = eps_d / (eps_d + d(v, p_i))`` over all POIs, weighted by the
temporal-decay coefficient ``eps_t / (eps_t + r.ts - v.ts)``; the weighted sum
is L2-normalised.  Profiles with no history get the uniform vector, so the
model copes with timelines that contain no POI tweet.

``OneHotHistoryFeaturizer`` is the alternative the paper compares against
(the *One-hot* approach): a normalised visit-count vector over POI identities
that ignores visit recency and discards visits falling outside every POI.

Batch featurization contract
----------------------------
Each featurizer exposes two entry points with one semantics:

* ``featurize(profile)`` — the per-profile **reference implementation**, a
  plain Python loop over the visit history.  It defines what the feature *is*.
* ``featurize_batch(profiles)`` — the vectorised fast path used by every
  serving/training layer.  It flattens all visits of the batch into coordinate
  and timestamp arrays, runs one broadcast distance (or containment) pass over
  the whole batch, and segment-sums per profile.

``featurize_batch`` must agree with stacking ``featurize`` per profile
bitwise-or-epsilon (within a few float64 ulps; the equivalence tests in
``tests/features/test_history_batch.py`` pin this to ``1e-9``).  Any change to
one path must be mirrored in the other — the scalar loop is the spec, the
batch path is the optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.records import Profile
from repro.geo.poi import POIRegistry


@dataclass
class HistoryFeatureConfig:
    """Smoothing factors of Eq. (1)-(2).

    ``eps_d`` is in metres (paper: 1000 m); ``eps_t`` is in seconds (the paper
    does not report its value; one day keeps same-day visits influential while
    discounting older ones).
    """

    eps_d: float = 1000.0
    eps_t: float = 86_400.0


def _uniform_row(dimension: int) -> np.ndarray:
    """The unit-norm uniform fallback row shared by both featurizers."""
    uniform = np.ones(dimension)
    return uniform / np.linalg.norm(uniform)


def _flatten_histories(
    profiles: list[Profile],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten the visit histories of a batch into aligned coordinate arrays.

    Returns ``(counts, lats, lons, ts, ref_ts)`` where ``counts[b]`` is the
    number of visits of profile ``b`` and the other arrays hold one entry per
    visit, in batch order (all visits of profile 0, then profile 1, ...).
    ``ref_ts`` repeats each profile's own timestamp per visit, ready for the
    temporal-decay computation.
    """
    counts = np.array([len(p.visit_history) for p in profiles], dtype=np.int64)
    visits = [visit for profile in profiles for visit in profile.visit_history]
    ts = np.array([v.ts for v in visits], dtype=np.float64)
    lats = np.array([v.lat for v in visits], dtype=np.float64)
    lons = np.array([v.lon for v in visits], dtype=np.float64)
    ref_ts = np.repeat(np.array([p.ts for p in profiles], dtype=np.float64), counts)
    return counts, lats, lons, ts, ref_ts


def _normalize_rows(rows: np.ndarray, uniform: np.ndarray) -> np.ndarray:
    """L2-normalise each row in place; zero-norm rows become the uniform vector."""
    norms = np.linalg.norm(rows, axis=1)
    zero = norms == 0.0
    norms[zero] = 1.0
    rows /= norms[:, None]
    rows[zero] = uniform
    return rows


class HistoricalVisitFeaturizer:
    """The paper's temporal-spatial history feature ``Fv(r)`` (Eq. 1-2)."""

    def __init__(self, registry: POIRegistry, config: HistoryFeatureConfig | None = None):
        self.registry = registry
        self.config = config or HistoryFeatureConfig()
        if self.config.eps_d <= 0 or self.config.eps_t <= 0:
            raise ValueError("smoothing factors must be positive")

    @property
    def feature_dim(self) -> int:
        """Feature dimensionality — one entry per POI."""
        return len(self.registry)

    @property
    def dimension(self) -> int:
        """Alias of :attr:`feature_dim` (kept for backwards compatibility)."""
        return self.feature_dim

    def visit_relevance(self, lat: float, lon: float) -> np.ndarray:
        """The spatial-relevance vector ``w(v)`` of Eq. (1) for one visit."""
        distances = self.registry.distances_from(lat, lon)
        return self.config.eps_d / (self.config.eps_d + distances)

    def featurize(self, profile: Profile) -> np.ndarray:
        """``Fv(r)`` for one profile — the batch path's reference semantics."""
        if not profile.visit_history:
            return _uniform_row(self.feature_dim)
        accumulated = np.zeros(self.feature_dim)
        for visit in profile.visit_history:
            age = max(0.0, profile.ts - visit.ts)
            temporal_weight = self.config.eps_t / (self.config.eps_t + age)
            accumulated += temporal_weight * self.visit_relevance(visit.lat, visit.lon)
        norm = np.linalg.norm(accumulated)
        if norm == 0.0:
            return _uniform_row(self.feature_dim)
        return accumulated / norm

    def featurize_batch(self, profiles: list[Profile]) -> np.ndarray:
        """``Fv`` for a batch of profiles as one broadcast computation, ``(B, |P|)``.

        All visits of the batch are scored against every POI in a single
        ``(total_visits, |P|)`` relevance matrix, temporal-decay weights are
        applied vectorially and per-profile rows come out of one segment sum
        (``np.add.reduceat`` over the profile offsets) — no per-visit Python
        round-trips.  Matches the scalar :meth:`featurize` loop per the module
        contract.
        """
        out = np.empty((len(profiles), self.feature_dim))
        if not profiles:
            return out
        uniform = _uniform_row(self.feature_dim)
        counts, lats, lons, ts, ref_ts = _flatten_histories(profiles)
        if len(lats) == 0:
            out[:] = uniform
            return out
        ages = np.maximum(0.0, ref_ts - ts)
        temporal_weights = self.config.eps_t / (self.config.eps_t + ages)
        # In-place on the big (total_visits, |P|) buffer: relevance
        # eps_d / (eps_d + d), then the temporal weight per visit row.
        weighted = self.registry.distances_from_many(lats, lons)
        weighted += self.config.eps_d
        np.divide(self.config.eps_d, weighted, out=weighted)
        weighted *= temporal_weights[:, None]
        # reduceat cannot express zero-length segments (it would return the
        # next row instead of zero), so sum only the non-empty profiles and
        # give the empty ones the uniform fallback directly.
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        nonempty = counts > 0
        sums = np.add.reduceat(weighted, offsets[nonempty], axis=0)
        out[nonempty] = _normalize_rows(sums, uniform)
        out[~nonempty] = uniform
        return out


class OneHotHistoryFeaturizer:
    """One-hot (visit-count) history encoding — the *One-hot* baseline feature."""

    def __init__(self, registry: POIRegistry):
        self.registry = registry

    @property
    def feature_dim(self) -> int:
        """Feature dimensionality — one entry per POI."""
        return len(self.registry)

    @property
    def dimension(self) -> int:
        """Alias of :attr:`feature_dim` (kept for backwards compatibility)."""
        return self.feature_dim

    def featurize(self, profile: Profile) -> np.ndarray:
        """Normalised visit counts for one profile — the batch path's reference."""
        counts = np.zeros(self.feature_dim)
        for visit in profile.visit_history:
            poi = self.registry.locate(visit.lat, visit.lon)
            if poi is not None:
                counts[self.registry.index_of(poi.pid)] += 1.0
        norm = np.linalg.norm(counts)
        if norm == 0.0:
            return _uniform_row(self.feature_dim)
        return counts / norm

    def featurize_batch(self, profiles: list[Profile]) -> np.ndarray:
        """Visit-count rows for a batch via one ``locate_batch`` pass, ``(B, |P|)``.

        Every visit of the batch is resolved to its containing POI with the
        grid-indexed :meth:`repro.geo.poi.POIRegistry.locate_batch`, then the
        count matrix is built with one scatter-add.  Matches the scalar
        :meth:`featurize` loop per the module contract.
        """
        if not profiles:
            return np.empty((0, self.feature_dim))
        uniform = _uniform_row(self.feature_dim)
        counts, lats, lons, _, _ = _flatten_histories(profiles)
        rows = np.zeros((len(profiles), self.feature_dim))
        if len(lats) > 0:
            located = self.registry.locate_batch(lats, lons)
            hit = located >= 0
            profile_of_visit = np.repeat(np.arange(len(profiles)), counts)
            np.add.at(rows, (profile_of_visit[hit], located[hit]), 1.0)
        return _normalize_rows(rows, uniform)
