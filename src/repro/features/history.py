"""Historical-visit features (paper Section 4.1).

``HistoricalVisitFeaturizer`` implements Eq. (1)-(2): each visit ``v`` in a
profile's history contributes a spatial-relevance vector
``w(v)_i = eps_d / (eps_d + d(v, p_i))`` over all POIs, weighted by the
temporal-decay coefficient ``eps_t / (eps_t + r.ts - v.ts)``; the weighted sum
is L2-normalised.  Profiles with no history get the uniform vector, so the
model copes with timelines that contain no POI tweet.

``OneHotHistoryFeaturizer`` is the alternative the paper compares against
(the *One-hot* approach): a normalised visit-count vector over POI identities
that ignores visit recency and discards visits falling outside every POI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.records import Profile
from repro.geo.poi import POIRegistry


@dataclass
class HistoryFeatureConfig:
    """Smoothing factors of Eq. (1)-(2).

    ``eps_d`` is in metres (paper: 1000 m); ``eps_t`` is in seconds (the paper
    does not report its value; one day keeps same-day visits influential while
    discounting older ones).
    """

    eps_d: float = 1000.0
    eps_t: float = 86_400.0


class HistoricalVisitFeaturizer:
    """The paper's temporal-spatial history feature ``Fv(r)`` (Eq. 1-2)."""

    def __init__(self, registry: POIRegistry, config: HistoryFeatureConfig | None = None):
        self.registry = registry
        self.config = config or HistoryFeatureConfig()
        if self.config.eps_d <= 0 or self.config.eps_t <= 0:
            raise ValueError("smoothing factors must be positive")

    @property
    def dimension(self) -> int:
        """Feature dimensionality — one entry per POI."""
        return len(self.registry)

    def visit_relevance(self, lat: float, lon: float) -> np.ndarray:
        """The spatial-relevance vector ``w(v)`` of Eq. (1) for one visit."""
        distances = self.registry.distances_from(lat, lon)
        return self.config.eps_d / (self.config.eps_d + distances)

    def featurize(self, profile: Profile) -> np.ndarray:
        """``Fv(r)`` for one profile."""
        if not profile.visit_history:
            uniform = np.ones(self.dimension)
            return uniform / np.linalg.norm(uniform)
        accumulated = np.zeros(self.dimension)
        for visit in profile.visit_history:
            age = max(0.0, profile.ts - visit.ts)
            temporal_weight = self.config.eps_t / (self.config.eps_t + age)
            accumulated += temporal_weight * self.visit_relevance(visit.lat, visit.lon)
        norm = np.linalg.norm(accumulated)
        if norm == 0.0:
            uniform = np.ones(self.dimension)
            return uniform / np.linalg.norm(uniform)
        return accumulated / norm

    def featurize_batch(self, profiles: list[Profile]) -> np.ndarray:
        """Stack ``Fv`` for a batch of profiles into a ``(B, |P|)`` matrix."""
        return np.stack([self.featurize(p) for p in profiles]) if profiles else np.zeros((0, self.dimension))


class OneHotHistoryFeaturizer:
    """One-hot (visit-count) history encoding — the *One-hot* baseline feature."""

    def __init__(self, registry: POIRegistry):
        self.registry = registry

    @property
    def dimension(self) -> int:
        return len(self.registry)

    def featurize(self, profile: Profile) -> np.ndarray:
        counts = np.zeros(self.dimension)
        for visit in profile.visit_history:
            poi = self.registry.locate(visit.lat, visit.lon)
            if poi is not None:
                counts[self.registry.index_of(poi.pid)] += 1.0
        norm = np.linalg.norm(counts)
        if norm == 0.0:
            uniform = np.ones(self.dimension)
            return uniform / np.linalg.norm(uniform)
        return counts / norm

    def featurize_batch(self, profiles: list[Profile]) -> np.ndarray:
        return np.stack([self.featurize(p) for p in profiles]) if profiles else np.zeros((0, self.dimension))
