"""Content encoders for the recent tweet (paper Section 4.2).

The paper converts the recent tweet into skip-gram word vectors and encodes
the sequence with **BiLSTM-C**: a bidirectional LSTM whose forward/backward
hidden-state sequences are stacked into a 2-channel image, convolved with a
full-width height-3 filter bank, rectified and mean-pooled into the fixed
``N``-dimensional content feature ``Fc(r)``.

Two alternatives from Table 3 are provided for the ablations:

* :class:`BLSTMContentEncoder` — the same bidirectional LSTM but without the
  convolution layer (mean-pooled hidden states).
* :class:`ConvLSTMContentEncoder` — a ConvLSTM (convolutional state
  transitions) instead of BiLSTM-C.

Two further extension encoders (not in the paper) back the encoder-ablation
benchmarks:

* :class:`BiGRUContentEncoder` — a bidirectional GRU, a lighter recurrent cell.
* :class:`AttentionContentEncoder` — a bidirectional LSTM whose states are
  reduced with learned attention pooling instead of a mean.

All encoders share a :class:`TextVectorizer` that tokenises, maps to
vocabulary ids, looks up the (frozen) skip-gram vectors and pads very short
(or empty) tweets so the convolution always has at least ``kernel_height``
rows.  Its per-profile word-vector cache is a bounded LRU
(:attr:`TextVectorizer.cache_stats` reports hits/misses/evictions), so
long-running serving cannot leak one entry per distinct tweet forever.

**Batch contract.**  Every encoder exposes two paths:

* ``encode(profile)`` — the scalar reference implementation, one profile at a
  time; kept as the documented ground truth.
* ``encode_batch(profiles)`` — the hot path: ``TextVectorizer.vectorize_batch``
  right-pads the ``B`` tweets into one ``(B, T, M)`` tensor with a length
  vector, the recurrent layers step over time once for the whole batch
  (``(B, 4N)`` fused gate matmuls instead of ``B`` separate ``(1, 4N)``
  calls), and masked mean/attention pooling restricts each row's reduction to
  its valid positions.  Rows match ``encode`` within 1e-9
  (``tests/features/test_content_batch.py`` pins the contract), and the path
  is autograd-compatible so training and cold-miss serving share it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.data.records import Profile
from repro.nn.autograd import Tensor
from repro.nn.conv import TemporalConv
from repro.nn.gru import BiGRU
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.pooling import AttentionPooling, masked_mean_over_time
from repro.nn.recurrent import BiLSTM, ConvLSTM, time_mask
from repro.text.skipgram import SkipGramModel
from repro.text.tokenize import STOPWORD_TOKEN, Tokenizer, Vocabulary


@dataclass
class ContentEncoderConfig:
    """Shared hyper-parameters of the content encoders."""

    #: Output feature dimensionality ``N``.
    feature_dim: int = 16
    #: Maximum number of tokens fed to the encoder (tweets are short anyway).
    max_tokens: int = 16
    #: Minimum sequence length after padding (>= the convolution height).
    min_tokens: int = 4
    #: Number of stacked bidirectional LSTM layers ``Ql``.
    num_lstm_layers: int = 1
    #: Gaussian init std; ``None`` uses fan-in (He) scaling.
    init_std: float | None = None
    seed: int = 31


@dataclass(frozen=True)
class VectorizerCacheInfo:
    """Snapshot of the :class:`TextVectorizer` word-vector cache statistics."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of vectorize lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TextVectorizer:
    """Tokenise + encode + embed tweet text into a ``(T, M)`` word-vector matrix.

    Parameters
    ----------
    cache_size:
        Maximum number of per-profile word-vector matrices kept in the LRU
        cache (the same eviction pattern as the serving engine's feature
        cache).  ``0`` disables caching; the previous unbounded dict grew one
        entry per distinct ``(uid, ts, content)`` forever — a memory leak in
        long-running serving.  Training scans revisit every profile each
        epoch, so trainers should size the cache at least as large as the
        training set (the pipeline does) or the LRU thrashes.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        skipgram: SkipGramModel,
        tokenizer: Tokenizer | None = None,
        max_tokens: int = 16,
        min_tokens: int = 4,
        cache_size: int = 4096,
    ):
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.vocabulary = vocabulary
        self.skipgram = skipgram
        self.tokenizer = tokenizer or Tokenizer()
        self.max_tokens = max_tokens
        self.min_tokens = min_tokens
        self.cache_size = cache_size
        self._pad_id = vocabulary.token_to_id.get(STOPWORD_TOKEN, vocabulary.unknown_id)
        self._cache: OrderedDict[tuple[int, float, str], np.ndarray] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def word_dim(self) -> int:
        """Dimensionality ``M`` of the word vectors."""
        return self.skipgram.embedding_dim

    @property
    def cache_stats(self) -> VectorizerCacheInfo:
        """Current word-vector cache statistics."""
        return VectorizerCacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._cache),
            maxsize=self.cache_size,
        )

    def token_ids(self, text: str) -> list[int]:
        """Vocabulary ids of a tweet, truncated/padded to the configured bounds.

        Empty and whitespace-only tweets tokenise to nothing and come back as
        an all-pad sequence; the floor of one token (even with
        ``min_tokens=0``) guarantees every profile yields a non-empty
        sequence the recurrent encoders can consume.
        """
        tokens = self.tokenizer.tokenize(text)[: self.max_tokens]
        ids = self.vocabulary.encode(tokens) if tokens else []
        while len(ids) < max(1, self.min_tokens):
            ids.append(self._pad_id)
        return ids

    def vectorize(self, profile: Profile) -> np.ndarray:
        """The ``(T, M)`` word-vector matrix of a profile's recent tweet (cached)."""
        key = (profile.uid, profile.ts, profile.content)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self._hits += 1
            return cached
        self._misses += 1
        matrix = self.skipgram.encode_sequence(self.token_ids(profile.content))
        if self.cache_size > 0:
            self._cache[key] = matrix
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self._evictions += 1
        return matrix

    def vectorize_batch(self, profiles: list[Profile]) -> tuple[np.ndarray, np.ndarray]:
        """Right-pad the profiles' word-vector matrices into one batch tensor.

        Returns the ``(B, T, M)`` tensor (``T`` the longest sequence, shorter
        rows zero-padded on the right) and the ``(B,)`` length vector the
        batched encoders mask with.  Per-profile matrices go through
        :meth:`vectorize`, so the LRU cache is shared with the scalar path.
        """
        if not profiles:
            return np.zeros((0, max(1, self.min_tokens), self.word_dim)), np.zeros(0, dtype=np.int64)
        matrices = [self.vectorize(profile) for profile in profiles]
        lengths = np.array([matrix.shape[0] for matrix in matrices], dtype=np.int64)
        batch = np.zeros((len(matrices), int(lengths.max()), self.word_dim))
        for row, matrix in enumerate(matrices):
            batch[row, : matrix.shape[0]] = matrix
        return batch, lengths


class ContentEncoder(Module):
    """Base class: turns a profile into an ``N``-dimensional content feature."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig):
        super().__init__()
        self.vectorizer = vectorizer
        self.config = config

    @property
    def feature_dim(self) -> int:
        return self.config.feature_dim

    def encode(self, profile: Profile) -> Tensor:
        """The ``(feature_dim,)`` content feature of one profile (scalar reference)."""
        raise NotImplementedError

    def encode_batch(self, profiles: list[Profile]) -> Tensor:
        """The ``(B, feature_dim)`` content features of a batch of profiles.

        The hot path: one padded ``(B, T, M)`` tensor, batched recurrence and
        masked pooling.  Each row matches :meth:`encode` within 1e-9.
        """
        if not profiles:
            return Tensor(np.zeros((0, self.config.feature_dim)))
        batch, lengths = self.vectorizer.vectorize_batch(profiles)
        return self._encode_batch(Tensor(batch), lengths)

    def _encode_batch(self, sequences: Tensor, lengths: np.ndarray) -> Tensor:
        """Encode a padded ``(B, T, M)`` tensor with its length vector."""
        raise NotImplementedError

    def forward(self, profile: Profile) -> Tensor:
        return self.encode(profile)


class BiLSTMCContentEncoder(ContentEncoder):
    """The paper's BiLSTM-C encoder (BLSTM + convolution + ReLU + mean pooling)."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.bilstm = BiLSTM(
            input_size=vectorizer.word_dim,
            hidden_size=config.feature_dim,
            num_layers=config.num_lstm_layers,
            init_std=config.init_std,
            rng=rng,
        )
        self.conv = TemporalConv(width=config.feature_dim, kernel_height=3, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        stacked = self.bilstm(sequence, stacked_channels=True)  # (T, N, 2)
        feature_map = self.conv(stacked).relu()  # (T - 2, N)
        return feature_map.mean(axis=0)

    def _encode_batch(self, sequences: Tensor, lengths: np.ndarray) -> Tensor:
        kernel_height = self.conv.kernel_height
        if int(lengths.min()) < kernel_height:
            raise ValueError(
                f"every sequence must have at least {kernel_height} tokens for the "
                "BiLSTM-C convolution; raise TextVectorizer.min_tokens"
            )
        stacked = self.bilstm.forward_batch(sequences, lengths, stacked_channels=True)
        feature_map = self.conv.forward_batch(stacked).relu()  # (B, T - 2, N)
        # Conv position i is valid iff its last row i + kh - 1 is a real token.
        conv_mask = time_mask(lengths - (kernel_height - 1), feature_map.shape[1])
        return masked_mean_over_time(feature_map, conv_mask)


class BLSTMContentEncoder(ContentEncoder):
    """Bidirectional LSTM without the convolution layer (the *BLSTM* approach)."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.bilstm = BiLSTM(
            input_size=vectorizer.word_dim,
            hidden_size=config.feature_dim,
            num_layers=config.num_lstm_layers,
            init_std=config.init_std,
            rng=rng,
        )
        self.project = Linear(2 * config.feature_dim, config.feature_dim, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        states = self.bilstm(sequence)  # (T, 2N)
        pooled = states.mean(axis=0).reshape(1, 2 * self.config.feature_dim)
        return self.project(pooled).relu().reshape(self.config.feature_dim)

    def _encode_batch(self, sequences: Tensor, lengths: np.ndarray) -> Tensor:
        states = self.bilstm.forward_batch(sequences, lengths)  # (B, T, 2N)
        pooled = masked_mean_over_time(states, time_mask(lengths, states.shape[1]))
        return self.project(pooled).relu()


class ConvLSTMContentEncoder(ContentEncoder):
    """ConvLSTM encoder (convolutional input/state transitions, Shi et al. 2015)."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.convlstm = ConvLSTM(width=vectorizer.word_dim, kernel_size=3, init_std=config.init_std, rng=rng)
        self.project = Linear(vectorizer.word_dim, config.feature_dim, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        states = self.convlstm(sequence)  # (T, M)
        pooled = states.mean(axis=0).reshape(1, self.vectorizer.word_dim)
        return self.project(pooled).relu().reshape(self.config.feature_dim)

    def _encode_batch(self, sequences: Tensor, lengths: np.ndarray) -> Tensor:
        states = self.convlstm.forward_batch(sequences, lengths)  # (B, T, M)
        pooled = masked_mean_over_time(states, time_mask(lengths, states.shape[1]))
        return self.project(pooled).relu()


class BiGRUContentEncoder(ContentEncoder):
    """Bidirectional GRU encoder (extension; lighter than the BLSTM variant)."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.bigru = BiGRU(
            input_size=vectorizer.word_dim,
            hidden_size=config.feature_dim,
            init_std=config.init_std,
            rng=rng,
        )
        self.project = Linear(2 * config.feature_dim, config.feature_dim, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        states = self.bigru(sequence)  # (T, 2N)
        pooled = states.mean(axis=0).reshape(1, 2 * self.config.feature_dim)
        return self.project(pooled).relu().reshape(self.config.feature_dim)

    def _encode_batch(self, sequences: Tensor, lengths: np.ndarray) -> Tensor:
        states = self.bigru.forward_batch(sequences, lengths)  # (B, T, 2N)
        pooled = masked_mean_over_time(states, time_mask(lengths, states.shape[1]))
        return self.project(pooled).relu()


class AttentionContentEncoder(ContentEncoder):
    """BLSTM states reduced with learned attention pooling (extension).

    Attention lets the encoder weight location-bearing tokens ("liberty",
    "strip") above stop-word noise instead of averaging them together.
    """

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.bilstm = BiLSTM(
            input_size=vectorizer.word_dim,
            hidden_size=config.feature_dim,
            num_layers=config.num_lstm_layers,
            init_std=config.init_std,
            rng=rng,
        )
        self.pooling = AttentionPooling(2 * config.feature_dim, rng=rng)
        self.project = Linear(2 * config.feature_dim, config.feature_dim, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        states = self.bilstm(sequence)  # (T, 2N)
        pooled = self.pooling(states).reshape(1, 2 * self.config.feature_dim)
        return self.project(pooled).relu().reshape(self.config.feature_dim)

    def _encode_batch(self, sequences: Tensor, lengths: np.ndarray) -> Tensor:
        states = self.bilstm.forward_batch(sequences, lengths)  # (B, T, 2N)
        pooled = self.pooling.forward_batch(states, time_mask(lengths, states.shape[1]))
        return self.project(pooled).relu()

    def attention_weights(self, profile: Profile) -> np.ndarray:
        """The per-token attention distribution (for inspection)."""
        sequence = Tensor(self.vectorizer.vectorize(profile))
        return self.pooling.attention_weights(self.bilstm(sequence))


CONTENT_ENCODERS = {
    "bilstm-c": BiLSTMCContentEncoder,
    "blstm": BLSTMContentEncoder,
    "convlstm": ConvLSTMContentEncoder,
    "bgru": BiGRUContentEncoder,
    "attention": AttentionContentEncoder,
}


def make_content_encoder(
    kind: str, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None
) -> ContentEncoder:
    """Factory mapping an encoder name (Table 3 row) to an instance."""
    try:
        encoder_cls = CONTENT_ENCODERS[kind]
    except KeyError as exc:
        raise ValueError(f"unknown content encoder {kind!r}; choose from {sorted(CONTENT_ENCODERS)}") from exc
    return encoder_cls(vectorizer, config)
