"""Content encoders for the recent tweet (paper Section 4.2).

The paper converts the recent tweet into skip-gram word vectors and encodes
the sequence with **BiLSTM-C**: a bidirectional LSTM whose forward/backward
hidden-state sequences are stacked into a 2-channel image, convolved with a
full-width height-3 filter bank, rectified and mean-pooled into the fixed
``N``-dimensional content feature ``Fc(r)``.

Two alternatives from Table 3 are provided for the ablations:

* :class:`BLSTMContentEncoder` — the same bidirectional LSTM but without the
  convolution layer (mean-pooled hidden states).
* :class:`ConvLSTMContentEncoder` — a ConvLSTM (convolutional state
  transitions) instead of BiLSTM-C.

Two further extension encoders (not in the paper) back the encoder-ablation
benchmarks:

* :class:`BiGRUContentEncoder` — a bidirectional GRU, a lighter recurrent cell.
* :class:`AttentionContentEncoder` — a bidirectional LSTM whose states are
  reduced with learned attention pooling instead of a mean.

All encoders share a :class:`TextVectorizer` that tokenises, maps to
vocabulary ids, looks up the (frozen) skip-gram vectors and pads very short
tweets so the convolution always has at least ``kernel_height`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.records import Profile
from repro.nn.autograd import Tensor
from repro.nn.conv import TemporalConv
from repro.nn.gru import BiGRU
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.pooling import AttentionPooling
from repro.nn.recurrent import BiLSTM, ConvLSTM
from repro.text.skipgram import SkipGramModel
from repro.text.tokenize import STOPWORD_TOKEN, Tokenizer, Vocabulary


@dataclass
class ContentEncoderConfig:
    """Shared hyper-parameters of the content encoders."""

    #: Output feature dimensionality ``N``.
    feature_dim: int = 16
    #: Maximum number of tokens fed to the encoder (tweets are short anyway).
    max_tokens: int = 16
    #: Minimum sequence length after padding (>= the convolution height).
    min_tokens: int = 4
    #: Number of stacked bidirectional LSTM layers ``Ql``.
    num_lstm_layers: int = 1
    #: Gaussian init std; ``None`` uses fan-in (He) scaling.
    init_std: float | None = None
    seed: int = 31


class TextVectorizer:
    """Tokenise + encode + embed tweet text into a ``(T, M)`` word-vector matrix."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        skipgram: SkipGramModel,
        tokenizer: Tokenizer | None = None,
        max_tokens: int = 16,
        min_tokens: int = 4,
    ):
        self.vocabulary = vocabulary
        self.skipgram = skipgram
        self.tokenizer = tokenizer or Tokenizer()
        self.max_tokens = max_tokens
        self.min_tokens = min_tokens
        self._pad_id = vocabulary.token_to_id.get(STOPWORD_TOKEN, vocabulary.unknown_id)
        self._cache: dict[tuple[int, float, str], np.ndarray] = {}

    @property
    def word_dim(self) -> int:
        """Dimensionality ``M`` of the word vectors."""
        return self.skipgram.embedding_dim

    def token_ids(self, text: str) -> list[int]:
        """Vocabulary ids of a tweet, truncated/padded to the configured bounds."""
        tokens = self.tokenizer.tokenize(text)[: self.max_tokens]
        ids = self.vocabulary.encode(tokens) if tokens else []
        while len(ids) < self.min_tokens:
            ids.append(self._pad_id)
        return ids

    def vectorize(self, profile: Profile) -> np.ndarray:
        """The ``(T, M)`` word-vector matrix of a profile's recent tweet (cached)."""
        key = (profile.uid, profile.ts, profile.content)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        matrix = self.skipgram.encode_sequence(self.token_ids(profile.content))
        self._cache[key] = matrix
        return matrix


class ContentEncoder(Module):
    """Base class: turns a profile into an ``N``-dimensional content feature."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig):
        super().__init__()
        self.vectorizer = vectorizer
        self.config = config

    @property
    def feature_dim(self) -> int:
        return self.config.feature_dim

    def encode(self, profile: Profile) -> Tensor:
        """Return the ``(feature_dim,)`` content feature of one profile."""
        raise NotImplementedError

    def forward(self, profile: Profile) -> Tensor:
        return self.encode(profile)


class BiLSTMCContentEncoder(ContentEncoder):
    """The paper's BiLSTM-C encoder (BLSTM + convolution + ReLU + mean pooling)."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.bilstm = BiLSTM(
            input_size=vectorizer.word_dim,
            hidden_size=config.feature_dim,
            num_layers=config.num_lstm_layers,
            init_std=config.init_std,
            rng=rng,
        )
        self.conv = TemporalConv(width=config.feature_dim, kernel_height=3, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        stacked = self.bilstm(sequence, stacked_channels=True)  # (T, N, 2)
        feature_map = self.conv(stacked).relu()  # (T - 2, N)
        return feature_map.mean(axis=0)


class BLSTMContentEncoder(ContentEncoder):
    """Bidirectional LSTM without the convolution layer (the *BLSTM* approach)."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.bilstm = BiLSTM(
            input_size=vectorizer.word_dim,
            hidden_size=config.feature_dim,
            num_layers=config.num_lstm_layers,
            init_std=config.init_std,
            rng=rng,
        )
        self.project = Linear(2 * config.feature_dim, config.feature_dim, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        states = self.bilstm(sequence)  # (T, 2N)
        pooled = states.mean(axis=0).reshape(1, 2 * self.config.feature_dim)
        return self.project(pooled).relu().reshape(self.config.feature_dim)


class ConvLSTMContentEncoder(ContentEncoder):
    """ConvLSTM encoder (convolutional input/state transitions, Shi et al. 2015)."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.convlstm = ConvLSTM(width=vectorizer.word_dim, kernel_size=3, init_std=config.init_std, rng=rng)
        self.project = Linear(vectorizer.word_dim, config.feature_dim, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        states = self.convlstm(sequence)  # (T, M)
        pooled = states.mean(axis=0).reshape(1, self.vectorizer.word_dim)
        return self.project(pooled).relu().reshape(self.config.feature_dim)


class BiGRUContentEncoder(ContentEncoder):
    """Bidirectional GRU encoder (extension; lighter than the BLSTM variant)."""

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.bigru = BiGRU(
            input_size=vectorizer.word_dim,
            hidden_size=config.feature_dim,
            init_std=config.init_std,
            rng=rng,
        )
        self.project = Linear(2 * config.feature_dim, config.feature_dim, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        states = self.bigru(sequence)  # (T, 2N)
        pooled = states.mean(axis=0).reshape(1, 2 * self.config.feature_dim)
        return self.project(pooled).relu().reshape(self.config.feature_dim)


class AttentionContentEncoder(ContentEncoder):
    """BLSTM states reduced with learned attention pooling (extension).

    Attention lets the encoder weight location-bearing tokens ("liberty",
    "strip") above stop-word noise instead of averaging them together.
    """

    def __init__(self, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None):
        config = config or ContentEncoderConfig()
        super().__init__(vectorizer, config)
        rng = np.random.default_rng(config.seed)
        self.bilstm = BiLSTM(
            input_size=vectorizer.word_dim,
            hidden_size=config.feature_dim,
            num_layers=config.num_lstm_layers,
            init_std=config.init_std,
            rng=rng,
        )
        self.pooling = AttentionPooling(2 * config.feature_dim, rng=rng)
        self.project = Linear(2 * config.feature_dim, config.feature_dim, init_std=config.init_std, rng=rng)

    def encode(self, profile: Profile) -> Tensor:
        sequence = Tensor(self.vectorizer.vectorize(profile))
        states = self.bilstm(sequence)  # (T, 2N)
        pooled = self.pooling(states).reshape(1, 2 * self.config.feature_dim)
        return self.project(pooled).relu().reshape(self.config.feature_dim)

    def attention_weights(self, profile: Profile) -> np.ndarray:
        """The per-token attention distribution (for inspection)."""
        sequence = Tensor(self.vectorizer.vectorize(profile))
        return self.pooling.attention_weights(self.bilstm(sequence))


CONTENT_ENCODERS = {
    "bilstm-c": BiLSTMCContentEncoder,
    "blstm": BLSTMContentEncoder,
    "convlstm": ConvLSTMContentEncoder,
    "bgru": BiGRUContentEncoder,
    "attention": AttentionContentEncoder,
}


def make_content_encoder(
    kind: str, vectorizer: TextVectorizer, config: ContentEncoderConfig | None = None
) -> ContentEncoder:
    """Factory mapping an encoder name (Table 3 row) to an instance."""
    try:
        encoder_cls = CONTENT_ENCODERS[kind]
    except KeyError as exc:
        raise ValueError(f"unknown content encoder {kind!r}; choose from {sorted(CONTENT_ENCODERS)}") from exc
    return encoder_cls(vectorizer, config)
