"""HisRect features: historical-visit features, content encoders and the featurizer."""

from repro.features.content import (
    CONTENT_ENCODERS,
    AttentionContentEncoder,
    BiGRUContentEncoder,
    BiLSTMCContentEncoder,
    BLSTMContentEncoder,
    ContentEncoder,
    ContentEncoderConfig,
    ConvLSTMContentEncoder,
    TextVectorizer,
    VectorizerCacheInfo,
    make_content_encoder,
)
from repro.features.hisrect import (
    EmbeddingNetwork,
    HisRectConfig,
    HisRectFeaturizer,
    POIClassifier,
)
from repro.features.history import (
    HistoricalVisitFeaturizer,
    HistoryDeltaState,
    HistoryDeltaTracker,
    HistoryFeatureConfig,
    OneHotHistoryFeaturizer,
)

__all__ = [
    "HistoryFeatureConfig",
    "HistoricalVisitFeaturizer",
    "HistoryDeltaState",
    "HistoryDeltaTracker",
    "OneHotHistoryFeaturizer",
    "ContentEncoder",
    "ContentEncoderConfig",
    "TextVectorizer",
    "VectorizerCacheInfo",
    "BiLSTMCContentEncoder",
    "BLSTMContentEncoder",
    "ConvLSTMContentEncoder",
    "BiGRUContentEncoder",
    "AttentionContentEncoder",
    "CONTENT_ENCODERS",
    "make_content_encoder",
    "HisRectConfig",
    "HisRectFeaturizer",
    "POIClassifier",
    "EmbeddingNetwork",
]
