"""The HisRect featurizer ``F``, the POI classifier ``P`` and the embedding ``E``.

Section 4.3 of the paper: the historical-visit feature ``Fv(r)`` and the
content feature ``Fc(r)`` are concatenated and pushed through ``Qf`` stacked
fully-connected + ReLU layers to obtain the HisRect feature ``F(r)``.  The POI
classifier ``P`` (used by the supervised loss ``L_poi`` and by the Comp2Loc
judge and POI-inference experiments) and the normalised embedding ``E`` (used
by the unsupervised SSL loss ``L_u``) both sit on top of ``F``.

The featurizer also covers the paper's feature ablations through its config:
*History-only*, *Tweet-only* and *One-hot* are all instances of
:class:`HisRectFeaturizer` with the corresponding parts switched.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.data.records import Profile
from repro.errors import ConfigurationError
from repro.features.content import (
    ContentEncoder,
    ContentEncoderConfig,
    TextVectorizer,
    make_content_encoder,
)
from repro.features.history import (
    HistoricalVisitFeaturizer,
    HistoryFeatureConfig,
    OneHotHistoryFeaturizer,
)
from repro.geo.poi import POIRegistry
from repro.nn.autograd import Tensor, concatenate
from repro.nn.layers import MLP, Dropout, Linear, l2_normalize
from repro.nn.module import Module

#: Memo key of one ``Fv(r)`` row: ``(uid, ts, len(visit_history), revision)``.
HistoryKey = tuple[int, float, int, int]


@dataclass
class HisRectConfig:
    """Architecture and feature-selection knobs of the HisRect featurizer."""

    #: Use the historical-visit feature ``Fv``.
    use_history: bool = True
    #: Use the recent-tweet content feature ``Fc``.
    use_content: bool = True
    #: History encoding: ``"temporal"`` (Eq. 1-2) or ``"onehot"`` (the One-hot approach).
    history_encoding: str = "temporal"
    #: Content encoder: ``"bilstm-c"`` (HisRect), ``"blstm"`` or ``"convlstm"``.
    content_encoder: str = "bilstm-c"
    #: Dimensionality ``N`` of the content feature.
    content_dim: int = 16
    #: Number of fully-connected layers ``Qf`` in the combiner.
    num_fc_layers: int = 2
    #: Width of the combiner layers / the HisRect feature dimensionality.
    feature_dim: int = 32
    #: Number of stacked bidirectional LSTM layers ``Ql``.
    num_lstm_layers: int = 1
    #: Dropout keep probability applied before fully-connected layers.
    keep_prob: float = 0.8
    #: Embedding dimensionality and depth (``E`` of the SSL loss, ``Qe`` layers).
    embedding_dim: int = 16
    num_embedding_layers: int = 2
    #: Gaussian init std.  ``None`` uses fan-in (He) scaling, which at the
    #: reproduction's small widths trains much faster than the paper's fixed
    #: 0.01 without changing the comparisons; pass 0.01 for the paper's setup.
    init_std: float | None = None
    history: HistoryFeatureConfig = field(default_factory=HistoryFeatureConfig)
    seed: int = 47

    def __post_init__(self) -> None:
        if not (self.use_history or self.use_content):
            raise ConfigurationError("HisRect needs at least one of history/content features")
        if self.history_encoding not in ("temporal", "onehot"):
            raise ConfigurationError("history_encoding must be 'temporal' or 'onehot'")
        if self.num_fc_layers < 1 or self.num_embedding_layers < 1:
            raise ConfigurationError("layer counts must be >= 1")


def _register_featurizer_variants() -> None:
    """Register the paper's featurizer ablations under the ``"featurizer"`` kind.

    Each factory maps a serialised :class:`HisRectConfig` dictionary to a
    config with the variant-defining fields forced, so a judge variant and its
    featurizer variant can never drift apart.
    """
    from repro.registry import register

    variants: dict[str, tuple[str, dict[str, object]]] = {
        "hisrect": ("the full HisRect featurizer (history + content)", {}),
        "history-only": ("historical-visit feature only", {"use_content": False}),
        "tweet-only": ("recent-tweet content feature only", {"use_history": False}),
        "one-hot": ("one-hot (untimed) history encoding", {"history_encoding": "onehot"}),
        "blstm": ("plain BLSTM content encoder", {"content_encoder": "blstm"}),
        "convlstm": ("ConvLSTM content encoder", {"content_encoder": "convlstm"}),
    }

    def make_factory(overrides: dict[str, object]):
        def factory(config: dict | None = None) -> HisRectConfig:
            from dataclasses import replace

            from repro.io.configs import config_from_dict

            return replace(config_from_dict(HisRectConfig, config or {}), **overrides)

        return factory

    for name, (description, overrides) in variants.items():
        register("featurizer", name, factory=make_factory(overrides), description=description)


_register_featurizer_variants()


class HisRectFeaturizer(Module):
    """The HisRect featurizer ``F`` (paper Sections 4.1-4.3)."""

    #: Default bound on memoised ``Fv(r)`` rows; caps the history cache in
    #: long-running serving the same way the vectorizer and engine LRUs do.
    #: Trainers should raise the instance's ``history_cache_size`` to the
    #: training-set size (the pipeline does) so epoch scans stay warm.
    HISTORY_CACHE_SIZE = 8192

    def __init__(
        self,
        registry: POIRegistry,
        vectorizer: TextVectorizer | None,
        config: HisRectConfig | None = None,
    ):
        super().__init__()
        self.config = config or HisRectConfig()
        self.registry = registry
        cfg = self.config
        if cfg.use_content and vectorizer is None:
            raise ConfigurationError("a TextVectorizer is required when use_content is True")
        rng = np.random.default_rng(cfg.seed)

        if cfg.history_encoding == "temporal":
            self.history_featurizer = HistoricalVisitFeaturizer(registry, cfg.history)
        else:
            self.history_featurizer = OneHotHistoryFeaturizer(registry)

        self.content_encoder: ContentEncoder | None = None
        if cfg.use_content:
            encoder_config = ContentEncoderConfig(
                feature_dim=cfg.content_dim,
                num_lstm_layers=cfg.num_lstm_layers,
                init_std=cfg.init_std,
                seed=cfg.seed + 1,
            )
            self.content_encoder = make_content_encoder(cfg.content_encoder, vectorizer, encoder_config)

        input_dim = 0
        if cfg.use_history:
            input_dim += self.history_featurizer.feature_dim
        if cfg.use_content:
            input_dim += cfg.content_dim
        self.combiner = MLP(
            input_dim,
            [cfg.feature_dim] * cfg.num_fc_layers,
            final_activation=True,
            keep_prob=cfg.keep_prob,
            init_std=cfg.init_std,
            rng=rng,
        )
        self.history_cache_size = self.HISTORY_CACHE_SIZE
        self._history_cache: OrderedDict[HistoryKey, np.ndarray] = OrderedDict()

    # ----------------------------------------------------------------- pieces
    @property
    def feature_dim(self) -> int:
        """Dimensionality of ``F(r)``."""
        return self.config.feature_dim

    def history_feature(self, profile: Profile) -> np.ndarray:
        """``Fv(r)`` with memoisation (it does not depend on trainable weights)."""
        key = self._history_key(profile)
        cached = self._history_cache.get(key)
        if cached is None:
            cached = self.history_featurizer.featurize(profile)
            self._store_history_row(key, cached)
        else:
            self._history_cache.move_to_end(key)
        return cached

    @staticmethod
    def _history_key(profile: Profile) -> HistoryKey:
        """Memo key of ``Fv(r)``: ``(uid, ts, len, revision)``.

        The builder-stamped revision (``-1`` when absent) keeps a capped
        history that slid its window — same length, different visits — from
        hitting the stale row, mirroring :func:`repro.core.profile_key`.
        """
        revision = -1 if profile.revision is None else int(profile.revision)
        return (profile.uid, profile.ts, len(profile.visit_history), revision)

    def _store_history_row(self, key: HistoryKey, row: np.ndarray) -> None:
        self._history_cache[key] = row
        self._history_cache.move_to_end(key)
        while len(self._history_cache) > self.history_cache_size:
            self._history_cache.popitem(last=False)

    def warm_history_row(self, profile: Profile, row: np.ndarray) -> None:
        """Seed the ``Fv(r)`` memo with an externally computed row.

        The live-serving hook: :class:`repro.service.stream.StreamScorer`
        computes the profile's history row incrementally
        (:meth:`repro.features.history.HistoricalVisitFeaturizer.featurize_delta`
        is bit-identical to the scratch batch path) and plants it here, so the
        serving gather's cold miss skips the Eq. (1)-(2) distance kernel and
        only runs the content encoder + combiner.
        """
        if not self.config.use_history:
            return
        if row.shape != (self.history_featurizer.feature_dim,):
            raise ValueError(
                f"history row has shape {row.shape}, "
                f"expected ({self.history_featurizer.feature_dim},)"
            )
        self._store_history_row(self._history_key(profile), np.array(row, copy=True))

    def _history_rows(self, profiles: list[Profile]) -> np.ndarray:
        """The ``(B, |P|)`` history rows of a batch through the LRU memo.

        One vectorised ``featurize_batch`` call replaces per-profile Eq. (1)-(2)
        loops for every cache miss in the batch; rows come back directly, so
        the result is right even when the batch outgrows the cache bound.
        """
        keys = [self._history_key(p) for p in profiles]
        resolved: dict[HistoryKey, np.ndarray] = {}
        missing: dict[HistoryKey, Profile] = {}
        for key, profile in zip(keys, profiles):
            if key in resolved or key in missing:
                continue
            row = self._history_cache.get(key)
            if row is not None:
                self._history_cache.move_to_end(key)
                resolved[key] = row
            else:
                missing[key] = profile
        if missing:
            rows = self.history_featurizer.featurize_batch(list(missing.values()))
            for key, row in zip(missing, rows):
                # Copy: the row is a view into the whole featurized batch, and
                # caching the view would pin that batch in memory.
                row = np.array(row, copy=True)
                resolved[key] = row
                self._store_history_row(key, row)
        return np.stack([resolved[key] for key in keys])

    def raw_feature(self, profile: Profile) -> Tensor:
        """The concatenated ``[Fv(r), Fc(r)]`` of one profile (scalar reference).

        Uses the content encoder's scalar ``encode``; :meth:`forward` takes
        the batched path and must match this row by row within 1e-9.
        """
        parts: list[Tensor] = []
        if self.config.use_history:
            parts.append(Tensor(self.history_feature(profile)))
        if self.config.use_content:
            assert self.content_encoder is not None
            parts.append(self.content_encoder.encode(profile))
        if len(parts) == 1:
            return parts[0]
        return concatenate(parts, axis=0)

    # ---------------------------------------------------------------- forward
    def forward(self, profiles: list[Profile]) -> Tensor:
        """The HisRect features ``F(r)`` of a batch of profiles, ``(B, feature_dim)``.

        Both feature halves take their vectorised fast paths: histories warm
        through one ``featurize_batch`` call and the content encoder runs its
        batched recurrence (``ContentEncoder.encode_batch``), so training and
        cold-miss serving never loop the Python-level per-profile encoders.
        """
        if not profiles:
            raise ValueError("forward() needs at least one profile")
        parts: list[Tensor] = []
        if self.config.use_history:
            parts.append(Tensor(self._history_rows(profiles)))
        if self.config.use_content:
            assert self.content_encoder is not None
            parts.append(self.content_encoder.encode_batch(profiles))
        raw = parts[0] if len(parts) == 1 else concatenate(parts, axis=1)
        return self.combiner(raw)

    def featurize(self, profiles: list[Profile]) -> np.ndarray:
        """Detached features as a NumPy array (used once the featurizer is frozen)."""
        was_training = self.training
        self.eval()
        features = self.forward(profiles).data.copy()
        if was_training:
            self.train()
        return features

    def featurize_batch(self, profiles: list[Profile]) -> np.ndarray:
        """Detached feature rows via one batched forward, ``(B, feature_dim)``.

        :meth:`featurize` plus an empty-batch guard.  The serving stack
        reaches the batch path through :meth:`featurize_profiles`, which
        chunks unbounded batches before taking the same forward.
        """
        if not profiles:
            return np.zeros((0, self.feature_dim))
        return self.featurize(profiles)

    def featurize_profiles(self, profiles: list[Profile]) -> np.ndarray:
        """Detached feature rows in bounded chunks, ``(B, feature_dim)``.

        The judges' ``featurize_profiles`` delegate here: chunking bounds the
        autograd graph per forward pass while each chunk still takes the
        vectorised history and batched content fast paths.
        """
        from repro.core.protocols import featurize_in_chunks

        return featurize_in_chunks(self, profiles)


class POIClassifier(Module):
    """The POI classifier ``P``: HisRect feature -> POI logits."""

    def __init__(
        self,
        feature_dim: int,
        num_pois: int,
        hidden_dim: int | None = None,
        num_layers: int = 1,
        keep_prob: float = 1.0,
        init_std: float | None = None,
        seed: int = 53,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_pois = num_pois
        layers: list[Module] = []
        current = feature_dim
        hidden_dim = hidden_dim or feature_dim
        for _ in range(max(0, num_layers - 1)):
            layers.append(MLP(current, [hidden_dim], final_activation=True, keep_prob=keep_prob,
                              init_std=init_std, rng=rng))
            current = hidden_dim
        self.hidden = layers
        self.dropout = Dropout(keep_prob, rng=rng) if keep_prob < 1.0 else None
        self.output = Linear(current, num_pois, init_std=init_std, rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        x = features
        for layer in self.hidden:
            x = layer(x)
        if self.dropout is not None:
            x = self.dropout(x)
        return self.output(x)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard POI (dense index) predictions from detached features."""
        logits = self.forward(Tensor(features)).data
        return logits.argmax(axis=-1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """POI probability distribution per row of ``features``."""
        logits = self.forward(Tensor(features)).data
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)


class EmbeddingNetwork(Module):
    """The normalised embedding ``E`` (or ``E'``): a small MLP + L2 normalisation."""

    def __init__(
        self,
        input_dim: int,
        embedding_dim: int,
        num_layers: int = 2,
        normalize: bool = True,
        init_std: float | None = None,
        keep_prob: float = 1.0,
        seed: int = 59,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        sizes = [embedding_dim] * num_layers
        self.mlp = MLP(input_dim, sizes, final_activation=False, keep_prob=keep_prob,
                       init_std=init_std, rng=rng)
        self.normalize = normalize
        self.embedding_dim = embedding_dim

    def forward(self, features: Tensor) -> Tensor:
        embedded = self.mlp(features)
        if self.normalize:
            return l2_normalize(embedded, axis=-1)
        return embedded
