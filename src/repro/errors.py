"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object holds inconsistent values."""


class DataGenerationError(ReproError):
    """Raised when the synthetic data substrate cannot produce valid data."""


class GeometryError(ReproError):
    """Raised for invalid geometric inputs (degenerate polygons, bad coordinates)."""


class TrainingError(ReproError):
    """Raised when a training loop receives data it cannot train on."""


class EngineOverloadError(ReproError):
    """Raised when a serving queue is full and the backpressure policy rejects."""


class NotFittedError(ReproError):
    """Raised when a model is used for prediction before being trained."""


class VocabularyError(ReproError):
    """Raised for out-of-vocabulary or empty-vocabulary conditions."""
