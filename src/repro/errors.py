"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object holds inconsistent values."""


class DataGenerationError(ReproError):
    """Raised when the synthetic data substrate cannot produce valid data."""


class GeometryError(ReproError):
    """Raised for invalid geometric inputs (degenerate polygons, bad coordinates)."""


class TrainingError(ReproError):
    """Raised when a training loop receives data it cannot train on."""


class EngineOverloadError(ReproError):
    """Raised when a serving queue is full and the backpressure policy rejects."""


class NotFittedError(ReproError):
    """Raised when a model is used for prediction before being trained."""


class WireProtocolError(ReproError):
    """Raised for malformed traffic on the cluster wire protocol.

    Covers every way a frame can be unreadable: truncated headers or
    payloads, a length prefix beyond the configured frame bound, an unknown
    protocol version, and payload bodies that fail to decode.  Connection
    loss *between* frames is not a protocol error (it is a clean EOF);
    connection loss *inside* one is.
    """


class WorkerCrashError(ReproError):
    """Raised when a cluster worker process died (or its connection broke).

    The fail-fast signal of the process-worker tier: every call in flight to
    — or queued behind — the dead worker fails with this error instead of
    hanging, and with respawn disabled, later calls routed to that worker
    raise it immediately.
    """


class RemoteJudgeError(ReproError):
    """A worker-side exception of a type the wire protocol cannot map back.

    Known :mod:`repro.errors` types re-raise as themselves client-side; any
    other worker-side exception (a numpy ``ValueError``, a bug) arrives as
    this, carrying the original type name and message.
    """


class VocabularyError(ReproError):
    """Raised for out-of-vocabulary or empty-vocabulary conditions."""
