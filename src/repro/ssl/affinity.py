"""The affinity (similarity) matrix ``A`` of the semi-supervised framework.

Section 4.4 of the paper: the entry ``a_ij`` between two profiles is

* ``1`` for a positive labelled pair (same POI within Δt);
* ``-1`` for a negative labelled pair (different POIs within Δt);
* ``eps'_d / (eps'_d + d(r_i, r_j))`` for an *unlabelled* pair whose profiles
  are within ``rho`` metres of each other, each within ``rho`` of some POI, and
  within Δt in time;
* ``0`` otherwise.

Rather than materialising the dense ``(L+U) x (L+U)`` matrix, the builder
returns the sparse list of weighted pairs (everything else is zero and never
contributes to the loss), which is also how the training loop samples batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.records import Pair
from repro.geo.poi import POIRegistry
from repro.geo.point import equirectangular_m


@dataclass
class AffinityConfig:
    """Thresholds and smoothing of the similarity matrix (paper Section 4.4)."""

    #: Spatial threshold ``rho`` in metres (paper: 1000 m).
    rho: float = 1000.0
    #: Smoothing factor ``eps'_d`` in metres (paper: 50 m).
    eps_d_prime: float = 50.0
    #: Temporal threshold Δt in seconds (paper: one hour).
    delta_t: float = 3600.0


@dataclass(frozen=True)
class WeightedPair:
    """A pair together with its affinity weight ``a_ij``."""

    pair: Pair
    weight: float


class AffinityGraphBuilder:
    """Builds the sparse affinity graph over labelled and unlabelled pairs."""

    def __init__(self, registry: POIRegistry, config: AffinityConfig | None = None):
        self.registry = registry
        self.config = config or AffinityConfig()

    def labeled_weight(self, pair: Pair) -> float:
        """``a_ij`` for a labelled pair: +1 for positive, -1 for negative."""
        if not pair.is_labeled:
            raise ValueError("labeled_weight() called on an unlabelled pair")
        return 1.0 if pair.is_positive else -1.0

    def unlabeled_weight(self, pair: Pair) -> float:
        """``a_ij`` for an unlabelled pair; 0 when any threshold is violated."""
        cfg = self.config
        left, right = pair.left, pair.right
        if left.lat is None or right.lat is None or left.lon is None or right.lon is None:
            return 0.0
        if abs(left.ts - right.ts) >= cfg.delta_t:
            return 0.0
        distance = equirectangular_m(left.lat, left.lon, right.lat, right.lon)
        if distance >= cfg.rho:
            return 0.0
        if self.registry.min_distance(left.lat, left.lon) >= cfg.rho:
            return 0.0
        if self.registry.min_distance(right.lat, right.lon) >= cfg.rho:
            return 0.0
        return cfg.eps_d_prime / (cfg.eps_d_prime + distance)

    def weight(self, pair: Pair) -> float:
        """``a_ij`` for any pair."""
        if pair.is_labeled:
            return self.labeled_weight(pair)
        return self.unlabeled_weight(pair)

    def build(self, labeled_pairs: list[Pair], unlabeled_pairs: list[Pair]) -> list[WeightedPair]:
        """The sparse affinity graph: every pair with a non-zero weight."""
        weighted: list[WeightedPair] = []
        for pair in labeled_pairs:
            weighted.append(WeightedPair(pair, self.labeled_weight(pair)))
        for pair in unlabeled_pairs:
            w = self.unlabeled_weight(pair)
            if w != 0.0:
                weighted.append(WeightedPair(pair, w))
        return weighted
