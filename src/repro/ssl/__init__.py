"""Semi-supervised learning: affinity graph and the Algorithm 1 trainer."""

from repro.ssl.affinity import AffinityConfig, AffinityGraphBuilder, WeightedPair
from repro.ssl.trainer import (
    SSLTrainingConfig,
    SemiSupervisedHisRectTrainer,
    TrainingHistory,
    UNSUPERVISED_LOSSES,
)

__all__ = [
    "AffinityConfig",
    "AffinityGraphBuilder",
    "WeightedPair",
    "SSLTrainingConfig",
    "SemiSupervisedHisRectTrainer",
    "TrainingHistory",
    "UNSUPERVISED_LOSSES",
]
