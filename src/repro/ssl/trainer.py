"""Semi-supervised HisRect training (Algorithm 1 of the paper).

The trainer jointly optimises three networks:

* the HisRect featurizer ``F``,
* the POI classifier ``P`` (supervised loss ``L_poi``, cross-entropy over the
  labelled profiles ``R_L``),
* the embedding ``E`` (unsupervised loss ``L_u`` over the affinity-weighted
  pairs ``Γ_L ∪ Γ_U``).

Each iteration flips a biased coin with ``P(supervised) = |R_L| / Ω`` where
``Ω = |R_L| + |Γ_L ∪ Γ_U|`` and takes one Adam step on the sampled objective,
exactly as Algorithm 1 prescribes.  Setting ``use_unlabeled=False`` recovers
the *HisRect-SL* supervised-only ablation; ``unsupervised_loss`` switches to
the §6.4.3 alternatives (squared L2 distance, or cosine on the raw features
without the embedding ``E``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.records import Pair, Profile
from repro.errors import TrainingError
from repro.features.hisrect import EmbeddingNetwork, HisRectFeaturizer, POIClassifier
from repro.geo.poi import POIRegistry
from repro.nn.losses import (
    cosine_embedding_loss,
    l2_embedding_loss,
    softmax_cross_entropy,
)
from repro.nn.optim import Adam, clip_grad_norm
from repro.ssl.affinity import AffinityConfig, AffinityGraphBuilder, WeightedPair

#: Valid values of ``SSLTrainingConfig.unsupervised_loss``.
UNSUPERVISED_LOSSES = ("cosine", "l2", "cosine-noembed")


@dataclass
class SSLTrainingConfig:
    """Hyper-parameters of the semi-supervised featurizer training."""

    batch_size: int = 8
    max_iterations: int = 240
    learning_rate: float = 0.01
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    lr_decay: float = 1e-3
    #: When False, only the supervised POI loss is used (the HisRect-SL ablation).
    use_unlabeled: bool = True
    #: ``"cosine"`` (paper), ``"l2"`` or ``"cosine-noembed"`` (§6.4.3 alternatives).
    unsupervised_loss: str = "cosine"
    #: Fraction of negative + unlabelled pairs kept in the sampling pool per
    #: epoch (the paper uses 1/10 to counter the class imbalance).
    hard_pair_fraction: float = 0.1
    #: Stop early when the moving-average losses change less than this.
    convergence_tolerance: float = 1e-4
    seed: int = 67

    def __post_init__(self) -> None:
        if self.unsupervised_loss not in UNSUPERVISED_LOSSES:
            raise TrainingError(
                f"unsupervised_loss must be one of {UNSUPERVISED_LOSSES}, got {self.unsupervised_loss!r}"
            )
        if self.batch_size < 1 or self.max_iterations < 1:
            raise TrainingError("batch_size and max_iterations must be positive")


@dataclass
class TrainingHistory:
    """Loss traces recorded during training."""

    poi_losses: list[float] = field(default_factory=list)
    unsupervised_losses: list[float] = field(default_factory=list)
    iterations: int = 0

    @property
    def final_poi_loss(self) -> float | None:
        return self.poi_losses[-1] if self.poi_losses else None

    @property
    def final_unsupervised_loss(self) -> float | None:
        return self.unsupervised_losses[-1] if self.unsupervised_losses else None


class SemiSupervisedHisRectTrainer:
    """Trains ``F``, ``P`` and ``E`` per Algorithm 1."""

    def __init__(
        self,
        featurizer: HisRectFeaturizer,
        classifier: POIClassifier,
        embedding: EmbeddingNetwork,
        registry: POIRegistry,
        config: SSLTrainingConfig | None = None,
        affinity_config: AffinityConfig | None = None,
    ):
        self.featurizer = featurizer
        self.classifier = classifier
        self.embedding = embedding
        self.registry = registry
        self.config = config or SSLTrainingConfig()
        self.affinity = AffinityGraphBuilder(registry, affinity_config)
        self._rng = np.random.default_rng(self.config.seed)

        cfg = self.config
        self._poi_optimizer = Adam(
            self.featurizer.parameters() + self.classifier.parameters(),
            lr=cfg.learning_rate,
            weight_decay=cfg.weight_decay,
        )
        self._embed_optimizer = Adam(
            self.featurizer.parameters() + self.embedding.parameters(),
            lr=cfg.learning_rate,
            weight_decay=cfg.weight_decay,
        )

    # ------------------------------------------------------------------ steps
    def _poi_step(self, profiles: list[Profile]) -> float:
        labels = np.array([self.registry.index_of(p.pid) for p in profiles], dtype=np.int64)
        features = self.featurizer(profiles)
        logits = self.classifier(features)
        loss = softmax_cross_entropy(logits, labels)
        self.featurizer.zero_grad()
        self.classifier.zero_grad()
        loss.backward()
        params = self._poi_optimizer.parameters
        clip_grad_norm(params, self.config.grad_clip)
        self._poi_optimizer.decay_lr(self.config.lr_decay)
        self._poi_optimizer.step()
        return loss.item()

    def _pair_step(self, weighted_pairs: list[WeightedPair]) -> float:
        lefts = [wp.pair.left for wp in weighted_pairs]
        rights = [wp.pair.right for wp in weighted_pairs]
        weights = np.array([wp.weight for wp in weighted_pairs])
        left_features = self.featurizer(lefts)
        right_features = self.featurizer(rights)
        mode = self.config.unsupervised_loss
        if mode == "cosine":
            left_emb = self.embedding(left_features)
            right_emb = self.embedding(right_features)
            loss = cosine_embedding_loss(left_emb, right_emb, weights)
        elif mode == "l2":
            left_emb = self.embedding(left_features)
            right_emb = self.embedding(right_features)
            loss = l2_embedding_loss(left_emb, right_emb, weights)
        else:  # cosine-noembed: cosine loss directly on the HisRect features
            loss = cosine_embedding_loss(left_features, right_features, weights)
        self.featurizer.zero_grad()
        self.embedding.zero_grad()
        loss.backward()
        params = self._embed_optimizer.parameters
        clip_grad_norm(params, self.config.grad_clip)
        self._embed_optimizer.decay_lr(self.config.lr_decay)
        self._embed_optimizer.step()
        return loss.item()

    # ------------------------------------------------------------------ train
    def _build_pair_pool(
        self, labeled_pairs: list[Pair], unlabeled_pairs: list[Pair]
    ) -> list[WeightedPair]:
        positives = [p for p in labeled_pairs if p.is_positive]
        others = [p for p in labeled_pairs if not p.is_positive] + (
            unlabeled_pairs if self.config.use_unlabeled else []
        )
        fraction = self.config.hard_pair_fraction
        if 0.0 < fraction < 1.0 and others:
            keep = max(1, int(round(len(others) * fraction)))
            indices = self._rng.choice(len(others), size=keep, replace=False)
            others = [others[int(i)] for i in indices]
        pool = self.affinity.build(
            positives + [p for p in others if p.is_labeled],
            [p for p in others if not p.is_labeled],
        )
        return [wp for wp in pool if wp.weight != 0.0]

    def train(
        self,
        labeled_profiles: list[Profile],
        labeled_pairs: list[Pair],
        unlabeled_pairs: list[Pair] | None = None,
    ) -> TrainingHistory:
        """Run Algorithm 1 and return the loss history."""
        unlabeled_pairs = unlabeled_pairs or []
        if not labeled_profiles:
            raise TrainingError("semi-supervised training needs labelled profiles")
        pool = self._build_pair_pool(labeled_pairs, unlabeled_pairs)
        use_pairs = bool(pool)

        cfg = self.config
        omega = len(labeled_profiles) + len(pool)
        gamma_poi = len(labeled_profiles) / omega if use_pairs else 1.0

        history = TrainingHistory()
        self.featurizer.train()
        self.classifier.train()
        self.embedding.train()
        for _ in range(cfg.max_iterations):
            history.iterations += 1
            if self._rng.random() < gamma_poi or not use_pairs:
                batch_idx = self._rng.choice(
                    len(labeled_profiles), size=min(cfg.batch_size, len(labeled_profiles)), replace=False
                )
                batch = [labeled_profiles[int(i)] for i in batch_idx]
                history.poi_losses.append(self._poi_step(batch))
            else:
                batch_idx = self._rng.choice(
                    len(pool), size=min(cfg.batch_size, len(pool)), replace=False
                )
                batch = [pool[int(i)] for i in batch_idx]
                history.unsupervised_losses.append(self._pair_step(batch))
            if self._converged(history):
                break
        self.featurizer.eval()
        self.classifier.eval()
        self.embedding.eval()
        return history

    def _converged(self, history: TrainingHistory, window: int = 20) -> bool:
        losses = history.poi_losses
        if len(losses) < 2 * window:
            return False
        recent = float(np.mean(losses[-window:]))
        previous = float(np.mean(losses[-2 * window : -window]))
        return abs(previous - recent) < self.config.convergence_tolerance
