"""``repro.obs`` — metrics registry and request-scoped tracing.

The observability layer the four serving transports share.  Two halves:

* :mod:`repro.obs.registry` — thread-safe :class:`Counter` / :class:`Gauge` /
  fixed-bucket :class:`Histogram` metrics with labeled families, JSON
  snapshots that merge across processes, and a Prometheus-style text
  exposition.
* :mod:`repro.obs.trace` — per-request :class:`Trace`/:class:`Span` timing
  with one canonical stage taxonomy (:data:`STAGES`), an injectable clock,
  and a process-wide :class:`Tracer` that is **disabled by default** (the
  serving hot path pays one attribute read when off).

Typical use::

    from repro import obs

    with obs.tracing() as tracer:           # scoped enable, fresh registry
        response = engine.serve(request)    # responses now carry .trace
        print(response.trace["stages"])
        print(tracer.registry.to_text())
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    format_stage_table,
)
from repro.obs.trace import (
    EVENT_COLD_HIT,
    EVENT_DEMOTE,
    EVENT_HOT_HIT,
    EVENT_PROMOTE,
    STAGE_FEATURIZE,
    STAGE_GATHER,
    STAGE_METRIC,
    STAGE_QUEUE_WAIT,
    STAGE_SCORE,
    STAGE_WIRE_RTT,
    STAGE_WIRE_SERIALIZE,
    STAGES,
    STORE_EVENT_METRIC,
    STORE_EVENTS,
    Span,
    Trace,
    Tracer,
    configure,
    get_registry,
    get_tracer,
    tracing,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "format_stage_table",
    "EVENT_COLD_HIT",
    "EVENT_DEMOTE",
    "EVENT_HOT_HIT",
    "EVENT_PROMOTE",
    "STAGE_FEATURIZE",
    "STAGE_GATHER",
    "STAGE_METRIC",
    "STAGE_QUEUE_WAIT",
    "STAGE_SCORE",
    "STAGE_WIRE_RTT",
    "STAGE_WIRE_SERIALIZE",
    "STAGES",
    "STORE_EVENT_METRIC",
    "STORE_EVENTS",
    "Span",
    "Trace",
    "Tracer",
    "configure",
    "get_registry",
    "get_tracer",
    "tracing",
]
