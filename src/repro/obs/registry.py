"""The metrics registry: counters, gauges, fixed-bucket histograms.

One process-local, thread-safe registry of named metrics, with optional
label dimensions (families).  Three metric kinds:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — a settable level (``set`` / ``inc`` / ``dec``);
* :class:`Histogram` — **fixed-bucket** distribution.  Observations land in
  pre-declared buckets, so memory is O(buckets) regardless of how many
  observations arrive — the bound the old sort-the-window percentile code
  lacked.  Quantiles are exact *within bucket resolution*: the reported
  value is the upper bound of the bucket containing the requested rank,
  clamped to the observed min/max (so a histogram whose observations all
  fall inside one bucket still reports their true extreme rather than the
  bucket edge).

Registries snapshot to a JSON-able dict (:meth:`MetricsRegistry.snapshot`)
that crosses the cluster wire protocol (the ``stats`` worker op), merge
worker snapshots back into a cluster-truthful whole
(:meth:`MetricsRegistry.merge`), and render a Prometheus-style text
exposition (:meth:`MetricsRegistry.to_text`).
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping, Sequence

from repro.errors import ConfigurationError

#: Default bucket upper bounds for latency histograms, in milliseconds.
#: Geometric 1-2.5-5 spacing from 50 µs to 10 s; everything above lands in
#: the implicit +Inf bucket (and quantiles clamp to the observed max).
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A thread-safe, monotonically increasing total."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a Gauge for levels")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _merge(self, data: Mapping) -> None:
        with self._lock:
            self._value += float(data.get("value", 0.0))

    def _sample(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A thread-safe instantaneous level."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _merge(self, data: Mapping) -> None:
        # Gauges are levels, not totals: a merged snapshot adopts the
        # incoming reading (last writer wins, the usual scrape semantics).
        self.set(float(data.get("value", 0.0)))

    def _sample(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A fixed-bucket distribution with rank-exact quantiles per bucket.

    ``buckets`` are strictly increasing upper bounds; an implicit ``+Inf``
    bucket catches everything above the last bound.  Memory is O(buckets)
    forever.  :meth:`quantile` walks the cumulative counts to the bucket
    holding the requested rank and returns that bucket's upper bound clamped
    into ``[observed min, observed max]`` — exact whenever observations sit
    on bucket bounds, and never off by more than one bucket width otherwise.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError("histogram bucket bounds must strictly increase")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the implicit +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The value at rank ``ceil(q * count)``, exact to bucket resolution."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile q must lie in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            counts = list(self._counts)
            total, low, high = self._count, self._min, self._max
        rank = max(1, math.ceil(q * total))
        cumulative = 0
        for index, count in enumerate(counts):
            cumulative += count
            if cumulative >= rank:
                upper = self.bounds[index] if index < len(self.bounds) else high
                return float(min(max(upper, low), high))
        return float(high)  # pragma: no cover - rank <= total always hits

    def percentiles(self) -> tuple[float, float, float]:
        """(p50, p90, p99)."""
        return self.quantile(0.50), self.quantile(0.90), self.quantile(0.99)

    def _merge(self, data: Mapping) -> None:
        bounds = tuple(float(b) for b in data.get("bounds", ()))
        if bounds != self.bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        counts = [int(c) for c in data.get("counts", ())]
        if len(counts) != len(self._counts):
            raise ConfigurationError("histogram snapshot has a malformed count table")
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += count
            self._sum += float(data.get("sum", 0.0))
            self._count += int(data.get("count", 0))
            if data.get("count", 0):
                self._min = min(self._min, float(data.get("min", math.inf)))
                self._max = max(self._max, float(data.get("max", -math.inf)))

    def _sample(self) -> dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
            }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its labeled children.

    An unlabeled metric is a family with a single anonymous child; labeled
    families create children on first use (``family.labels(stage="gather")``).
    """

    def __init__(self, name: str, kind: str, help: str, label_names: tuple[str, ...], **options):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._options = options
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self._options.get("buckets", DEFAULT_LATENCY_BUCKETS_MS))
        return _KINDS[self.kind]()

    def labels(self, **labels: str):
        """The child metric for one label-value combination (created lazily)."""
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.label_names}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make()
            return child

    def samples(self) -> list[tuple[dict[str, str], object]]:
        """Every live child with its label values (sorted, for stable output)."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.label_names, key)), child) for key, child in items
        ]


class MetricsRegistry:
    """A named collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent declare-or-get
    calls: the same name returns the same metric (a kind mismatch raises).
    Unlabeled declarations return the metric itself; labeled ones return the
    :class:`MetricFamily`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}  # guarded-by: _lock

    def _declare(self, name: str, kind: str, help: str, labels: Sequence[str], **options):
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = MetricFamily(name, kind, help, labels, **options)
            elif family.kind != kind or family.label_names != labels:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {family.kind} with "
                    f"labels {family.label_names}"
                )
        return family if labels else family.labels()

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return self._declare(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return self._declare(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ):
        return self._declare(name, "histogram", help, labels, buckets=tuple(buckets))

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name`` (``None`` if absent)."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ----------------------------------------------------------------- export
    def collect(self) -> list[dict]:
        """Every metric's current state as plain dicts, sorted by name."""
        collected = []
        for family in self.families():
            collected.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "label_names": list(family.label_names),
                    "samples": [
                        {"labels": labels, **metric._sample()}
                        for labels, metric in family.samples()
                    ],
                }
            )
        return collected

    def snapshot(self) -> dict:
        """A JSON-able snapshot (what the ``stats`` wire op returns)."""
        return {"metrics": self.collect()}

    def merge(self, snapshot: Mapping) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms accumulate; gauges adopt the incoming value.
        Unknown metrics are created with the snapshot's declared shape.
        """
        for metric in snapshot.get("metrics", ()):
            name = str(metric["name"])
            kind = str(metric["kind"])
            if kind not in _KINDS:
                raise ConfigurationError(f"unknown metric kind {kind!r} in snapshot")
            label_names = tuple(str(n) for n in metric.get("label_names", ()))
            options = {}
            if kind == "histogram":
                samples = metric.get("samples", ())
                if samples:
                    options["buckets"] = tuple(samples[0].get("bounds", DEFAULT_LATENCY_BUCKETS_MS))
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = self._families[name] = MetricFamily(
                        name, kind, str(metric.get("help", "")), label_names, **options
                    )
                elif family.kind != kind or family.label_names != label_names:
                    raise ConfigurationError(
                        f"snapshot metric {name!r} conflicts with the registered "
                        f"{family.kind} {family.label_names}"
                    )
            for sample in metric.get("samples", ()):
                child = family.labels(**sample.get("labels", {}))
                child._merge(sample)

    @classmethod
    def merged(cls, snapshots: Iterable[Mapping]) -> "MetricsRegistry":
        """A fresh registry holding the merge of several snapshots."""
        registry = cls()
        for snapshot in snapshots:
            registry.merge(snapshot)
        return registry

    # ------------------------------------------------------------- exposition
    def to_text(self) -> str:
        """Prometheus-style text exposition of every metric."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, metric in family.samples():
                if family.kind == "histogram":
                    data = metric._sample()
                    cumulative = 0
                    for bound, count in zip(
                        list(data["bounds"]) + ["+Inf"], data["counts"]
                    ):
                        cumulative += count
                        le = bound if isinstance(bound, str) else _format_value(bound)
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_format_labels({**labels, 'le': le})} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_format_labels(labels)} "
                        f"{_format_value(data['sum'])}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(labels)} {data['count']}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_format_labels(labels)} "
                        f"{_format_value(metric.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in labels.items())
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def format_stage_table(registry: MetricsRegistry, metric: str = "repro_stage_latency_ms") -> str:
    """A per-stage latency breakdown table from a registry's stage histogram.

    Empty string when the registry holds no stage observations (tracing was
    off, or nothing was served).
    """
    family = registry.get(metric)
    if family is None:
        return ""
    rows = []
    for labels, histogram in family.samples():
        if histogram.count == 0:
            continue
        p50, p90, p99 = histogram.percentiles()
        rows.append(
            (
                labels.get("stage", "?"),
                histogram.count,
                histogram.sum,
                histogram.mean,
                p50,
                p99,
            )
        )
    if not rows:
        return ""
    rows.sort(key=lambda row: -row[2])  # heaviest stage first
    lines = [
        f"{'stage':<16} {'count':>8} {'total ms':>12} {'mean ms':>10} {'p50 ms':>10} {'p99 ms':>10}"
    ]
    for stage, count, total, mean, p50, p99 in rows:
        lines.append(
            f"{stage:<16} {count:>8} {total:>12.2f} {mean:>10.3f} {p50:>10.3f} {p99:>10.3f}"
        )
    return "\n".join(lines)
