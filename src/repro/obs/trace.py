"""Request-scoped tracing: spans, traces, and the :class:`Tracer`.

One :class:`Trace` is created per :class:`repro.api.JudgeRequest` inside the
shared decision path (:meth:`repro.api.JudgementCore.serve_batch`), so every
transport — engine, sharded, batcher, worker pool — reports the **same stage
taxonomy** without transport-specific instrumentation:

============== ==============================================================
stage          measured where
============== ==============================================================
queue_wait     :class:`repro.cluster.MicroBatcher` — enqueue → flush pickup
gather         ``JudgementCore`` — feature resolution for one request
featurize      inside gather — the cache-miss featurization batch
score          ``JudgementCore`` — the single batched scorer call
wire_serialize :class:`repro.cluster.WorkerPool` — building CALL frame bodies
wire_rtt       ``WorkerPool`` — gather fan-out round-trip (includes the
               worker-side gather/featurize it encloses)
============== ==============================================================

``featurize`` nests inside ``gather`` and the ``wire_*`` stages nest inside
the pool's ``gather``, so a request's *wall* time decomposes into the
non-overlapping stages ``queue_wait + gather + score`` (the property
``benchmarks/bench_observability.py`` guards).  Store-tier events
(``hot_hit`` / ``cold_hit`` / ``promote`` / ``demote``) are registry-only
histograms — per-lookup timings, too fine-grained to ride individual traces.

Activation uses a :class:`contextvars.ContextVar`, which does **not** cross
thread boundaries: thread-pool transports re-activate the caller's trace
inside worker threads (see ``ShardedEngine._gather``), and the process pool
sends the trace id across the wire and merges the worker's spans back.

Everything is gated on :attr:`Tracer.enabled`: disabled, ``stage()`` returns
a shared no-op context manager and costs one attribute read — the ≤5%
overhead guarantee the benchmarks enforce.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.obs.registry import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry

# --------------------------------------------------------------------- stages
STAGE_QUEUE_WAIT = "queue_wait"
STAGE_GATHER = "gather"
STAGE_FEATURIZE = "featurize"
STAGE_SCORE = "score"
STAGE_WIRE_SERIALIZE = "wire_serialize"
STAGE_WIRE_RTT = "wire_rtt"

#: The canonical stage taxonomy every transport draws from.
STAGES = frozenset(
    {
        STAGE_QUEUE_WAIT,
        STAGE_GATHER,
        STAGE_FEATURIZE,
        STAGE_SCORE,
        STAGE_WIRE_SERIALIZE,
        STAGE_WIRE_RTT,
    }
)

EVENT_HOT_HIT = "hot_hit"
EVENT_COLD_HIT = "cold_hit"
EVENT_PROMOTE = "promote"
EVENT_DEMOTE = "demote"

#: Store-tier event taxonomy (registry-only histograms).
STORE_EVENTS = frozenset({EVENT_HOT_HIT, EVENT_COLD_HIT, EVENT_PROMOTE, EVENT_DEMOTE})

STAGE_METRIC = "repro_stage_latency_ms"
STORE_EVENT_METRIC = "repro_store_event_ms"


@dataclass(frozen=True)
class Span:
    """One timed stage inside a trace.

    ``start_ms`` is relative to the trace's creation (monotonic clock), so
    spans from different processes can sit in one trace without sharing an
    epoch; worker-merged spans carry ``start_ms=None``.
    """

    name: str
    duration_ms: float
    span_id: int
    parent_id: int | None = None
    start_ms: float | None = None


class Trace:
    """A per-request collection of spans, thread-safe to record into."""

    __slots__ = ("trace_id", "_clock", "_t0", "_lock", "_ids", "spans")

    def __init__(self, trace_id: str, clock: Callable[[], float]):
        self.trace_id = trace_id
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.spans: list[Span] = []

    def next_id(self) -> int:
        return next(self._ids)

    def record(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        duration_ms: float,
    ) -> None:
        span = Span(
            name=name,
            duration_ms=duration_ms,
            span_id=span_id,
            parent_id=parent_id,
            start_ms=(start - self._t0) * 1e3,
        )
        with self._lock:
            self.spans.append(span)

    def add(self, name: str, duration_ms: float, parent_id: int | None = None) -> None:
        """Append an externally timed span (e.g. merged from a worker)."""
        with self._lock:
            self.spans.append(
                Span(
                    name=name,
                    duration_ms=float(duration_ms),
                    span_id=next(self._ids),
                    parent_id=parent_id,
                )
            )

    def duration_of(self, name: str) -> float:
        """Total milliseconds recorded under one stage name."""
        with self._lock:
            return sum(span.duration_ms for span in self.spans if span.name == name)

    def stage_list(self) -> list[list]:
        """``[[name, duration_ms], ...]`` in record order (JSON/wire-friendly)."""
        with self._lock:
            return [[span.name, span.duration_ms] for span in self.spans]

    def report(self) -> dict:
        """The JSON-friendly form attached to ``JudgeResponse.trace``."""
        return {"trace_id": self.trace_id, "stages": self.stage_list()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.trace_id}, spans={len(self.spans)})"


#: The active (trace, enclosing span id) for the current execution context.
_ACTIVE: ContextVar[tuple[Trace, int | None] | None] = ContextVar(
    "repro_obs_active_trace", default=None
)


class _NoopStage:
    """Shared do-nothing context manager — the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopStage":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_STAGE = _NoopStage()


class _StageTimer:
    """Times one stage: registry histogram always, active trace when present."""

    __slots__ = ("_tracer", "_name", "_start", "_trace", "_span_id", "_parent_id", "_token")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_StageTimer":
        active = _ACTIVE.get()
        if active is None:
            self._trace = None
            self._span_id = None
            self._parent_id = None
            self._token = None
        else:
            trace, parent_id = active
            self._trace = trace
            self._span_id = trace.next_id()
            self._token = _ACTIVE.set((trace, self._span_id))
            self._parent_id = parent_id
        self._start = self._tracer.clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration_ms = (self._tracer.clock() - self._start) * 1e3
        self._tracer._observe_stage(self._name, duration_ms)
        if self._trace is not None:
            _ACTIVE.reset(self._token)
            self._trace.record(
                self._name, self._span_id, self._parent_id, self._start, duration_ms
            )
        return False


class Tracer:
    """The tracing front end: stage timers, trace lifecycle, slow hooks.

    Parameters
    ----------
    enabled:
        Master switch.  Disabled, :meth:`stage` returns a shared no-op and
        :meth:`start_trace` is never reached by the serving hot path.
    registry:
        Where stage histograms accumulate (a fresh one by default).
    time_fn:
        Injectable monotonic clock — tests pass a fake and assert exact
        durations instead of sleeping.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        registry: MetricsRegistry | None = None,
        time_fn: Callable[[], float] = time.perf_counter,
    ):
        self.enabled = bool(enabled)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = time_fn
        self._slow_hooks: list[tuple[float, Callable]] = []
        self._stage_family = self.registry.histogram(
            STAGE_METRIC,
            "Per-stage serving latency (milliseconds)",
            labels=("stage",),
            buckets=DEFAULT_LATENCY_BUCKETS_MS,
        )
        self._event_family = self.registry.histogram(
            STORE_EVENT_METRIC,
            "Feature-store tier event latency (milliseconds)",
            labels=("event",),
            buckets=DEFAULT_LATENCY_BUCKETS_MS,
        )

    # ------------------------------------------------------------------ stages
    def stage(self, name: str):
        """Context manager timing one stage (shared no-op when disabled)."""
        if not self.enabled:
            return _NOOP_STAGE
        return _StageTimer(self, name)

    def _observe_stage(self, name: str, duration_ms: float) -> None:
        self._stage_family.labels(stage=name).observe(duration_ms)

    def record_stage(
        self,
        name: str,
        duration_ms: float,
        traces: Iterable[Trace | None] = (),
    ) -> None:
        """Record an externally timed stage: registry once, each trace too.

        Used where one measurement covers several requests (the batched
        ``score`` call) or where the timed region ended before the trace was
        reachable (the batcher's ``queue_wait``).
        """
        if not self.enabled:
            return
        self._observe_stage(name, duration_ms)
        for trace in traces:
            if trace is not None:
                trace.add(name, duration_ms)

    def record_event(self, event: str, duration_ms: float) -> None:
        """Record a store-tier event latency (registry-only)."""
        self._event_family.labels(event=event).observe(duration_ms)

    # ------------------------------------------------------------------ traces
    def start_trace(self, trace_id: str | None = None) -> Trace:
        """A fresh trace (not yet active); pass ``trace_id`` to adopt one."""
        return Trace(trace_id or uuid.uuid4().hex[:16], self.clock)

    @contextmanager
    def activate(self, trace: Trace | None):
        """Make ``trace`` current for the enclosed block (``None`` = no-op).

        Activation rides a ``ContextVar`` and therefore does *not* cross
        thread boundaries — re-activate explicitly inside worker threads.
        """
        if trace is None:
            yield None
            return
        token = _ACTIVE.set((trace, None))
        try:
            yield trace
        finally:
            _ACTIVE.reset(token)

    def current_trace(self) -> Trace | None:
        active = _ACTIVE.get()
        return active[0] if active is not None else None

    # -------------------------------------------------------------- slow hooks
    def on_slow(self, threshold_ms: float, callback: Callable) -> None:
        """Call ``callback(trace, total_ms)`` when a request exceeds the bar."""
        self._slow_hooks.append((float(threshold_ms), callback))

    def finish(self, trace: Trace, total_ms: float) -> None:
        """Complete a trace, firing slow hooks (hook exceptions swallowed)."""
        for threshold_ms, callback in self._slow_hooks:
            if total_ms >= threshold_ms:
                try:
                    callback(trace, total_ms)
                except Exception:  # noqa: BLE001 - observability never breaks serving
                    pass


# ------------------------------------------------------------- module default
_DEFAULT_TRACER = Tracer(enabled=False)
_TRACER = _DEFAULT_TRACER
_TRACER_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer the instrumented layers consult."""
    return _TRACER


def get_registry() -> MetricsRegistry:
    """The current tracer's registry (what the ``stats`` wire op exports)."""
    return _TRACER.registry


def configure(
    *,
    enabled: bool | None = None,
    registry: MetricsRegistry | None = None,
    time_fn: Callable[[], float] | None = None,
) -> Tracer:
    """Replace the process-wide tracer (worker processes call this at boot)."""
    global _TRACER
    with _TRACER_LOCK:
        current = _TRACER
        _TRACER = Tracer(
            enabled=current.enabled if enabled is None else enabled,
            registry=registry if registry is not None else current.registry,
            time_fn=time_fn if time_fn is not None else current.clock,
        )
        _TRACER._slow_hooks = list(current._slow_hooks)
        return _TRACER


@contextmanager
def tracing(
    enabled: bool = True,
    *,
    registry: MetricsRegistry | None = None,
    time_fn: Callable[[], float] | None = None,
):
    """Scoped tracer swap: enable tracing for a block, restore on exit.

    The loadgen paths and tests use this to give each run its own registry
    so breakdown tables are per-run, not process-cumulative.
    """
    global _TRACER
    with _TRACER_LOCK:
        previous = _TRACER
        _TRACER = Tracer(
            enabled=enabled,
            registry=registry if registry is not None else MetricsRegistry(),
            time_fn=time_fn if time_fn is not None else previous.clock,
        )
        current = _TRACER
    try:
        yield current
    finally:
        with _TRACER_LOCK:
            _TRACER = previous
