"""Quickstart: train a HisRect co-location pipeline on a small synthetic city.

The script walks through the library's main workflow end to end:

1. generate a small NYC-like synthetic dataset (POIs, user timelines,
   profiles and pairs);
2. fit the full HisRect pipeline — skip-gram word vectors, the HisRect
   featurizer trained with the semi-supervised framework, and the
   co-location judge;
3. wrap the fitted pipeline in the serving facade
   (:class:`repro.api.ColocationEngine`) and evaluate it on the held-out
   test pairs, printing the same accuracy / recall / precision / F1 metrics
   the paper reports.

Run it with::

    python examples/quickstart.py

It finishes in a couple of minutes on a laptop.  For the full-scale
experiment harness see ``benchmarks/``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import ColocationEngine, JudgeRequest
from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
from repro.data import build_dataset, nyc_like_dataset_config
from repro.eval.metrics import binary_metrics, pair_labels, roc_auc_score
from repro.features import HisRectConfig
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig


def main() -> None:
    started = time.perf_counter()

    # ------------------------------------------------------------------ data
    print("Generating a small NYC-like synthetic dataset ...")
    dataset = build_dataset(nyc_like_dataset_config(scale=0.4, seed=5))
    stats = dataset.statistics()
    train_stats = stats["Training"]
    print(
        f"  {int(train_stats['timelines'])} training timelines, "
        f"{int(train_stats['labeled_profiles'])} labeled profiles, "
        f"{int(train_stats['positive_pairs'])} positive / "
        f"{int(train_stats['negative_pairs'])} negative pairs"
    )

    # -------------------------------------------------------------- pipeline
    # Small dimensions keep the example fast; the defaults in PipelineConfig
    # are the laptop-scale benchmark sizing.
    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(max_iterations=60),
        judge=JudgeConfig(embedding_dim=8, classifier_dim=8, epochs=12),
        skipgram=SkipGramConfig(embedding_dim=16, epochs=1),
    )
    print("Fitting the HisRect pipeline (skip-gram -> SSL featurizer -> judge) ...")
    pipeline = CoLocationPipeline(config).fit(dataset)

    # The engine is the serving facade: batched prediction plus an LRU cache
    # of per-profile HisRect features shared by every call.
    engine = ColocationEngine(pipeline, cache_size=4096)

    # ------------------------------------------------------------ evaluation
    test_pairs = dataset.test.labeled_pairs
    y_true = pair_labels(test_pairs)
    y_pred = engine.predict(test_pairs)
    scores = engine.predict_proba(test_pairs)

    metrics = binary_metrics(y_true, y_pred)
    auc = roc_auc_score(y_true, scores)

    print()
    print(f"Test pairs: {len(test_pairs)} "
          f"({int(y_true.sum())} positive, {int((1 - y_true).sum())} negative)")
    print(f"  accuracy  = {metrics.accuracy:.4f}")
    print(f"  recall    = {metrics.recall:.4f}")
    print(f"  precision = {metrics.precision:.4f}")
    print(f"  F1        = {metrics.f1:.4f}")
    print(f"  AUC       = {auc:.4f}")

    # --------------------------------------------------------- a single pair
    example = next((p for p in test_pairs if p.is_positive), None)
    if example is not None:
        # The typed request/response path a service would use.
        response = engine.serve(JudgeRequest(pairs=(example,)))
        print()
        print("Example positive pair (served through the engine):")
        print(f"  user {example.left.uid} tweeted: {example.left.content[:60]!r}")
        print(f"  user {example.right.uid} tweeted: {example.right.content[:60]!r}")
        print(f"  predicted co-location probability: {response.probabilities[0]:.3f}")
        print(f"  served in {response.elapsed_ms:.2f} ms "
              f"({response.cache_hits} cache hits, {response.cache_misses} misses)")

    info = engine.cache_info()
    print()
    print(f"Engine feature cache: {info.size} profiles cached, "
          f"hit rate {info.hit_rate:.0%} over {info.hits + info.misses} lookups")

    elapsed = time.perf_counter() - started
    print()
    print(f"Done in {elapsed:.1f}s")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
