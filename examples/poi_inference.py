"""POI inference for non-geo-tagged tweets (the paper's Section 6.3.3 scenario).

The co-location judge rests on a POI classifier ``P`` trained jointly with
the HisRect featurizer.  That classifier is a useful product in its own
right: given a profile (recent tweet + visit history) whose coordinates are
unknown, it ranks every POI in the city by the probability that the tweet
was posted there.  This example

1. trains the pipeline on a small synthetic city,
2. ranks POIs for a handful of held-out labelled test profiles, and
3. reports Acc@K for K = 1..10 — the metric of the paper's Figure 4.

Run it with::

    python examples/poi_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
from repro.data import build_dataset, tiny_dataset_config
from repro.eval.metrics import accuracy_at_k
from repro.features import HisRectConfig
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig


def main() -> None:
    print("Generating dataset and fitting the HisRect pipeline ...")
    dataset = build_dataset(tiny_dataset_config(seed=11))
    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(max_iterations=80),
        judge=JudgeConfig(embedding_dim=8, classifier_dim=8, epochs=8),
        skipgram=SkipGramConfig(embedding_dim=16, epochs=1),
    )
    pipeline = CoLocationPipeline(config).fit(dataset)

    registry = dataset.registry
    test_profiles = dataset.test.labeled_profiles
    print(f"Inferring POIs for {len(test_profiles)} labelled test profiles "
          f"over {len(registry)} candidate POIs")

    # Dense POI probability distributions, one row per profile.
    proba = pipeline.infer_poi_proba(test_profiles)
    true_indices = np.array([registry.index_of(p.pid) for p in test_profiles])

    print()
    print("Acc@K (fraction of profiles whose true POI is in the top-K guesses):")
    for k in (1, 2, 3, 5, 10):
        acc = accuracy_at_k(true_indices, proba, k)
        print(f"  Acc@{k:<2d} = {acc:.4f}")

    # Show the top-3 ranking for a few profiles.
    print()
    print("Example rankings:")
    for profile in test_profiles[:3]:
        row = proba[test_profiles.index(profile)]
        top3 = np.argsort(-row)[:3]
        true_poi = registry.get(profile.pid)
        guesses = ", ".join(
            f"{registry.pois[int(i)].name or registry.pid_at(int(i))} ({row[int(i)]:.2f})"
            for i in top3
        )
        print(f"  user {profile.uid} tweeted {profile.content[:40]!r}")
        print(f"    true POI: {true_poi.name or true_poi.pid}   top guesses: {guesses}")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
