"""Community / group detection from co-location judgements (paper Section 6.5).

Applications such as local people recommendation, community detection and
group analysis ask a slightly different question than pairwise co-location:
"given a handful of users who tweeted in the same hour, who is actually
together at the same POI?".  The paper answers it by turning the pairwise
co-location probabilities into a graph and reading off connected components.

This example

1. trains the HisRect pipeline on a small synthetic city,
2. samples 5-profile groups with the paper's ground-truth patterns
   (5-0, 4-1, 3-2, 3-1-1, 2-2-1), and
3. clusters each group with :class:`repro.colocation.ProfileClusterer` and
   reports how often the predicted grouping matches the true one — the
   metric of the paper's Table 8.

Run it with::

    python examples/group_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig, ProfileClusterer
from repro.colocation.clustering import partition_from_labels, partitions_equal
from repro.data import build_dataset, nyc_like_dataset_config
from repro.eval.group_patterns import GROUP_PATTERNS, GroupPatternSampler
from repro.features import HisRectConfig
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig


def main() -> None:
    print("Generating dataset and fitting the HisRect pipeline ...")
    dataset = build_dataset(nyc_like_dataset_config(scale=0.4, seed=23))
    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(max_iterations=80),
        judge=JudgeConfig(embedding_dim=8, classifier_dim=8, epochs=15),
        skipgram=SkipGramConfig(embedding_dim=16, epochs=1),
    )
    pipeline = CoLocationPipeline(config).fit(dataset)
    clusterer = ProfileClusterer(pipeline, threshold=0.5)

    # Sample ground-truth groups from the test profiles.
    sampler = GroupPatternSampler(
        dataset.test.labeled_profiles, delta_t=dataset.delta_t, seed=3
    )

    print()
    print("Group-pattern identification accuracy (20 sampled groups per pattern):")
    for pattern in GROUP_PATTERNS:
        samples = sampler.sample_many(pattern, count=20)
        if not samples:
            print(f"  {pattern:>5s}: not enough test data to sample this pattern")
            continue
        correct = 0
        for sample in samples:
            result = clusterer.cluster(sample.profiles)
            truth = partition_from_labels(sample.labels)
            if partitions_equal(result.as_partition(), truth):
                correct += 1
        print(f"  {pattern:>5s}: {correct / len(samples):.2f}  ({len(samples)} groups)")

    # Walk through one group in detail.
    sample = sampler.sample("3-2")
    if sample is not None:
        print()
        print("One 3-2 group in detail (3 users at one POI, 2 at another):")
        result = clusterer.cluster(sample.profiles)
        for cluster_index, cluster in enumerate(result.as_partition()):
            members = ", ".join(f"user {sample.profiles[i].uid}" for i in sorted(cluster))
            print(f"  predicted group {cluster_index}: {members}")
        truth = partition_from_labels(sample.labels)
        print(f"  matches ground truth: {partitions_equal(result.as_partition(), truth)}")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
