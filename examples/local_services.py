"""Location-based services built on a fitted judge (paper Section 1).

Beyond friends notification, the paper motivates co-location judgement with
local people recommendation, community detection / group analysis and
"followship" measurement.  This example fits one HisRect pipeline and then
drives all three services from it:

1. **Local people recommendation** — for a query user's latest profile, rank
   other users by a blend of co-location probability and shared-interest
   (tweet-content) similarity.
2. **Community detection** — build the weighted co-location graph between the
   users active in a one-hour window and extract modularity communities.
3. **Followship measurement** — scan the test timelines for (leader, follower)
   pairs where one user repeatedly visits a POI shortly after the other.

Run it with::

    python examples/local_services.py
"""

from __future__ import annotations

import numpy as np

from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
from repro.data import ProfileBuilder, build_dataset, nyc_like_dataset_config
from repro.features import HisRectConfig
from repro.service import CommunityDetector, FollowshipAnalyzer, LocalPeopleRecommender
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig


def train_pipeline(dataset) -> CoLocationPipeline:
    """Fit a small HisRect pipeline (shared by all three services)."""
    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(max_iterations=60),
        judge=JudgeConfig(embedding_dim=8, classifier_dim=8, epochs=12),
        skipgram=SkipGramConfig(embedding_dim=16, epochs=1),
    )
    return CoLocationPipeline(config).fit(dataset)


def _busiest_window(profiles, delta_t: float):
    """The query profile with the most other profiles inside its Δt window."""
    def neighbours(candidate):
        return sum(
            1 for other in profiles
            if other.uid != candidate.uid and abs(other.ts - candidate.ts) < delta_t
        )

    return max(profiles, key=neighbours)


def demo_recommendation(pipeline, dataset) -> None:
    print("\n=== Local people recommendation ===")
    profiles = dataset.test.labeled_profiles[:120]
    if len(profiles) < 3:
        print("  (not enough test profiles at this scale)")
        return
    recommender = LocalPeopleRecommender(pipeline, delta_t=dataset.delta_t, colocation_weight=0.7)
    query = _busiest_window(profiles, dataset.delta_t)
    candidates = [p for p in profiles if p is not query]
    recommendations = recommender.recommend(query, candidates, top_k=5)
    print(f"Query: user {query.uid} tweeted {query.content[:50]!r}")
    if not recommendations:
        print("  no candidate fell inside the Δt window")
    for rank, rec in enumerate(recommendations, start=1):
        print(
            f"  {rank}. user {rec.uid:<6d} score={rec.score:.3f} "
            f"(co-location={rec.colocation_probability:.3f}, interest={rec.interest_similarity:.3f})"
        )


def demo_communities(pipeline, dataset) -> None:
    print("\n=== Community detection ===")
    all_profiles = dataset.test.labeled_profiles
    if not all_profiles:
        print("  (no labelled test profiles at this scale)")
        return
    # Focus on the busiest part of the day so the users actually overlap in time.
    anchor = _busiest_window(all_profiles[:120], dataset.delta_t)
    profiles = [p for p in all_profiles if abs(p.ts - anchor.ts) < 3 * dataset.delta_t][:60]
    detector = CommunityDetector(pipeline, delta_t=dataset.delta_t, edge_threshold=0.5)
    result = detector.detect(profiles)
    print(
        f"{len(profiles)} profiles -> {result.num_communities} communities "
        f"(modularity {result.modularity:.3f})"
    )
    for community in result.communities[:5]:
        members = ", ".join(str(uid) for uid in sorted(community)[:8])
        suffix = " ..." if len(community) > 8 else ""
        print(f"  community of {len(community)}: {members}{suffix}")


def demo_followship(dataset) -> None:
    print("\n=== Followship measurement ===")
    analyzer = FollowshipAnalyzer(dataset.registry, window_s=6 * 3600.0)
    scores = analyzer.analyze_store(dataset.test.store, min_followed_visits=2, top_k=5)
    if not scores:
        print("  no leader/follower pair with at least 2 followed visits")
        return
    for entry in scores:
        print(
            f"  user {entry.follower_uid} follows user {entry.leader_uid}: "
            f"{entry.followed_visits}/{entry.total_follower_visits} visits "
            f"(score {entry.score:.2f})"
        )


def main() -> None:
    print("Generating a small NYC-like synthetic dataset ...")
    dataset = build_dataset(nyc_like_dataset_config(scale=0.4, seed=31))
    print("Fitting the HisRect pipeline ...")
    pipeline = train_pipeline(dataset)

    # A ProfileBuilder is what a production deployment would run over the live
    # stream; here the dataset already carries built profiles, so the services
    # consume those directly.
    _ = ProfileBuilder  # referenced for discoverability

    demo_recommendation(pipeline, dataset)
    demo_communities(pipeline, dataset)
    demo_followship(dataset)
    print("\nDone.")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
