"""Location-based services built on a fitted judge (paper Section 1).

Beyond friends notification, the paper motivates co-location judgement with
local people recommendation, community detection / group analysis and
"followship" measurement.  This example fits one HisRect pipeline, wraps it
in a single shared :class:`repro.api.ColocationEngine` and drives all three
services from that engine (so profile features are computed once across
services):

1. **Local people recommendation** — for a query user's latest profile, rank
   other users by a blend of co-location probability and shared-interest
   (tweet-content) similarity.
2. **Community detection** — build the weighted co-location graph between the
   users active in a one-hour window and extract modularity communities.
3. **Followship measurement** — scan the test timelines for (leader, follower)
   pairs where one user repeatedly visits a POI shortly after the other.

Run it with::

    python examples/local_services.py
"""

from __future__ import annotations

import numpy as np

from repro.api import ColocationEngine
from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
from repro.data import ProfileBuilder, build_dataset, nyc_like_dataset_config
from repro.features import HisRectConfig
from repro.service import CommunityDetector, FollowshipAnalyzer, LocalPeopleRecommender
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig


def train_engine(dataset) -> ColocationEngine:
    """Fit a small HisRect pipeline and wrap it in one shared engine.

    All three services consume the same :class:`ColocationEngine`, so a
    profile scored by the recommender is already featurized when the
    community detector sees it.
    """
    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(max_iterations=60),
        judge=JudgeConfig(embedding_dim=8, classifier_dim=8, epochs=12),
        skipgram=SkipGramConfig(embedding_dim=16, epochs=1),
    )
    pipeline = CoLocationPipeline(config).fit(dataset)
    return ColocationEngine(pipeline, cache_size=8192)


def _busiest_window(profiles, delta_t: float):
    """The query profile with the most other profiles inside its Δt window."""
    def neighbours(candidate):
        return sum(
            1 for other in profiles
            if other.uid != candidate.uid and abs(other.ts - candidate.ts) < delta_t
        )

    return max(profiles, key=neighbours)


def demo_recommendation(engine, dataset) -> None:
    print("\n=== Local people recommendation ===")
    profiles = dataset.test.labeled_profiles[:120]
    if len(profiles) < 3:
        print("  (not enough test profiles at this scale)")
        return
    recommender = LocalPeopleRecommender(engine, delta_t=dataset.delta_t, colocation_weight=0.7)
    query = _busiest_window(profiles, dataset.delta_t)
    candidates = [p for p in profiles if p is not query]
    recommendations = recommender.recommend(query, candidates, top_k=5)
    print(f"Query: user {query.uid} tweeted {query.content[:50]!r}")
    if not recommendations:
        print("  no candidate fell inside the Δt window")
    for rank, rec in enumerate(recommendations, start=1):
        print(
            f"  {rank}. user {rec.uid:<6d} score={rec.score:.3f} "
            f"(co-location={rec.colocation_probability:.3f}, interest={rec.interest_similarity:.3f})"
        )


def demo_communities(engine, dataset) -> None:
    print("\n=== Community detection ===")
    all_profiles = dataset.test.labeled_profiles
    if not all_profiles:
        print("  (no labelled test profiles at this scale)")
        return
    # Focus on the busiest part of the day so the users actually overlap in time.
    anchor = _busiest_window(all_profiles[:120], dataset.delta_t)
    profiles = [p for p in all_profiles if abs(p.ts - anchor.ts) < 3 * dataset.delta_t][:60]
    detector = CommunityDetector(engine, delta_t=dataset.delta_t, edge_threshold=0.5)
    result = detector.detect(profiles)
    print(
        f"{len(profiles)} profiles -> {result.num_communities} communities "
        f"(modularity {result.modularity:.3f})"
    )
    for community in result.communities[:5]:
        members = ", ".join(str(uid) for uid in sorted(community)[:8])
        suffix = " ..." if len(community) > 8 else ""
        print(f"  community of {len(community)}: {members}{suffix}")


def demo_followship(engine, dataset) -> None:
    print("\n=== Followship measurement ===")
    # The analyzer only needs the POI registry, which it takes from the engine.
    analyzer = FollowshipAnalyzer(engine, window_s=6 * 3600.0)
    scores = analyzer.analyze_store(dataset.test.store, min_followed_visits=2, top_k=5)
    if not scores:
        print("  no leader/follower pair with at least 2 followed visits")
        return
    for entry in scores:
        print(
            f"  user {entry.follower_uid} follows user {entry.leader_uid}: "
            f"{entry.followed_visits}/{entry.total_follower_visits} visits "
            f"(score {entry.score:.2f})"
        )


def main() -> None:
    print("Generating a small NYC-like synthetic dataset ...")
    dataset = build_dataset(nyc_like_dataset_config(scale=0.4, seed=31))
    print("Fitting the HisRect pipeline ...")
    engine = train_engine(dataset)

    # A ProfileBuilder is what a production deployment would run over the live
    # stream; here the dataset already carries built profiles, so the services
    # consume those directly.
    _ = ProfileBuilder  # referenced for discoverability

    demo_recommendation(engine, dataset)
    demo_communities(engine, dataset)
    demo_followship(engine, dataset)
    info = engine.cache_info()
    print(f"\nShared engine cache: {info.size} profiles, hit rate {info.hit_rate:.0%}")
    print("Done.")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
