"""Sharded, micro-batched serving: the ``repro.cluster`` subsystem in action.

The script walks the scaling tier end to end:

1. fit a small HisRect judge on the tiny synthetic dataset;
2. build a 4-shard :class:`repro.cluster.ShardedEngine` — every user's
   feature rows live on their owner shard's bounded LRU — and show that its
   probabilities match a single :class:`repro.api.ColocationEngine`
   bit-for-bit;
3. put a :class:`repro.cluster.MicroBatcher` in front, submit a burst of
   concurrent requests, and print the :class:`repro.cluster.ClusterMetrics`
   snapshot (flush coalescing, latency percentiles, per-shard caches);
4. snapshot the shard caches and warm-start a fresh cluster from them — the
   restarted worker answers from a hot cache without refeaturizing.

Run it with::

    python examples/sharded_serving.py

It finishes in well under a minute.  For the throughput comparison against
the single engine see ``benchmarks/bench_sharded_serving.py`` or
``repro-hisrect serve-bench``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import ColocationEngine
from repro.cluster import MicroBatcher, ShardedEngine
from repro.cluster.loadgen import LoadConfig, fit_serving_pipeline, generate_requests


def main() -> None:
    started = time.perf_counter()

    # ----------------------------------------------------------------- judge
    print("Fitting a small HisRect judge ...")
    pipeline, dataset = fit_serving_pipeline(seed=5)

    # A seeded, Zipf-skewed request mix: a head of hot users dominates, the
    # way real traffic does.
    config = LoadConfig(num_users=96, num_requests=120, pairs_per_request=4)
    requests = generate_requests(dataset.registry, dataset.training_corpus(), config)

    # ------------------------------------------------- sharded == single, bitwise
    single = ColocationEngine(pipeline, cache_size=2048)
    with ShardedEngine(pipeline, num_shards=4, cache_size=2048) as sharded:
        sample = requests[:10]
        exact = all(
            np.array_equal(single.predict_proba(pairs), sharded.predict_proba(pairs))
            for pairs in sample
        )
        print(f"sharded probabilities match the single engine bit-for-bit: {exact}")

        owners = sorted({sharded.shard_of(pair.left) for pairs in sample for pair in pairs})
        print(f"sample queries hashed onto shards {owners}")

        # ------------------------------------------------ micro-batched burst
        with MicroBatcher(sharded, max_batch=128, max_delay_ms=1.0, overflow="block") as batcher:
            futures = [batcher.submit_score(pairs) for pairs in requests]
            results = [future.result() for future in futures]

            # The typed front door coalesces too: JudgeRequests (with
            # per-request thresholds) flush through the shared serving core.
            from repro.api import JudgeRequest

            serve_futures = [
                batcher.submit_serve(JudgeRequest(pairs=tuple(pairs), threshold=0.4))
                for pairs in requests[:16]
            ]
            responses = [future.result() for future in serve_futures]
        print(
            f"served {len(results)} concurrent requests "
            f"({sum(len(r) for r in results)} pairs) through the batcher"
        )
        print(
            f"plus {len(responses)} typed serve requests "
            f"({sum(r.num_positive for r in responses)} positives at threshold 0.4)"
        )
        # Snapshot after the batcher closed, so the final flush is recorded.
        print(batcher.metrics.snapshot().format())

        # -------------------------------------------------- snapshot / restore
        snapshot = sharded.snapshot()
        rows = sum(len(shard_rows) for shard_rows in snapshot)

    with ShardedEngine(pipeline, num_shards=4, cache_size=2048) as restarted:
        kept = restarted.restore(snapshot)
        print(f"warm-started a fresh cluster with {kept}/{rows} snapshot rows")
        before = restarted.cache_info()
        restarted.predict_proba(requests[0])
        after = restarted.cache_info()
        print(
            f"first request after restore: {after.hits - before.hits} cache hits, "
            f"{after.featurized - before.featurized} fresh featurizations — "
            "the restarted worker serves its slice without refeaturizing it"
        )

    print(f"\nDone in {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()
