"""Observability tour: tracing, the metrics registry, and worker liveness.

PR 9 gave every serving transport one stage taxonomy and one metrics
substrate (``repro.obs``).  This script walks the surfaces end to end:

1. fit a small HisRect judge and serve a request **untraced** — the default:
   no trace attached, every stage site is a shared no-op;
2. turn tracing on with ``with tracing():`` and read the per-request
   breakdown from ``JudgeResponse.trace`` — ordered ``[stage, ms]`` pairs
   drawn from the shared taxonomy (``queue_wait``, ``gather``,
   ``featurize``, ``score``, wire stages);
3. serve through a :class:`repro.cluster.MicroBatcher` and watch the
   measured ``queue_wait`` lead the trace;
4. register an ``on_slow`` hook that fires only for requests over a latency
   threshold;
5. aggregate: render the registry's heaviest-first stage table and the
   Prometheus-style text exposition;
6. spawn a :class:`repro.cluster.WorkerPool`, let trace ids cross the wire
   (worker spans merge back into the caller's trace), pull every worker's
   registry snapshot through the ``stats`` wire op
   (``pool.obs_snapshot()``), and read PING/PONG liveness from
   ``pool.worker_health()``.

Run it with::

    python examples/observability.py

(The ``__main__`` guard is mandatory: workers start via multiprocessing's
``spawn`` method, which re-imports this module in each child.)
"""

from __future__ import annotations

import time

from repro.api import ColocationEngine, JudgeRequest
from repro.cluster import MicroBatcher, WorkerPool
from repro.cluster.loadgen import LoadConfig, fit_serving_pipeline, generate_requests
from repro.obs import STAGE_QUEUE_WAIT, format_stage_table, tracing


def main() -> None:
    started = time.perf_counter()

    # ----------------------------------------------------------------- judge
    print("Fitting a small HisRect judge ...")
    pipeline, dataset = fit_serving_pipeline(seed=5)
    config = LoadConfig(num_users=48, num_requests=12, pairs_per_request=4)
    requests = [
        JudgeRequest(pairs=tuple(pairs))
        for pairs in generate_requests(dataset.registry, dataset.training_corpus(), config)
    ]
    engine = ColocationEngine(pipeline, cache_size=2048)

    # ------------------------------------------------------ untraced default
    response = engine.serve(requests[0])
    print(
        f"\nuntraced serve: {len(response.probabilities)} pairs judged, "
        f"response.trace is {response.trace} — tracing is off by default "
        "and the disabled stage sites are shared no-ops (~250ns each)"
    )

    # -------------------------------------------------- request-scoped trace
    with tracing():
        response = engine.serve(requests[1])
    trace = response.trace
    print(f"\ntraced serve {trace['trace_id']}:")
    for stage, duration_ms in trace["stages"]:
        print(f"  {stage:<16} {duration_ms:8.3f} ms")
    print("(featurize nests inside gather — top-level stages partition the wall)")

    # ------------------------------------------- batcher: queue_wait + hooks
    slow: list[tuple[str, float]] = []
    with tracing() as tracer:
        tracer.on_slow(0.0, lambda t, ms: slow.append((t.trace_id, ms)))
        with MicroBatcher(engine, max_delay_ms=2.0, overflow="block") as batcher:
            responses = [
                batcher.submit_serve(request).result(timeout=60)
                for request in requests
            ]
        stage_table = format_stage_table(tracer.registry)
    first_stage = responses[0].trace["stages"][0]
    assert first_stage[0] == STAGE_QUEUE_WAIT
    print(
        f"\nbatched serves lead with the measured queue wait: "
        f"{first_stage[0]} = {first_stage[1]:.3f} ms"
    )
    print(f"on_slow(0.0) saw all {len(slow)} requests (a real threshold filters)")

    # ----------------------------------------------- aggregate registry view
    print("\nper-stage breakdown across the batched run (heaviest first):")
    print(stage_table)
    exposition = tracer.registry.to_text()
    print("\nfirst lines of the Prometheus-style exposition:")
    print("\n".join(exposition.splitlines()[:6]))

    # ----------------------------- worker pool: wire traces, stats, liveness
    print("\nSpawning a 2-worker pool ...")
    with tracing():
        with WorkerPool(pipeline, num_workers=2, cache_size=2048) as pool:
            response = pool.serve(requests[2])
            stages = [stage for stage, _ in response.trace["stages"]]
            print(
                f"pool trace crosses the wire: {stages}\n"
                "(wire_serialize/wire_rtt are the gateway's; the extra "
                "gather/featurize spans rode back from the workers)"
            )
            merged = pool.obs_snapshot()
            print("\ngateway + worker registries merged via the stats wire op:")
            print(format_stage_table(merged))
            print(f"worker liveness (PING/PONG heartbeat): {pool.worker_health()}")
            print(pool.metrics.snapshot().format())

    print(f"\nDone in {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()
