"""Live profiles end to end: stream ingestion, mutation, invalidation.

Serving co-location judgements to live traffic means profiles *change* under
the caches: every geo-tagged tweet appends a visit, capped histories slide,
and yesterday's feature rows are stale.  This script walks the live-profile
machinery end to end:

1. fit a small HisRect judge and replay held-out timelines through a
   :class:`repro.service.StreamScorer` — the incremental path seeds the
   featurizer with delta-updated Eq. (1)–(2) rows (O(1 visit) of kernel work
   per ingest instead of O(history)) without changing a single score;
2. mutate a served user's profile (append a visit, bump the revision) and
   show that the revisioned cache key alone keeps the engine from serving
   the stale row — then reclaim the dead rows with ``invalidate`` /
   ``invalidate_stale`` and read the accounting;
3. run the same mutate-invalidate-rescore loop against the sharded cluster
   and the process-worker pool: invalidation routes to the owner shard,
   crosses the wire to worker processes, and every transport keeps matching
   a freshly built engine that never cached anything.

Run it with::

    python examples/live_stream.py

It finishes in well under a minute.  For the speedup measurement see
``benchmarks/bench_live_profiles.py``.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.api import ColocationEngine
from repro.cluster import ShardedEngine, WorkerPool
from repro.cluster.loadgen import fit_serving_pipeline
from repro.data.records import Pair, Visit
from repro.service import StreamScorer


def mutate(profile, step: int):
    """One live mutation: append a visit (capped window) and bump the revision."""
    last = profile.visit_history[-1] if profile.visit_history else Visit(
        ts=profile.ts, lat=40.75, lon=-73.99
    )
    new_visit = Visit(ts=profile.ts + 30.0 * (step + 1), lat=last.lat, lon=last.lon)
    return dataclasses.replace(
        profile,
        tweet=dataclasses.replace(profile.tweet, ts=profile.ts + 60.0 * (step + 1)),
        visit_history=(profile.visit_history + (new_visit,))[-8:],
        revision=(profile.revision or 0) + 1,
    )


def main() -> None:
    started = time.perf_counter()

    print("Fitting a small HisRect judge ...")
    pipeline, dataset = fit_serving_pipeline(seed=5)

    # ------------------------------------------------ 1. streaming ingestion
    engine = ColocationEngine(pipeline, cache_size=2048)
    scorer = StreamScorer(engine, delta_t=dataset.delta_t, max_history=16)
    print(f"incremental Eq. (1)-(2) seeding active: {scorer.incremental}")

    tweets = sorted((p.tweet for p in dataset.test.labeled_profiles), key=lambda t: t.ts)
    scored = scorer.process_many(tweets)
    positives = sum(1 for s in scored if s.probability >= 0.5)
    print(
        f"replayed {len(tweets)} geo-tagged tweets -> {len(scored)} candidate "
        f"pairs scored, {positives} above 0.5"
    )

    # --------------------------------- 2. mutation, revisions, invalidation
    profiles = {p.uid: p for p in dataset.train.labeled_profiles[:8]}
    uids = sorted(profiles)
    pairs = [
        Pair(profiles[uids[i]], profiles[uids[(i + 1) % len(uids)]])
        for i in range(len(uids))
    ]
    engine.predict_proba(pairs)  # warm the current generation into the cache

    victim = uids[0]
    profiles[victim] = mutate(profiles[victim], step=0)
    fresh = ColocationEngine(pipeline, cache_size=0)
    mutated_pairs = [
        Pair(profiles[uids[i]], profiles[uids[(i + 1) % len(uids)]])
        for i in range(len(uids))
    ]
    # Nobody has invalidated anything yet — the revisioned key alone keeps
    # the stale row out of the answer.
    exact = np.array_equal(
        engine.predict_proba(mutated_pairs), fresh.predict_proba(mutated_pairs)
    )
    print(f"mutated user served fresh *without* any invalidate call: {exact}")

    # The old-generation rows are now dead weight; reclaim them explicitly.
    dropped = engine.invalidate([victim])
    swept = engine.invalidate_stale()
    info = engine.cache_info()
    print(
        f"invalidate({victim}) dropped {dropped} rows, invalidate_stale() swept "
        f"{swept} superseded revisions; cumulative invalidated = {info.invalidated}"
    )

    # ----------------------- 3. the same loop across the cluster transports
    print("\nMutate-invalidate-rescore across the cluster transports:")
    with ShardedEngine(pipeline, num_shards=3, cache_size=2048) as sharded:
        with WorkerPool(pipeline, num_workers=2, cache_size=2048) as pool:
            for name, transport in (("sharded", sharded), ("workers", pool)):
                live = dict(profiles)
                for step in range(1, 3):
                    for uid in uids[: 1 + step]:
                        live[uid] = mutate(live[uid], step)
                    # Routed to the owner shard / pushed over the wire to the
                    # owning worker process; the response's cache accounting
                    # reports the drops.
                    transport.invalidate(uids[: 1 + step])
                    current = [
                        Pair(live[uids[i]], live[uids[(i + 1 + step) % len(uids)]])
                        for i in range(len(uids))
                    ]
                    exact = np.array_equal(
                        transport.predict_proba(current), fresh.predict_proba(current)
                    )
                    print(
                        f"  {name}: step {step} ({1 + step} users mutated) "
                        f"matches the fresh engine bit-for-bit: {exact}"
                    )
                transport.invalidate_stale()

    print(f"\nDone in {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()
