"""Social + frequent-pattern features on top of HisRect (paper Section 7).

The paper's future-work section proposes strengthening co-location judgement
with "social relationship among users and frequent patterns shared by users".
This example builds that extension end to end:

1. train the usual HisRect pipeline on a small synthetic city;
2. generate a friendship graph over the training users whose edges are
   correlated with co-visitation (``repro.social.generate_social_graph``);
3. extract pairwise social / frequent-pattern features and stack a logistic
   layer on top of the frozen HisRect judge
   (``repro.social.SocialCoLocationJudge``);
4. compare the plain judge and the social-augmented judge on held-out pairs
   and print the learned blend weights.

Run it with::

    python examples/social_extension.py
"""

from __future__ import annotations

import numpy as np

from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
from repro.data import build_dataset, nyc_like_dataset_config
from repro.eval.metrics import binary_metrics, pair_labels
from repro.features import HisRectConfig
from repro.social import (
    SocialCoLocationJudge,
    SocialFeatureExtractor,
    SocialGraphConfig,
    SocialJudgeConfig,
    generate_social_graph,
)
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig


def main() -> None:
    # ------------------------------------------------------------------ data
    print("Generating a small NYC-like synthetic dataset ...")
    dataset = build_dataset(nyc_like_dataset_config(scale=0.4, seed=23))

    # ---------------------------------------------------------- base pipeline
    print("Fitting the HisRect pipeline (the base judge) ...")
    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(max_iterations=60),
        judge=JudgeConfig(embedding_dim=8, classifier_dim=8, epochs=12),
        skipgram=SkipGramConfig(embedding_dim=16, epochs=1),
    )
    pipeline = CoLocationPipeline(config).fit(dataset)

    # ----------------------------------------------------------- social graph
    print("Generating a friendship graph correlated with co-visitation ...")
    graph = generate_social_graph(
        dataset.train.store,
        dataset.registry,
        SocialGraphConfig(background_rate=0.02, covisit_boost=0.7, seed=11),
    )
    print(f"  {graph.num_users} users, {graph.num_friendships} friendships")

    # ---------------------------------------------------------- stacked judge
    print("Stacking social / frequent-pattern features on the frozen judge ...")
    extractor = SocialFeatureExtractor(graph, dataset.registry, delta_t=dataset.delta_t)
    social_judge = SocialCoLocationJudge(pipeline, extractor, SocialJudgeConfig(epochs=40))
    social_judge.fit(dataset.train.labeled_pairs)

    print("Learned blend weights (positive = pushes towards 'co-located'):")
    for name, weight in social_judge.feature_weights().items():
        print(f"  {name:<22s} {weight:+.4f}")

    # ------------------------------------------------------------ comparison
    test_pairs = dataset.test.labeled_pairs
    labels = pair_labels(test_pairs)

    base_metrics = binary_metrics(labels, pipeline.predict(test_pairs))
    social_metrics = binary_metrics(labels, social_judge.predict(test_pairs))

    print()
    print(f"{'':16s}{'Acc':>8s}{'Rec':>8s}{'Pre':>8s}{'F1':>8s}")
    for name, metrics in (("HisRect", base_metrics), ("HisRect+Social", social_metrics)):
        print(
            f"{name:16s}{metrics.accuracy:8.4f}{metrics.recall:8.4f}"
            f"{metrics.precision:8.4f}{metrics.f1:8.4f}"
        )
    print()
    print(
        "Reading the result: the stacking layer re-calibrates the frozen base "
        "judge using the social and co-visit signals.  At this tiny example "
        "scale the base judge is poorly calibrated, so the blend weights and "
        "the metric changes can be large; at the benchmark scales the stacked "
        "judge tracks the base judge closely (see "
        "`benchmarks/bench_extension_social.py`), which is the behaviour to "
        "expect once the base model is well trained."
    )


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
