"""Persist a trained co-location model and serve it later (or elsewhere).

A production deployment trains the HisRect pipeline offline, ships the fitted
model to the serving fleet, and answers co-location queries online.  This
example shows that round trip with :mod:`repro.io`:

1. generate a dataset and save it to disk (``save_dataset`` / ``load_dataset``);
2. fit the pipeline and save it (``save_pipeline``);
3. in a "fresh process" (simulated here by loading from disk), reload both and
   verify the loaded model reproduces the original predictions exactly;
4. wire the loaded model into the online friends-notification service.

Run it with::

    python examples/save_and_load.py
"""

from __future__ import annotations

import tempfile
import pathlib

import numpy as np

from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
from repro.data import build_dataset, tiny_dataset_config
from repro.features import HisRectConfig
from repro.io import load_dataset, load_pipeline, save_dataset, save_pipeline
from repro.service import FriendsNotificationService
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig


def main() -> None:
    workspace = pathlib.Path(tempfile.mkdtemp(prefix="hisrect-"))
    print(f"Workspace: {workspace}")

    # ------------------------------------------------------- offline training
    print("Generating and saving a small dataset ...")
    dataset = build_dataset(tiny_dataset_config(seed=13))
    save_dataset(dataset, workspace / "dataset")

    print("Training and saving the pipeline ...")
    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(max_iterations=40),
        judge=JudgeConfig(embedding_dim=8, classifier_dim=8, epochs=8),
        skipgram=SkipGramConfig(embedding_dim=16, epochs=1),
    )
    pipeline = CoLocationPipeline(config).fit(dataset)
    save_pipeline(pipeline, workspace / "model")

    # ---------------------------------------------------------- "new process"
    print("Reloading dataset and model from disk ...")
    served_dataset = load_dataset(workspace / "dataset")
    served_model = load_pipeline(workspace / "model")

    pairs = served_dataset.train.labeled_pairs[:25]
    original = pipeline.predict_proba(pairs)
    reloaded = served_model.predict_proba(pairs)
    drift = float(np.max(np.abs(original - reloaded))) if len(pairs) else 0.0
    print(f"Maximum probability drift between original and reloaded model: {drift:.2e}")

    # ------------------------------------------------------------ online use
    users = sorted({p.uid for p in served_dataset.test.labeled_profiles})[:6]
    friendships = [(a, b) for i, a in enumerate(users) for b in users[i + 1 :]]
    service = FriendsNotificationService(
        judge=served_model,
        registry=served_dataset.registry,
        friendships=friendships,
        delta_t=served_dataset.delta_t,
        threshold=0.5,
    )
    stream = sorted(
        (tweet for timeline in served_dataset.test.store for tweet in timeline.tweets),
        key=lambda t: t.ts,
    )
    notifications = service.process_many(stream)
    print(f"Replayed {len(stream)} test tweets through the loaded model: "
          f"{len(notifications)} friend notifications")
    print("Done.")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
