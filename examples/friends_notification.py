"""Friends notification over a simulated live tweet stream (paper Section 1).

The paper's first motivating application: "notify a user that one of his/her
friends is also present at the same POI in the same time."  This example

1. trains a HisRect pipeline on a small synthetic city (the offline part),
2. builds a :class:`repro.service.FriendsNotificationService` around the
   fitted judge and a friendship graph, and
3. replays the held-out test timelines as a live stream, printing a
   notification whenever two friends are judged co-located within Δt.

This example deliberately stays on the *legacy* entry point — it passes the
fitted pipeline straight into the service instead of wrapping it in a
:class:`repro.api.ColocationEngine` — proving the pre-engine call sites keep
working (the service wraps raw judges automatically).  See
``examples/local_services.py`` for the engine-first style.

Run it with::

    python examples/friends_notification.py
"""

from __future__ import annotations

import itertools
from collections import defaultdict

import numpy as np

from repro.colocation import CoLocationPipeline, JudgeConfig, PipelineConfig
from repro.data import build_dataset, nyc_like_dataset_config
from repro.features import HisRectConfig
from repro.service import FriendsNotificationService
from repro.ssl import SSLTrainingConfig
from repro.text import SkipGramConfig


def build_friendships(dataset, max_edges: int = 40) -> list[tuple[int, int]]:
    """Invent a plausible friendship graph: users who share a favourite POI."""
    visitors = defaultdict(set)
    for profile in dataset.test.labeled_profiles:
        visitors[profile.pid].add(profile.uid)
    edges = set()
    for users in visitors.values():
        for a, b in itertools.combinations(sorted(users), 2):
            edges.add((a, b))
            if len(edges) >= max_edges:
                return sorted(edges)
    return sorted(edges)


def main() -> None:
    print("Training the HisRect pipeline (offline phase) ...")
    dataset = build_dataset(nyc_like_dataset_config(scale=0.4, seed=41))
    config = PipelineConfig(
        hisrect=HisRectConfig(content_dim=8, feature_dim=16, embedding_dim=8),
        ssl=SSLTrainingConfig(max_iterations=80),
        judge=JudgeConfig(embedding_dim=8, classifier_dim=8, epochs=15),
        skipgram=SkipGramConfig(embedding_dim=16, epochs=1),
    )
    pipeline = CoLocationPipeline(config).fit(dataset)

    friendships = build_friendships(dataset)
    print(f"Friendship graph: {len(friendships)} edges among test users")

    service = FriendsNotificationService(
        judge=pipeline,
        registry=dataset.registry,
        friendships=friendships,
        delta_t=dataset.delta_t,
        threshold=0.6,
        max_distance_m=5_000.0,
    )

    # Replay the test timelines as a live stream, in timestamp order.
    stream = sorted(
        (tweet for timeline in dataset.test.store for tweet in timeline.tweets),
        key=lambda t: t.ts,
    )
    print(f"Replaying {len(stream)} tweets through the notification service ...")
    print()

    shown = 0
    for tweet in stream:
        for notification in service.process(tweet):
            shown += 1
            if shown <= 10:
                print(
                    f"  [t={notification.ts:>9.0f}s] notify user {notification.uid_a}: "
                    f"friend {notification.uid_b} seems to be at the same place "
                    f"(p={notification.probability:.2f})"
                )

    print()
    print(f"Stream finished: {service.builder.profiles_built} profiles built, "
          f"{service.notifications_sent} notifications sent "
          f"({max(0, service.notifications_sent - 10)} not shown).")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
