"""Process-worker serving: the :class:`repro.cluster.WorkerPool` tier in action.

Shard threads (``examples/sharded_serving.py``) amortise call overhead but
share one GIL; the worker pool moves each shard into its own *process*, so
featurization — the dominant serving cost — runs truly in parallel on
multi-core hosts.  The script walks the tier end to end:

1. fit a small HisRect judge and spawn a 2-worker pool — each worker is a
   separate process that rebuilt the judge from the save/load bundle and
   owns a hash slice of the user population;
2. show that the pool's probabilities match a single
   :class:`repro.api.ColocationEngine` **bit-for-bit** (save/load restores
   exactly; the wire moves raw float64 bytes, no pickle);
3. serve typed :class:`repro.api.JudgeRequest` batches and stack a
   :class:`repro.cluster.MicroBatcher` on top — the pool speaks the full
   engine surface, so everything that fronts an engine fronts a pool;
4. snapshot the worker caches, then kill a worker with ``SIGKILL`` and watch
   the pool respawn it warm-started from the retained snapshot rows, with
   :class:`repro.cluster.ClusterMetrics` counting the incident;
5. close the pool and verify no worker process survives.

Run it with::

    python examples/process_serving.py

(The ``__main__`` guard is mandatory: workers start via multiprocessing's
``spawn`` method, which re-imports this module in each child.)
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np

from repro.api import ColocationEngine, JudgeRequest
from repro.cluster import MicroBatcher, WorkerPool
from repro.cluster.loadgen import LoadConfig, fit_serving_pipeline, generate_requests
from repro.errors import WorkerCrashError


def main() -> None:
    started = time.perf_counter()

    # ----------------------------------------------------------------- judge
    print("Fitting a small HisRect judge ...")
    pipeline, dataset = fit_serving_pipeline(seed=5)
    config = LoadConfig(num_users=96, num_requests=80, pairs_per_request=4)
    requests = generate_requests(dataset.registry, dataset.training_corpus(), config)

    single = ColocationEngine(pipeline, cache_size=2048)

    # ------------------------------------------------------ spawn the pool
    print("Spawning a 2-worker pool (each worker loads the judge bundle) ...")
    with WorkerPool(pipeline, num_workers=2, cache_size=2048, respawn=True) as pool:
        print(f"worker pids: {pool.worker_pids()}")

        # -------------------------------------------- pool == single, bitwise
        sample = requests[:10]
        exact = all(
            np.array_equal(single.predict_proba(pairs), pool.predict_proba(pairs))
            for pairs in sample
        )
        print(f"pool probabilities match the single engine bit-for-bit: {exact}")

        # ------------------------------------------------------- typed serve
        request = JudgeRequest(pairs=tuple(requests[0]), threshold=0.6)
        response = pool.serve(request)
        print(
            f"serve: {len(response)} pairs, {response.num_positive} positive at "
            f"threshold {response.threshold}, cache {response.cache_hits} hits / "
            f"{response.cache_misses} misses"
        )

        # ----------------------------------------- a micro-batcher on top
        with MicroBatcher(pool, max_batch=64, max_delay_ms=2.0, metrics=pool.metrics) as batcher:
            futures = [batcher.submit_score(pairs) for pairs in requests]
            results = [future.result() for future in futures]
        print(f"micro-batched {len(results)} concurrent requests over the pool")

        # -------------------------------------- snapshot, kill, respawn warm
        snapshot = pool.snapshot()
        print(f"snapshot: {[len(rows) for rows in snapshot]} cached rows per worker")

        victim = max(range(pool.num_workers), key=lambda index: len(snapshot[index]))
        victim_pid = pool.worker_pids()[victim]
        print(f"killing worker {victim} (pid {victim_pid}) with SIGKILL ...")
        os.kill(victim_pid, signal.SIGKILL)
        time.sleep(0.2)
        try:
            pool.ping(victim)
        except WorkerCrashError as exc:
            print(f"as expected, the next call failed typed: {type(exc).__name__}")

        # respawn=True: the next call brings the worker back, warm-started
        assert pool.ping(victim)
        info = pool.worker_cache_infos()[victim]
        print(
            f"worker {victim} respawned as pid {pool.worker_pids()[victim]} with "
            f"{info.size} cache rows restored from the snapshot"
        )
        assert np.array_equal(single.predict_proba(requests[0]), pool.predict_proba(requests[0]))

        print()
        print("cluster metrics after the incident:")
        print(pool.metrics.snapshot().format())

    # ------------------------------------------------------------- shutdown
    leftovers = multiprocessing.active_children()
    print()
    print(f"pool closed; surviving worker processes: {leftovers or 'none'}")
    print(f"done in {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()
